//! Many users, one database — the deployment shape of the paper's
//! usability study: each of a family's members gets a demographic
//! default profile, personalizes it, and the same query under the same
//! context answers differently per user.
//!
//! ```text
//! cargo run --example multi_user
//! ```

use ctxpref::core::MultiUserDb;
use ctxpref::prelude::*;
use ctxpref::workload::reference::{poi_env, poi_relation};
use ctxpref::workload::user_study::{default_profile, AgeBand, Demographics, Sex, Taste};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env = poi_env();
    let rel = poi_relation(&env, 2007, 5);
    let mut db = MultiUserDb::new(env.clone(), rel, 16);

    // Three family members, three demographic default profiles.
    let members: [(&str, Demographics); 3] = [
        (
            "eleni",
            Demographics {
                age: AgeBand::Under30,
                sex: Sex::Female,
                taste: Taste::OffBeatenTrack,
            },
        ),
        (
            "nikos",
            Demographics {
                age: AgeBand::Between30And50,
                sex: Sex::Male,
                taste: Taste::Mainstream,
            },
        ),
        (
            "yiayia",
            Demographics {
                age: AgeBand::Over50,
                sex: Sex::Female,
                taste: Taste::Mainstream,
            },
        ),
    ];
    for (name, demo) in members {
        let profile = default_profile(&env, db.relation(), demo);
        db.add_user_with_profile(name, profile)?;
    }
    println!(
        "{} users over {} POIs",
        db.user_count(),
        db.relation().len()
    );

    // Eleni tweaks her profile — only hers changes.
    db.insert_preference(
        "eleni",
        ctxpref::profile::ContextualPreference::new(
            ctxpref::context::parse_descriptor(&env, "location = Exarchia")?,
            ctxpref::profile::AttributeClause::eq(
                db.relation().schema().require_attr("type")?,
                "club".into(),
            ),
            0.95,
        )?,
    )?;

    // Same Saturday evening, same place, three different answers.
    let state = ContextState::parse(&env, &["Exarchia", "mild", "friends"])?;
    let ty = db.relation().schema().require_attr("type")?;
    println!("\ncontext {}:", state.display(&env));
    for user in ["eleni", "nikos", "yiayia"] {
        let answer = db.query_state(user, &state)?;
        let top = answer.results.entries().first();
        match top {
            Some(e) => println!(
                "  {user:>7}: {} ({:.2}) — {} results",
                db.relation().tuple(e.tuple_index).value(ty),
                e.score,
                answer.results.len()
            ),
            None => println!("  {user:>7}: no applicable preferences"),
        }
    }

    // The per-user caches serve repeats.
    let again = db.query_state("nikos", &state)?;
    println!(
        "\nrepeat query for nikos served from cache: {}",
        again.from_cache
    );
    Ok(())
}
