//! A personalized travel guide over the two-city POI database — the
//! scenario motivating the paper's usability study.
//!
//! A user gets one of the 12 demographic default profiles, tweaks it,
//! and then asks "what should I visit?" as their context changes across
//! a weekend: Saturday morning sun with the family, Saturday night out
//! with friends, a rainy Sunday alone.
//!
//! ```text
//! cargo run --example travel_guide
//! ```

use ctxpref::prelude::*;
use ctxpref::workload::reference::{poi_env, poi_relation};
use ctxpref::workload::user_study::{default_profile, AgeBand, Demographics, Sex, Taste};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env = poi_env();
    let rel = poi_relation(&env, 2007, 5);
    println!(
        "POI database: {} points of interest across Athens, Thessaloniki, Ioannina",
        rel.len()
    );

    // A 28-year-old who likes the beaten track juuust fine.
    let demo = Demographics {
        age: AgeBand::Under30,
        sex: Sex::Female,
        taste: Taste::Mainstream,
    };
    let profile = default_profile(&env, &rel, demo);
    println!("default profile: {} contextual preferences", profile.len());

    let mut db = ContextualDb::builder()
        .env(env.clone())
        .relation(rel)
        .cache_capacity(32)
        .build()?;
    for pref in profile.iter() {
        db.insert_preference(pref.clone())?;
    }

    // Personal touch: she loves the Plaka monuments in good weather.
    db.insert_preference_eq(
        "location = Plaka and temperature = good",
        "type",
        "monument".into(),
        0.95,
    )?;

    let weekend = [
        (
            "Saturday, sunny morning with the family",
            ["Plaka", "warm", "family"],
        ),
        (
            "Saturday night out with friends",
            ["Ladadika", "mild", "friends"],
        ),
        ("Rainy Sunday on her own", ["Kolonaki", "cold", "alone"]),
    ];
    for (title, ctx) in weekend {
        let state = ContextState::parse(&env, &ctx)?;
        let answer = db.query_state(&state)?;
        println!("\n=== {title} — context {} ===", state.display(&env));
        for line in db.render_top(&answer, "name", 5)?.lines() {
            println!("  {line}");
        }
        if let Some(res) = answer.resolutions.first() {
            println!(
                "  [{} via {} candidate state(s), {} cells touched]",
                res.outcome, res.candidate_count, res.cells
            );
        }
    }

    // Traceability (Section 5.1): which stored states served the query?
    let state = ContextState::parse(&env, &["Plaka", "warm", "family"])?;
    let answer = db.query_state(&state)?;
    println!("\ntrace for {}:", state.display(&env));
    for r in &answer.resolutions {
        for c in &r.selected {
            println!(
                "  matched stored state {} at distance {}",
                c.state.display(&env),
                c.distance
            );
        }
    }
    Ok(())
}
