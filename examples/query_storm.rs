//! A query storm against the fault-tolerant serving layer, with a
//! seeded fault plan injecting errors, panics, delays, and partial
//! writes while concurrent clients hammer the service.
//!
//! ```text
//! cargo run --example query_storm
//! ```
//!
//! Watch the ladder work: some answers are served from cache, some
//! exactly, some from a lifted (nearest-ancestor) context state, and a
//! few as the non-contextual default — but *every* request comes back
//! before its deadline, and no injected panic kills the process.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use ctxpref::context::ContextState;
use ctxpref::core::MultiUserDb;
use ctxpref::faults::FaultPlan;
use ctxpref::hierarchy::LevelId;
use ctxpref::service::{CtxPrefService, ServiceConfig};
use ctxpref::workload::reference::{poi_env, poi_relation};
use ctxpref::workload::user_study::{all_demographics, default_profile};
use rand::{rngs::StdRng, Rng, SeedableRng};

const USERS: usize = 4;
const CLIENTS: usize = 4;
const QUERIES_PER_CLIENT: usize = 250;

fn main() {
    // The paper's POI database, four users with default study profiles.
    let env = poi_env();
    let rel = poi_relation(&env, 9, 5);
    let mut db = MultiUserDb::new(env.clone(), rel, 16);
    for (i, demo) in all_demographics().into_iter().take(USERS).enumerate() {
        let profile = default_profile(&env, db.relation(), demo);
        db.add_user_with_profile(&format!("user{i}"), profile)
            .unwrap();
    }
    let service = CtxPrefService::new(
        db,
        ServiceConfig {
            workers: 4,
            max_in_flight: 64,
            default_deadline: Duration::from_millis(500),
            ..ServiceConfig::default()
        },
    );

    // The storm: every fault class, at every instrumented layer.
    // Change the seed and the *same* faults fire at the *same* hits.
    let plan = FaultPlan::builder(2007)
        .fail("service.query.primary", 0.08)
        .panic("service.query.primary", 0.04)
        .delay("service.query.primary", 0.04, Duration::from_millis(2))
        .fail("service.query.nearest", 0.10)
        .fail("qcache.get", 0.06)
        .fail("qcache.insert", 0.06)
        .fail("storage.save.open", 0.25)
        .truncate("storage.save.write", 0.25, 0.6)
        .build();

    // Forced panics are caught by the service; keep the output readable.
    std::panic::set_hook(Box::new(|_| {}));

    let errors = AtomicU64::new(0);
    let save_ok = AtomicU64::new(0);
    let save_err = AtomicU64::new(0);
    let save_path = std::env::temp_dir().join("ctxpref-query-storm.db");
    let started = Instant::now();

    plan.run(|| {
        std::thread::scope(|scope| {
            for client in 0..CLIENTS {
                let service = &service;
                let errors = &errors;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(client as u64);
                    let states: Vec<ContextState> = (0..32)
                        .map(|_| service.with_db(|db| random_state(db, &mut rng)))
                        .collect();
                    for _ in 0..QUERIES_PER_CLIENT {
                        let user = format!("user{}", rng.random_range(0..USERS));
                        let state = &states[rng.random_range(0..states.len())];
                        if service.query_state(&user, state).is_err() {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
            // Snapshots race the storm while write faults fire; the
            // atomic save keeps the previous snapshot intact on failure.
            let (service, path) = (&service, &save_path);
            let (save_ok, save_err) = (&save_ok, &save_err);
            scope.spawn(move || {
                for _ in 0..20 {
                    match service.save(path) {
                        Ok(()) => save_ok.fetch_add(1, Ordering::Relaxed),
                        Err(_) => save_err.fetch_add(1, Ordering::Relaxed),
                    };
                    std::thread::sleep(Duration::from_millis(3));
                }
            });
        });
    });
    let _ = std::panic::take_hook();

    let elapsed = started.elapsed();
    let total = (CLIENTS * QUERIES_PER_CLIENT) as u64;
    let stats = service.stats();
    let injected = plan.stats();

    println!("query storm: {total} requests from {CLIENTS} clients in {elapsed:.2?}");
    println!();
    println!("injected faults ({} total):", injected.total());
    for (label, m) in [
        ("errors", &injected.errors),
        ("panics", &injected.panics),
        ("delays", &injected.delays),
        ("truncated writes", &injected.truncations),
    ] {
        let mut sites: Vec<_> = m.iter().collect();
        sites.sort();
        for (site, n) in sites {
            println!("  {label:<16} {site:<28} ×{n}");
        }
    }
    println!();
    println!("degradation ladder:");
    println!("  cached         {:>6}", stats.served_cached);
    println!("  exact          {:>6}", stats.served_exact);
    println!("  nearest-state  {:>6}", stats.served_nearest);
    println!("  default answer {:>6}", stats.served_default);
    println!(
        "  ({} answered, {} typed errors, {} degraded)",
        stats.served(),
        errors.load(Ordering::Relaxed),
        stats.degraded()
    );
    println!();
    println!(
        "containment: {} panics contained, {} deadline misses, {} shed, {} storage retries",
        stats.panics_contained, stats.deadline_exceeded, stats.shed, stats.storage_retries
    );
    println!(
        "snapshots under write faults: {} succeeded, {} failed cleanly; final file {}",
        save_ok.load(Ordering::Relaxed),
        save_err.load(Ordering::Relaxed),
        match ctxpref::storage::load_multi_user(&save_path) {
            Ok(db) => format!("loads intact ({} users)", db.user_count()),
            Err(e) => format!("fails cleanly ({e})"),
        }
    );
    let _ = std::fs::remove_file(&save_path);
}

/// A random context state: leaf values mostly, an interior value now
/// and then.
fn random_state(db: &ctxpref::core::ShardedMultiUserDb, rng: &mut StdRng) -> ContextState {
    let env = db.env();
    let mut state = ContextState::all(env);
    for (p, h) in env.iter() {
        let level = if rng.random_bool(0.85) {
            0
        } else {
            rng.random_range(0..h.level_count().saturating_sub(1).max(1))
        };
        let domain = h.domain(LevelId(level as u8));
        if !domain.is_empty() {
            state = state.with_value(p, domain[rng.random_range(0..domain.len())]);
        }
    }
    state
}
