//! A complete client/server round trip over real TCP: a `NetServer`
//! on an ephemeral loopback port in front of the paper's POI
//! database, driven by a `NetClient` exactly as a separate process
//! would drive it.
//!
//! ```text
//! cargo run --example remote_query
//! ```
//!
//! Everything crosses the wire as checksummed frames: the user and
//! her preference are created remotely, the contextual query ships
//! its context state as tokens, and the ranked answer comes back with
//! the ladder step and server-side timing attached.

use std::sync::Arc;
use std::time::Duration;

use ctxpref::core::MultiUserDb;
use ctxpref::net::{NetClient, NetClientConfig, NetServer, NetServerConfig};
use ctxpref::service::{CtxPrefService, ServiceConfig};
use ctxpref::workload::reference::{poi_env, poi_relation};

fn main() {
    // The serving side: the POI reference database behind the
    // fault-tolerant service, fronted by a TCP server on an ephemeral
    // loopback port (a real deployment would pass `host:port`).
    let env = poi_env();
    let db = MultiUserDb::new(env.clone(), poi_relation(&env, 9, 5), 16);
    let service = Arc::new(CtxPrefService::new(db, ServiceConfig::default()));
    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&service),
        NetServerConfig::default(),
    )
    .expect("bind an ephemeral loopback port");
    let addr = server.local_addr();
    println!("serving on {addr}");

    // The client side: everything below travels over the socket.
    let mut client = NetClient::connect(addr.to_string(), NetClientConfig::default());
    client.ping().expect("the server answers");

    client.add_user("maria").expect("create a user remotely");
    for (descriptor, value, score) in [
        ("accompanying_people = friends", "monument", 0.9),
        ("accompanying_people = friends", "museum", 0.7),
        ("temperature = warm", "park", 0.8),
    ] {
        client
            .insert_preference("maria", descriptor, "type", value, score)
            .expect("insert a preference remotely");
    }

    // A contextual top-5: Maria is in Plaka, it is warm, friends are
    // along. The context state ships as plain tokens; the server
    // resolves it against its own environment.
    let answer = client
        .query(
            "maria",
            "name",
            5,
            Duration::from_millis(250),
            &["Plaka", "warm", "friends"],
        )
        .expect("the remote query answers");

    println!(
        "top {} places for maria in (Plaka, warm, friends):",
        answer.rows.len()
    );
    for (i, row) in answer.rows.iter().enumerate() {
        println!("  {:>2}. {:<40} {:.3}", i + 1, row.name, row.score);
    }
    if let Some(state) = &answer.resolved_state {
        println!("  (answered from lifted state {state})");
    }
    println!(
        "  [{} answer in {} µs on the server{}]",
        answer.step,
        answer.elapsed_us,
        if answer.is_degraded() {
            ", degraded"
        } else {
            ""
        }
    );

    drop(client);
    let undrained = server.shutdown();
    assert_eq!(undrained, 0, "the client disconnected cleanly");
}
