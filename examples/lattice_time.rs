//! The general level lattice of Section 3.1, end to end.
//!
//! The paper's formalism allows a context parameter's levels to form a
//! *lattice*, not just a chain — e.g. an hour of the week aggregates
//! both by part of day (morning/afternoon/evening/night ≺ ALL) and by
//! day type (weekday/weekend ≺ ALL). This example builds that lattice,
//! asks it lattice-only questions (incomparable levels, cross-branch
//! Jaccard), then decomposes it into its two chains so the standard
//! profile-tree machinery can index preferences over it.
//!
//! ```text
//! cargo run --example lattice_time
//! ```

use ctxpref::hierarchy::{lattice::LatticeBuilder, Hierarchy};
use ctxpref::prelude::*;
use ctxpref::relation::AttrType;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the two-branch time lattice over a week of 4-hour slots.
    let mut b = LatticeBuilder::new("time");
    b.level("Slot", &["PartOfDay", "DayType"]);
    b.level("PartOfDay", &[]);
    b.level("DayType", &[]);
    for p in ["morning", "afternoon", "evening", "night"] {
        b.value("PartOfDay", p, &[]);
    }
    b.value("DayType", "weekday", &[]);
    b.value("DayType", "weekend", &[]);
    let days = ["mon", "tue", "wed", "thu", "fri", "sat", "sun"];
    for (d, day) in days.iter().enumerate() {
        let day_type = if d < 5 { "weekday" } else { "weekend" };
        for (part, hours) in [
            ("morning", "06_10"),
            ("afternoon", "12_16"),
            ("evening", "18_22"),
            ("night", "22_02"),
        ] {
            b.value("Slot", &format!("{day}_{hours}"), &[part, day_type]);
        }
    }
    let lattice = b.build()?;
    println!(
        "lattice `time`: {} levels, {} values, {} maximal chains",
        lattice.level_count(),
        lattice.edom_size(),
        lattice.chains().len()
    );

    // 2. Lattice-only questions.
    let sat_evening = lattice.lookup("sat_18_22").unwrap();
    let evening = lattice.lookup("evening").unwrap();
    let weekend = lattice.lookup("weekend").unwrap();
    println!(
        "anc(sat_18_22, PartOfDay) = {}, anc(sat_18_22, DayType) = {}",
        lattice.value_name(
            lattice
                .anc(sat_evening, lattice.level_by_name("PartOfDay").unwrap())
                .unwrap()
        ),
        lattice.value_name(
            lattice
                .anc(sat_evening, lattice.level_by_name("DayType").unwrap())
                .unwrap()
        ),
    );
    // PartOfDay and DayType are incomparable: min path goes through Slot.
    println!(
        "level_dist(PartOfDay, DayType) = {:?} (incomparable, via Slot)",
        lattice.level_dist(
            lattice.level_by_name("PartOfDay").unwrap(),
            lattice.level_by_name("DayType").unwrap()
        )
    );
    println!(
        "jaccard(evening, weekend) = {:.3}  (cross-branch overlap: the weekend evenings)",
        lattice.jaccard(evening, weekend)
    );

    // 3. Decompose into chains and index preferences with the standard
    //    machinery: each chain becomes one context parameter.
    let by_part = lattice.extract_chain(&["Slot", "PartOfDay"])?;
    let by_daytype = lattice.extract_chain(&["Slot", "DayType"])?;
    println!(
        "\nextracted chains: `{}` ({} levels) and `{}` ({} levels)",
        by_part.name(),
        by_part.level_count(),
        by_daytype.name(),
        by_daytype.level_count()
    );

    let env = ContextEnvironment::new(vec![
        by_part,
        Hierarchy::flat("company", &["friends", "family", "alone"])?,
    ])?;
    let schema = Schema::new(&[("name", AttrType::Str), ("type", AttrType::Str)])?;
    let mut rel = Relation::new("poi", schema);
    for (n, t) in [
        ("Acropolis", "monument"),
        ("Mikro", "brewery"),
        ("Benaki", "museum"),
        ("Attica Zoo", "zoo"),
    ] {
        rel.insert(vec![n.into(), t.into()])?;
    }
    let mut db = ContextualDb::builder()
        .env(env.clone())
        .relation(rel)
        .build()?;
    // Preferences at different lattice levels of the extracted chain.
    db.insert_preference_eq(
        "time_partofday = evening and company = friends",
        "type",
        "brewery".into(),
        0.9,
    )?;
    db.insert_preference_eq("time_partofday = morning", "type", "monument".into(), 0.8)?;
    db.insert_preference_eq("company = family", "type", "zoo".into(), 0.85)?;

    // The current context is a concrete slot; the evening preference
    // covers it through the lattice-derived chain.
    let now = ContextState::parse(&env, &["sat_18_22", "friends"])?;
    let answer = db.query_state(&now)?;
    println!("\nSaturday evening with friends:");
    print!("{}", db.render_top(&answer, "name", 5)?);
    for r in &answer.resolutions {
        for c in &r.selected {
            println!("  via stored state {}", c.state.display(&env));
        }
    }
    assert_eq!(answer.results.entries()[0].score, 0.9);
    Ok(())
}
