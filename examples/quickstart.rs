//! Quickstart: the paper's running example, end to end.
//!
//! Builds the reference context environment of Figure 2 (location,
//! temperature, accompanying_people), a small points-of-interest
//! relation, the three contextual preferences of Figure 4, and runs a
//! contextual query under the current context `(Plaka, warm, friends)`.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ctxpref::prelude::*;
use ctxpref::relation::AttrType;
use ctxpref::workload::reference::reference_env;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Context environment: the hierarchies of Figures 1–2.
    let env = reference_env();

    // 2. The Points_of_Interest relation (a compact excerpt).
    let schema = Schema::new(&[
        ("name", AttrType::Str),
        ("type", AttrType::Str),
        ("open_air", AttrType::Bool),
        ("admission_cost", AttrType::Float),
    ])?;
    let mut rel = Relation::new("Points_of_Interest", schema);
    for (name, ty, open_air, cost) in [
        ("Acropolis", "monument", true, 12.0),
        ("Benaki Museum", "museum", false, 9.0),
        ("Mikro Brewery", "brewery", false, 0.0),
        ("Attica Zoo", "zoo", true, 16.0),
        ("Kifisia Cafe", "cafeteria", false, 0.0),
    ] {
        rel.insert(vec![name.into(), ty.into(), open_air.into(), cost.into()])?;
    }

    // 3. The contextual preferences of the paper (Section 3.2 / Fig. 4).
    let mut db = ContextualDb::builder()
        .env(env.clone())
        .relation(rel)
        .build()?;
    db.insert_preference_eq(
        "location = Plaka and temperature = warm",
        "name",
        "Acropolis".into(),
        0.8,
    )?;
    db.insert_preference_eq(
        "accompanying_people = friends",
        "type",
        "brewery".into(),
        0.9,
    )?;
    db.insert_preference_eq(
        "location = Kifisia and temperature = warm and accompanying_people = friends",
        "type",
        "cafeteria".into(),
        0.9,
    )?;

    println!("profile tree: {}", db.tree());

    // 4. Query under the current context (Plaka, warm, friends).
    let current = ContextState::parse(&env, &["Plaka", "warm", "friends"])?;
    let answer = db.query_state(&current)?;
    println!("\ncurrent context {}:", current.display(&env));
    print!("{}", db.render_top(&answer, "name", 10)?);
    for r in &answer.resolutions {
        println!(
            "  resolved {} as {} ({} candidate(s), {} cells)",
            r.query_state.display(&env),
            r.outcome,
            r.candidate_count,
            r.cells
        );
    }

    // 5. The same query in cold weather lands on different preferences.
    let cold = ContextState::parse(&env, &["Plaka", "cold", "friends"])?;
    let answer = db.query_state(&cold)?;
    println!("\ncurrent context {}:", cold.display(&env));
    print!("{}", db.render_top(&answer, "name", 10)?);

    Ok(())
}
