//! The qualitative extension (Section 6): instead of scoring tuples,
//! state *which kind of place beats which* under a context, and answer
//! queries with the winnow operator (best matches only).
//!
//! ```text
//! cargo run --example qualitative_preferences
//! ```

use ctxpref::context::{parse_descriptor, ContextState};
use ctxpref::profile::AttributeClause;
use ctxpref::qualitative::{ContextualPriority, QualitativeProfile};
use ctxpref::workload::reference::{poi_env, poi_relation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env = poi_env();
    let rel = poi_relation(&env, 3, 2);
    let ty = rel.schema().attr("type").unwrap();
    let clause = |v: &str| AttributeClause::eq(ty, v.into());

    let mut profile = QualitativeProfile::new(env.clone());
    // The paper's motivating sentence, as priorities:
    // "a museum may be a better place to visit than a brewery in the
    //  context of family".
    for (cod, better, worse) in [
        ("accompanying_people = family", "museum", "brewery"),
        ("accompanying_people = family", "zoo", "club"),
        ("accompanying_people = friends", "brewery", "museum"),
        ("temperature = good", "park", "aquarium"),
        ("temperature = bad", "aquarium", "park"),
        ("temperature = bad", "museum", "beach"),
        // Generally, monuments beat markets; with friends at night this
        // could be refined further.
        ("*", "monument", "market"),
    ] {
        profile.insert(ContextualPriority::new(
            parse_descriptor(&env, cod)?,
            clause(better),
            clause(worse),
        ))?;
    }
    println!("{} contextual priorities stored", profile.len());

    let name = rel.schema().attr("name").unwrap();
    for ctx in [["Plaka", "warm", "family"], ["Plaka", "cold", "friends"]] {
        let state = ContextState::parse(&env, &ctx)?;
        println!("\n=== context {} ===", state.display(&env));
        let strata = profile.rank(&rel, &state)?;
        for (i, stratum) in strata.iter().take(2).enumerate() {
            let mut names: Vec<String> = stratum
                .iter()
                .map(|&t| rel.tuple(t).value(name).to_string())
                .collect();
            names.truncate(6);
            println!(
                "  stratum {i}: {} tuples, e.g. {}",
                stratum.len(),
                names.join(", ")
            );
        }
        // Cross-check: the best stratum equals winnow.
        assert_eq!(strata[0], profile.winnow(&rel, &state)?);
    }

    // Conflicting (cyclic) priorities are rejected, mirroring the
    // quantitative conflict detection of Definition 6.
    let err = profile
        .insert(ContextualPriority::new(
            parse_descriptor(&env, "accompanying_people = family")?,
            clause("brewery"),
            clause("museum"),
        ))
        .unwrap_err();
    println!("\ncycle rejected as expected: {err}");
    Ok(())
}
