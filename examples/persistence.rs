//! Persisting and restoring a contextual preference database with the
//! `ctxpref v1` text format.
//!
//! ```text
//! cargo run --example persistence
//! ```

use ctxpref::prelude::*;
use ctxpref::storage::{load_database, save_database, write_database};
use ctxpref::workload::reference::{poi_env, poi_relation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env = poi_env();
    let rel = poi_relation(&env, 2007, 6);
    let mut db = ContextualDb::builder()
        .env(env.clone())
        .relation(rel)
        .cache_capacity(32)
        .build()?;
    db.insert_preference_eq("temperature = good", "type", "monument".into(), 0.8)?;
    db.insert_preference_eq(
        "location = Thessaloniki and accompanying_people = friends",
        "type",
        "market".into(),
        0.85,
    )?;
    db.insert_preference_eq(
        "temperature in {freezing, cold}",
        "type",
        "museum".into(),
        0.9,
    )?;

    // Peek at the format.
    let mut buf = Vec::new();
    write_database(&mut buf, &db)?;
    let text = String::from_utf8(buf)?;
    println!("--- first lines of the serialized database ---");
    for line in text.lines().take(12) {
        println!("{line}");
    }
    println!("… ({} lines total)\n", text.lines().count());

    // Save to disk and restore.
    let path = std::env::temp_dir().join("ctxpref_example.ctxpref");
    save_database(&path, &db)?;
    let restored = load_database(&path)?;
    println!(
        "restored from {}: {} tuples, {} preferences, cache capacity {}",
        path.display(),
        restored.relation().len(),
        restored.profile().len(),
        restored.cache_capacity()
    );

    // Same answers before and after.
    let state = ContextState::parse(&env, &["Ladadika", "mild", "friends"])?;
    let a = db.query_state(&state)?;
    let b = restored.query_state(&state)?;
    assert_eq!(a.results.entries(), b.results.entries());
    println!(
        "\nquery under {} matches exactly ({} results):",
        state.display(&env),
        b.results.len()
    );
    print!("{}", restored.render_top(&b, "name", 5)?);
    assert!(
        !b.results.is_empty(),
        "the market preference should rank Thessaloniki markets"
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
