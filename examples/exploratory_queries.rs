//! Exploratory queries about hypothetical context states
//! (Definitions 8–9): "When I travel to Athens with my family this
//! summer (implying good weather), what places should I visit?"
//!
//! Extended context descriptors are disjunctions of conjunctions and
//! are written here in the textual surface syntax; the answer unions
//! the contexts of all disjuncts.
//!
//! ```text
//! cargo run --example exploratory_queries
//! ```

use ctxpref::context::DistanceKind;
use ctxpref::core::QueryOptions;
use ctxpref::prelude::*;
use ctxpref::workload::reference::{poi_env, poi_relation, POI_TYPES};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env = poi_env();
    let rel = poi_relation(&env, 7, 4);
    let mut db = ContextualDb::builder()
        .env(env.clone())
        .relation(rel)
        .build()?;

    // A compact profile: weather × company type preferences.
    for (cod, ty, score) in [
        (
            "temperature = good and accompanying_people = family",
            "zoo",
            0.9,
        ),
        (
            "temperature = good and accompanying_people = family",
            "park",
            0.85,
        ),
        ("temperature = good", "monument", 0.8),
        ("temperature = bad", "museum", 0.85),
        ("temperature = bad", "aquarium", 0.7),
        ("accompanying_people = friends", "brewery", 0.9),
        ("location = Thessaloniki", "market", 0.75),
    ] {
        assert!(POI_TYPES.contains(&ty));
        db.insert_preference_eq(cod, "type", ty.into(), score)?;
    }

    // The paper's exploratory query: Athens + family + good weather.
    let q1 = "location = Athens and temperature = good and accompanying_people = family";
    let a1 = db.query_str(q1)?;
    println!("Q1: {q1}");
    print!("{}", db.render_top(&a1, "name", 6)?);

    // A disjunctive what-if: summer in Athens or a winter city break in
    // Thessaloniki?
    let q2 = "(location = Athens and temperature in {warm, hot}) or \
              (location = Thessaloniki and temperature in [freezing, cold])";
    let a2 = db.query_str(q2)?;
    println!("\nQ2: {q2}");
    println!(
        "  ({} hypothetical context states resolved)",
        a2.resolutions.len()
    );
    print!("{}", db.render_top(&a2, "name", 6)?);

    // Same query, Jaccard distance: breaks ties toward the covering
    // state with the fewest descendants.
    let ecod = ctxpref::context::parse_extended_descriptor(&env, q2)?;
    let a3 = db.query_with(
        &ecod,
        QueryOptions {
            distance: DistanceKind::Jaccard,
            ..QueryOptions::default()
        },
    )?;
    println!("\nQ2 under the Jaccard distance:");
    print!("{}", db.render_top(&a3, "name", 6)?);

    // A query whose context nothing covers is answered as a plain,
    // non-contextual query (empty preference set here).
    let lonely = db.query_str("accompanying_people = alone and temperature = mild")?;
    println!(
        "\nQ3 (alone, mild): {} — {} result(s)",
        if lonely.is_non_contextual() {
            "no matching context"
        } else {
            "matched"
        },
        lonely.results.len()
    );
    Ok(())
}
