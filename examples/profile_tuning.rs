//! Tuning the profile tree: how the parameter-to-level assignment
//! affects index size, and when the skew-aware active-domain ordering
//! beats the plain domain-size heuristic (Section 3.3 + Figure 6
//! right).
//!
//! ```text
//! cargo run --release --example profile_tuning
//! ```

use ctxpref::prelude::*;
use ctxpref::workload::synthetic::{active_domains, SyntheticSpec, ValueDist};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A workload with a heavily skewed large domain: 200 values but a
    // tiny active domain.
    let spec = SyntheticSpec {
        domains: vec![vec![50], vec![100, 10], vec![200, 20]],
        dists: vec![ValueDist::Uniform, ValueDist::Uniform, ValueDist::Zipf(2.5)],
        num_prefs: 5000,
        clause_values: 100,
        seed: 2007,
    };
    let env = spec.build_env();
    let profile = spec.build_profile(&env);
    println!(
        "profile: {} preferences over domains {:?}",
        profile.len(),
        env.iter()
            .map(|(_, h)| h.domain_size(h.detailed_level()))
            .collect::<Vec<_>>()
    );
    println!("active domains: {:?}", active_domains(&env, &profile));

    println!(
        "\n{:<28} {:>10} {:>10} {:>14}",
        "ordering", "cells", "bytes", "max-cells bound"
    );
    let mut best: Option<(String, usize)> = None;
    for order in ParamOrder::all_orders(&env) {
        let tree = ProfileTree::from_profile(&profile, order.clone())?;
        let stats = tree.stats();
        let label = format!("{}", order.display(&env));
        println!(
            "{label:<28} {:>10} {:>10} {:>14}",
            stats.total_cells(),
            stats.total_bytes(),
            order.max_cells(&env)
        );
        if best
            .as_ref()
            .map(|(_, c)| stats.total_cells() < *c)
            .unwrap_or(true)
        {
            best = Some((label, stats.total_cells()));
        }
    }

    let serial = SerialStore::from_profile(&profile)?;
    println!(
        "{:<28} {:>10} {:>10}",
        "serial",
        serial.total_cells(),
        serial.total_bytes()
    );

    let by_domain = ParamOrder::by_ascending_domain(&env);
    let by_active = ParamOrder::by_ascending_active_domain(&env, &profile);
    let t_domain = ProfileTree::from_profile(&profile, by_domain.clone())?;
    let t_active = ProfileTree::from_profile(&profile, by_active.clone())?;
    println!(
        "\nheuristics: by-domain {} → {} cells; by-active-domain {} → {} cells",
        by_domain.display(&env),
        t_domain.stats().total_cells(),
        by_active.display(&env),
        t_active.stats().total_cells()
    );
    let (best_label, best_cells) = best.unwrap();
    println!("exhaustive best: {best_label} → {best_cells} cells");
    if t_active.stats().total_cells() <= t_domain.stats().total_cells() {
        println!("→ under skew, the active-domain ordering wins (Figure 6 right).");
    }

    // The trees index identical contents regardless of ordering.
    assert_eq!(t_domain.state_count(), t_active.state_count());
    Ok(())
}
