//! Serving concurrent contextual queries through the context query
//! tree: several reader threads share one `ContextualDb`, and queries
//! under a slowly-changing context hit the cache instead of re-running
//! context resolution.
//!
//! ```text
//! cargo run --release --example concurrent_cache
//! ```

use ctxpref::core::QueryOptions;
use ctxpref::prelude::*;
use ctxpref::workload::reference::{poi_env, poi_relation, POI_TYPES};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env = poi_env();
    let rel = poi_relation(&env, 42, 6);
    let mut db = ContextualDb::builder()
        .env(env.clone())
        .relation(rel)
        .cache_capacity(64)
        .build()?;
    for (i, weather) in ["bad", "good"].iter().enumerate() {
        for (j, company) in ["friends", "family", "alone"].iter().enumerate() {
            for (k, ty) in POI_TYPES.iter().enumerate() {
                let score = 0.05 + ((i * 31 + j * 7 + k) % 90) as f64 / 100.0;
                db.insert_preference_eq(
                    &format!("temperature = {weather} and accompanying_people = {company}"),
                    "type",
                    (*ty).into(),
                    score,
                )?;
            }
        }
    }

    // Each thread simulates one user whose context dwells: 50 queries
    // per context state, cycling through a handful of states.
    let contexts: Vec<ContextState> = [
        ["Plaka", "warm", "friends"],
        ["Kifisia", "cold", "family"],
        ["Ladadika", "mild", "alone"],
        ["Panorama", "hot", "friends"],
    ]
    .iter()
    .map(|names| ContextState::parse(&env, names).unwrap())
    .collect();

    let threads = 4;
    let queries_per_thread = 400;
    crossbeam::scope(|scope| {
        for t in 0..threads {
            let db = &db;
            let contexts = &contexts;
            scope.spawn(move |_| {
                for i in 0..queries_per_thread {
                    let state = &contexts[(t + i / 50) % contexts.len()];
                    let answer = db
                        .query_state_with(state, QueryOptions::cached())
                        .expect("queries over valid states cannot fail");
                    assert!(!answer.results.is_empty());
                }
            });
        }
    })
    .expect("worker threads do not panic");

    let stats = db.cache_stats().expect("cache is enabled");
    println!(
        "{} queries across {threads} threads: {} hits, {} misses (hit ratio {:.1}%)",
        threads * queries_per_thread,
        stats.hits,
        stats.misses,
        stats.hit_ratio() * 100.0
    );
    println!(
        "trie cells touched by the cache itself: {} (vs full resolution every time)",
        stats.cells_accessed
    );
    assert!(
        stats.hit_ratio() > 0.9,
        "dwelling contexts should hit the cache"
    );
    Ok(())
}
