//! # ctxpref — Adding Context to Preferences
//!
//! A Rust implementation of the context-aware preference database system
//! of *"Adding Context to Preferences"* (Stefanidis, Pitoura,
//! Vassiliadis, ICDE 2007).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`hierarchy`] — multidimensional attribute hierarchies
//!   (level lattices, `anc`/`desc`).
//! * [`context`] — context environments, states, descriptors, the
//!   `covers` partial order and the hierarchy / Jaccard state distances.
//! * [`relation`] — the relational substrate (schemas, tuples,
//!   θ-selections, scored results).
//! * [`profile`] — contextual preferences, profiles, the **profile
//!   tree** index and the serial-store baseline.
//! * [`resolve`] — context resolution (`Search_CS` / `Rank_CS`) with
//!   cell-access accounting.
//! * [`qcache`] — the context query tree: caching contextual query
//!   results keyed by context state.
//! * [`views`] — materialized per-(user, context-state) top-k
//!   rankings with incremental maintenance, interned state tokens,
//!   and pinning for hot states.
//! * [`qualitative`] — the qualitative extension of Section 6:
//!   contextual binary priorities with winnow / iterated-winnow
//!   operators.
//! * [`storage`] — versioned text persistence for hierarchies,
//!   relations, profiles, and whole databases.
//! * [`workload`] — the points-of-interest reference database, default
//!   profiles, and synthetic workload generators.
//! * [`core`] — the high-level [`core::ContextualDb`] façade.
//! * [`service`] — the fault-tolerant serving layer: deadlines, panic
//!   isolation, admission control, and the degradation ladder.
//! * [`wal`] — per-shard write-ahead logging, checkpoint manifests,
//!   and crash recovery for the serving core.
//! * [`net`] — the TCP serving layer: checksummed wire frames, a
//!   socket server/client pair in front of the service, and the
//!   socket-backed replication transport.
//! * [`router`] — the user-partitioned routing tier: consistent
//!   hashing across clusters, failure-aware forwarding with circuit
//!   breakers, and live user migration that never drops an acked
//!   write.
//! * [`faults`] — deterministic, seedable fault injection for chaos
//!   testing the above.
//!
//! See `examples/quickstart.rs` for an end-to-end tour and
//! `examples/query_storm.rs` for the serving layer under injected
//! faults.

pub use ctxpref_context as context;
pub use ctxpref_core as core;
pub use ctxpref_faults as faults;
pub use ctxpref_hierarchy as hierarchy;
pub use ctxpref_net as net;
pub use ctxpref_profile as profile;
pub use ctxpref_qcache as qcache;
pub use ctxpref_qualitative as qualitative;
pub use ctxpref_relation as relation;
pub use ctxpref_replication as replication;
pub use ctxpref_resolve as resolve;
pub use ctxpref_router as router;
pub use ctxpref_service as service;
pub use ctxpref_storage as storage;
pub use ctxpref_views as views;
pub use ctxpref_wal as wal;
pub use ctxpref_workload as workload;

/// Convenience prelude re-exporting the most common types.
pub mod prelude {
    pub use ctxpref_context::{
        ContextDescriptor, ContextEnvironment, ContextState, CtxValue, DistanceKind,
        ExtendedContextDescriptor, ParamId, ParameterDescriptor,
    };
    pub use ctxpref_core::{ContextualDb, ContextualDbBuilder, QueryOptions};
    pub use ctxpref_hierarchy::{Hierarchy, HierarchyBuilder, LevelId, ValueId};
    pub use ctxpref_profile::{
        AttributeClause, ContextualPreference, ParamOrder, Profile, ProfileTree, SerialStore,
    };
    pub use ctxpref_relation::{CompareOp, Relation, Schema, Value};
    pub use ctxpref_resolve::{ContextResolver, PreferenceStore};
}
