//! Interactive shell for the context-aware preference database — the
//! equivalent of the paper's prototype used in the Section 5.1 user
//! study.
//!
//! ```text
//! cargo run --bin ctxpref-cli
//! ctxpref> load demo
//! ctxpref> context Plaka warm friends
//! ctxpref> query
//! ctxpref> query location = Athens and temperature = good
//! ctxpref> pref accompanying_people = family :: type = zoo @ 0.95
//! ctxpref> prefs
//! ctxpref> tree
//! ```
//!
//! Also works non-interactively: `echo "load demo\nquery ..." | ctxpref-cli`.

use std::io::{self, BufRead, Write};

use ctxpref::context::{ContextState, DistanceKind};
use ctxpref::core::{ContextualDb, QueryOptions};
use ctxpref::prelude::*;
use ctxpref::workload::reference::{poi_env, poi_relation};
use ctxpref::workload::user_study::{default_profile, AgeBand, Demographics, Sex, Taste};

struct Repl {
    db: Option<ContextualDb>,
    current: Option<ContextState>,
    options: QueryOptions,
    top_k: usize,
}

impl Repl {
    fn new() -> Self {
        Self {
            db: None,
            current: None,
            options: QueryOptions { use_cache: true, ..QueryOptions::default() },
            top_k: 10,
        }
    }

    fn db(&self) -> Result<&ContextualDb, String> {
        self.db.as_ref().ok_or_else(|| "no database loaded — try `load demo`".to_string())
    }

    fn db_mut(&mut self) -> Result<&mut ContextualDb, String> {
        self.db.as_mut().ok_or_else(|| "no database loaded — try `load demo`".to_string())
    }

    fn handle(&mut self, line: &str) -> Result<Option<String>, String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        match cmd {
            "help" => Ok(Some(HELP.to_string())),
            "quit" | "exit" => Err("__quit__".to_string()),
            "load" => self.cmd_load(rest),
            "save" => self.cmd_save(rest),
            "open" => self.cmd_open(rest),
            "env" => self.cmd_env(),
            "context" => self.cmd_context(rest),
            "query" => self.cmd_query(rest),
            "explain" => self.cmd_explain(rest),
            "pref" => self.cmd_pref(rest),
            "prefs" => self.cmd_prefs(),
            "del" => self.cmd_del(rest),
            "score" => self.cmd_score(rest),
            "tree" => self.cmd_tree(),
            "orders" => self.cmd_orders(),
            "distance" => self.cmd_distance(rest),
            "top" => {
                self.top_k = rest.parse().map_err(|_| format!("bad k: {rest:?}"))?;
                Ok(Some(format!("showing top {}", self.top_k)))
            }
            other => Err(format!("unknown command {other:?} — try `help`")),
        }
    }

    fn cmd_load(&mut self, what: &str) -> Result<Option<String>, String> {
        if what != "demo" {
            return Err("only `load demo` is available".to_string());
        }
        let env = poi_env();
        let rel = poi_relation(&env, 2007, 5);
        let mut db = ContextualDb::builder()
            .env(env.clone())
            .relation(rel)
            .cache_capacity(64)
            .build()
            .map_err(|e| e.to_string())?;
        let demo = Demographics {
            age: AgeBand::Between30And50,
            sex: Sex::Female,
            taste: Taste::Mainstream,
        };
        let profile = default_profile(&env, db.relation(), demo);
        let n = profile.len();
        for pref in profile.iter() {
            db.insert_preference(pref.clone()).map_err(|e| e.to_string())?;
        }
        let pois = db.relation().len();
        self.db = Some(db);
        self.current = None;
        Ok(Some(format!(
            "loaded demo: {pois} points of interest, {n} preferences (mainstream 30–50 default profile)"
        )))
    }

    fn cmd_save(&mut self, path: &str) -> Result<Option<String>, String> {
        if path.is_empty() {
            return Err("usage: save <path>".to_string());
        }
        let db = self.db()?;
        ctxpref::storage::save_database(path, db).map_err(|e| e.to_string())?;
        Ok(Some(format!("saved to {path}")))
    }

    fn cmd_open(&mut self, path: &str) -> Result<Option<String>, String> {
        if path.is_empty() {
            return Err("usage: open <path>".to_string());
        }
        let db = ctxpref::storage::load_database(path).map_err(|e| e.to_string())?;
        let (pois, prefs) = (db.relation().len(), db.profile().len());
        self.db = Some(db);
        self.current = None;
        Ok(Some(format!("opened {path}: {pois} tuples, {prefs} preferences")))
    }

    fn cmd_env(&self) -> Result<Option<String>, String> {
        let db = self.db()?;
        let mut out = String::new();
        for (_, h) in db.env().iter() {
            let levels: Vec<String> = (0..h.level_count())
                .map(|l| {
                    let l = ctxpref::hierarchy::LevelId(l as u8);
                    format!("{} ({} values)", h.level_name(l), h.domain_size(l))
                })
                .collect();
            out.push_str(&format!("{}: {}\n", h.name(), levels.join(" ≺ ")));
        }
        Ok(Some(out))
    }

    fn cmd_context(&mut self, rest: &str) -> Result<Option<String>, String> {
        let db = self.db()?;
        if rest.is_empty() {
            return Ok(Some(match &self.current {
                Some(s) => format!("current context: {}", s.display(db.env())),
                None => "no current context set".to_string(),
            }));
        }
        let names: Vec<&str> = rest.split_whitespace().collect();
        let state = ContextState::parse(db.env(), &names).map_err(|e| e.to_string())?;
        let rendered = format!("current context set to {}", state.display(db.env()));
        self.current = Some(state);
        Ok(Some(rendered))
    }

    fn cmd_query(&mut self, rest: &str) -> Result<Option<String>, String> {
        let top_k = self.top_k;
        let options = self.options;
        let current = self.current.clone();
        let db = self.db()?;
        let answer = if rest.is_empty() {
            let state = current.ok_or("no context — use `context <values>` or pass a descriptor")?;
            db.query_state_with(&state, options).map_err(|e| e.to_string())?
        } else {
            let ecod = ctxpref::context::parse_extended_descriptor(db.env(), rest)
                .map_err(|e| e.to_string())?;
            db.query_with(&ecod, options).map_err(|e| e.to_string())?
        };
        let mut out = db.render_top(&answer, "name", top_k).map_err(|e| e.to_string())?;
        if answer.results.is_empty() {
            out.push_str("(no results — no stored preference covers this context)\n");
        }
        if answer.from_cache {
            out.push_str("[served from the context query tree]\n");
        } else {
            for r in &answer.resolutions {
                out.push_str(&format!(
                    "[{} → {} via {} candidate(s), {} cells]\n",
                    r.query_state.display(db.env()),
                    r.outcome,
                    r.candidate_count,
                    r.cells
                ));
            }
        }
        Ok(Some(out))
    }

    fn cmd_explain(&mut self, rest: &str) -> Result<Option<String>, String> {
        let options = self.options;
        let current = self.current.clone();
        let db = self.db()?;
        let answer = if rest.is_empty() {
            let state = current.ok_or("no context — use `context <values>` or pass a descriptor")?;
            db.query_state_with(&state, QueryOptions { use_cache: false, ..options })
                .map_err(|e| e.to_string())?
        } else {
            let ecod = ctxpref::context::parse_extended_descriptor(db.env(), rest)
                .map_err(|e| e.to_string())?;
            db.query_with(&ecod, options).map_err(|e| e.to_string())?
        };
        let mut out = String::new();
        for r in &answer.resolutions {
            out.push_str(&ctxpref::resolve::explain_resolution(
                db.tree(),
                db.relation().schema(),
                r,
            ));
        }
        Ok(Some(out))
    }

    fn cmd_pref(&mut self, rest: &str) -> Result<Option<String>, String> {
        // pref <descriptor> :: <attr> = <value> @ <score>
        let (cod, clause) = rest
            .split_once("::")
            .ok_or("syntax: pref <descriptor> :: <attr> = <value> @ <score>")?;
        let (assign, score) = clause
            .rsplit_once('@')
            .ok_or("syntax: pref <descriptor> :: <attr> = <value> @ <score>")?;
        let (attr, value) = assign.split_once('=').ok_or("expected `<attr> = <value>`")?;
        let score: f64 = score.trim().parse().map_err(|_| "bad score")?;
        let db = self.db_mut()?;
        db.insert_preference_eq(cod.trim(), attr.trim(), value.trim().into(), score)
            .map_err(|e| e.to_string())?;
        Ok(Some("preference stored".to_string()))
    }

    fn cmd_prefs(&self) -> Result<Option<String>, String> {
        let db = self.db()?;
        let mut out = String::new();
        for (i, p) in db.profile().iter().enumerate() {
            out.push_str(&format!(
                "[{i}] {} ⇒ {} @ {:.2}\n",
                p.descriptor().display(db.env()),
                p.clause().display(db.relation().schema()),
                p.score()
            ));
        }
        if out.is_empty() {
            out.push_str("(empty profile)\n");
        }
        Ok(Some(out))
    }

    fn cmd_del(&mut self, rest: &str) -> Result<Option<String>, String> {
        let index: usize = rest.trim().parse().map_err(|_| "usage: del <index>")?;
        let db = self.db_mut()?;
        let removed = db.remove_preference(index).map_err(|e| e.to_string())?;
        Ok(Some(format!("removed preference scoring {:.2}", removed.score())))
    }

    fn cmd_score(&mut self, rest: &str) -> Result<Option<String>, String> {
        let (idx, score) = rest.split_once(char::is_whitespace).ok_or("usage: score <index> <score>")?;
        let index: usize = idx.trim().parse().map_err(|_| "bad index")?;
        let score: f64 = score.trim().parse().map_err(|_| "bad score")?;
        let db = self.db_mut()?;
        db.update_preference_score(index, score).map_err(|e| e.to_string())?;
        Ok(Some("score updated".to_string()))
    }

    fn cmd_tree(&self) -> Result<Option<String>, String> {
        let db = self.db()?;
        let stats = db.tree_stats();
        let mut out = format!("{}\n", db.tree());
        out.push_str(&format!(
            "internal nodes {}, cells {}, leaf states {}, entries {}, ~{} bytes\n",
            stats.internal_nodes,
            stats.internal_cells,
            stats.leaf_nodes,
            stats.leaf_entries,
            stats.total_bytes()
        ));
        if let Some(cs) = db.cache_stats() {
            out.push_str(&format!(
                "query cache: {} hits / {} misses (hit ratio {:.0}%)\n",
                cs.hits,
                cs.misses,
                cs.hit_ratio() * 100.0
            ));
        }
        Ok(Some(out))
    }

    fn cmd_orders(&self) -> Result<Option<String>, String> {
        let db = self.db()?;
        let mut out = String::new();
        for order in ParamOrder::all_orders(db.env()) {
            let tree = db.tree().reorder(order.clone()).map_err(|e| e.to_string())?;
            out.push_str(&format!(
                "{:<60} {:>7} cells\n",
                format!("{}", order.display(db.env())),
                tree.stats().total_cells()
            ));
        }
        Ok(Some(out))
    }

    fn cmd_distance(&mut self, rest: &str) -> Result<Option<String>, String> {
        self.options.distance = match rest.trim() {
            "hierarchy" => DistanceKind::Hierarchy,
            "jaccard" => DistanceKind::Jaccard,
            other => return Err(format!("unknown distance {other:?} (hierarchy | jaccard)")),
        };
        Ok(Some(format!("distance set to {}", self.options.distance)))
    }
}

const HELP: &str = "\
commands:
  load demo                 load the two-city POI demo + a default profile
  save <path>               persist the database (ctxpref v1 text format)
  open <path>               load a persisted database
  env                       show context parameters and hierarchies
  context [v1 v2 v3]        set / show the current context state
  query [descriptor]        query the current or a hypothetical context
  explain [descriptor]      trace which stored preferences answered the query
  pref <cod> :: <attr> = <value> @ <score>   add a contextual preference
  prefs                     list the profile
  del <index>               remove a preference
  score <index> <score>     update a preference's interest score
  tree                      profile tree and cache statistics
  orders                    tree size under every parameter ordering
  distance hierarchy|jaccard  pick the state distance
  top <k>                   number of results to display
  quit";

fn main() {
    let stdin = io::stdin();
    let interactive = atty_stdin();
    let mut repl = Repl::new();
    if interactive {
        println!("ctxpref — context-aware preference database (ICDE 2007). Type `help`.");
    }
    loop {
        if interactive {
            print!("ctxpref> ");
            io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        match repl.handle(&line) {
            Ok(Some(out)) => println!("{}", out.trim_end()),
            Ok(None) => {}
            Err(e) if e == "__quit__" => break,
            Err(e) => eprintln!("error: {e}"),
        }
    }
}

/// Crude interactivity probe without extra dependencies: honour an
/// explicit environment override, default to non-interactive when lines
/// are piped (the common scripted case prints no prompts).
fn atty_stdin() -> bool {
    std::env::var("CTXPREF_INTERACTIVE").map(|v| v == "1").unwrap_or(false)
}
