//! Interactive shell for the context-aware preference database — the
//! equivalent of the paper's prototype used in the Section 5.1 user
//! study, served through the fault-tolerant [`CtxPrefService`] layer
//! (deadlines, panic isolation, degradation ladder).
//!
//! ```text
//! cargo run --bin ctxpref-cli [saved-database]
//! ctxpref> load demo
//! ctxpref> context Plaka warm friends
//! ctxpref> query
//! ctxpref> query location = Athens and temperature = good
//! ctxpref> pref accompanying_people = family :: type = zoo @ 0.95
//! ctxpref> prefs
//! ctxpref> tree
//! ```
//!
//! Also works non-interactively: `echo "load demo\nquery ..." | ctxpref-cli`.
//! Malformed input prints an error and continues; a database that fails
//! to load at startup (or mid-script) exits with a non-zero code.

use std::io::{self, BufRead, Write};
use std::sync::Arc;
use std::time::Duration;

use ctxpref::context::{ContextState, DistanceKind};
use ctxpref::core::{MultiUserDb, QueryAnswer, QueryOptions, ShardedMultiUserDb};
use ctxpref::net::{NetClient, NetClientConfig, NetServer, NetServerConfig, RemoteAnswer};
use ctxpref::prelude::*;
use ctxpref::router::{Router, RouterConfig};
use ctxpref::service::{
    AckMode, CtxPrefService, DurabilityConfig, LadderStep, Priority, ReplicatedConfig,
    ServiceAnswer, ServiceConfig,
};
use ctxpref::workload::reference::{poi_env, poi_relation};
use ctxpref::workload::user_study::{default_profile, AgeBand, Demographics, Sex, Taste};

/// The REPL serves a single profile; this is its user name inside the
/// multi-user service.
const USER: &str = "me";

struct Repl {
    service: Option<Arc<CtxPrefService>>,
    server: Option<NetServer>,
    router: Option<Router>,
    current: Option<ContextState>,
    options: QueryOptions,
    top_k: usize,
    deadline: Duration,
}

impl Repl {
    fn new() -> Self {
        Self {
            service: None,
            server: None,
            router: None,
            current: None,
            options: QueryOptions {
                use_cache: true,
                ..QueryOptions::default()
            },
            top_k: 10,
            deadline: ServiceConfig::default().default_deadline,
        }
    }

    fn service(&self) -> Result<&CtxPrefService, String> {
        self.service
            .as_deref()
            .ok_or_else(|| "no database loaded — try `load demo`".to_string())
    }

    /// Take the service back with exclusive ownership (for the
    /// durable/replicated restarts, which consume it). Refused while a
    /// TCP server is holding it.
    fn take_exclusive(&mut self) -> Result<CtxPrefService, String> {
        if self.server.is_some() {
            return Err("the TCP server holds the database — `serve stop` first".to_string());
        }
        let arc = self
            .service
            .take()
            .ok_or("no database loaded — try `load demo`")?;
        Arc::try_unwrap(arc).map_err(|arc| {
            self.service = Some(arc);
            "the database is still shared — stop whatever is serving it first".to_string()
        })
    }

    fn handle(&mut self, line: &str) -> Result<Option<String>, String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        match cmd {
            "help" => Ok(Some(HELP.to_string())),
            "quit" | "exit" => Err("__quit__".to_string()),
            "load" => self.cmd_load(rest),
            "save" => self.cmd_save(rest),
            "open" => self.cmd_open(rest),
            "durable" => self.cmd_durable(rest),
            "recover" => self.cmd_recover(rest),
            "checkpoint" => self.cmd_checkpoint(),
            "wal-status" => self.cmd_wal_status(),
            "scrub" => self.cmd_scrub(),
            "scrub-status" => self.cmd_scrub_status(),
            "replicate" => self.cmd_replicate(rest),
            "promote" => self.cmd_promote(rest),
            "repl-status" => self.cmd_repl_status(),
            "serve" => self.cmd_serve(rest),
            "remote" => self.cmd_remote(rest),
            "route" => self.cmd_route(rest),
            "route-status" => self.cmd_route_status(rest),
            "migrate" => self.cmd_migrate(rest),
            "env" => self.cmd_env(),
            "context" => self.cmd_context(rest),
            "query" => self.cmd_query(rest),
            "topk" => self.cmd_topk(rest),
            "views-status" => self.cmd_views_status(),
            "explain" => self.cmd_explain(rest),
            "pref" => self.cmd_pref(rest),
            "prefs" => self.cmd_prefs(),
            "del" => self.cmd_del(rest),
            "score" => self.cmd_score(rest),
            "tree" => self.cmd_tree(),
            "orders" => self.cmd_orders(),
            "distance" => self.cmd_distance(rest),
            "stats" => self.cmd_stats(),
            "deadline" => {
                let ms: u64 = rest
                    .parse()
                    .map_err(|_| format!("bad deadline: {rest:?}"))?;
                self.deadline = Duration::from_millis(ms.max(1));
                Ok(Some(format!(
                    "per-query deadline set to {:?}",
                    self.deadline
                )))
            }
            "top" => {
                self.top_k = rest.parse().map_err(|_| format!("bad k: {rest:?}"))?;
                Ok(Some(format!("showing top {}", self.top_k)))
            }
            other => Err(format!("unknown command {other:?} — try `help`")),
        }
    }

    fn install(&mut self, db: MultiUserDb) {
        let service = CtxPrefService::new(db, ServiceConfig::default());
        service.set_query_defaults(self.options);
        self.stop_server();
        self.service = Some(Arc::new(service));
        self.current = None;
    }

    fn stop_server(&mut self) {
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
    }

    fn cmd_load(&mut self, what: &str) -> Result<Option<String>, String> {
        if what != "demo" {
            return Err("only `load demo` is available".to_string());
        }
        let env = poi_env();
        let rel = poi_relation(&env, 2007, 5);
        let mut db = MultiUserDb::new(env.clone(), rel, 64);
        let demo = Demographics {
            age: AgeBand::Between30And50,
            sex: Sex::Female,
            taste: Taste::Mainstream,
        };
        let profile = default_profile(&env, db.relation(), demo);
        let n = profile.len();
        db.add_user_with_profile(USER, profile)
            .map_err(|e| e.to_string())?;
        let pois = db.relation().len();
        self.install(db);
        Ok(Some(format!(
            "loaded demo: {pois} points of interest, {n} preferences (mainstream 30–50 default profile)"
        )))
    }

    fn cmd_save(&mut self, path: &str) -> Result<Option<String>, String> {
        if path.is_empty() {
            return Err("usage: save <path>".to_string());
        }
        self.service()?.save(path).map_err(|e| e.to_string())?;
        Ok(Some(format!("saved to {path} (atomic, checksummed)")))
    }

    fn cmd_open(&mut self, path: &str) -> Result<Option<String>, String> {
        if path.is_empty() {
            return Err("usage: open <path>".to_string());
        }
        let db = open_any(path)?;
        let (pois, users) = (db.relation().len(), db.user_count());
        let prefs = db.profile(USER).map(|p| p.len()).unwrap_or(0);
        self.install(db);
        Ok(Some(format!(
            "opened {path}: {pois} tuples, {users} user(s), {prefs} preferences"
        )))
    }

    /// Restart the loaded database as a durable service: every further
    /// mutation is logged to a write-ahead log under `dir` before it is
    /// applied, and `recover <dir>` brings it back after a crash.
    fn cmd_durable(&mut self, dir: &str) -> Result<Option<String>, String> {
        if dir.is_empty() {
            return Err("usage: durable <dir>".to_string());
        }
        if std::path::Path::new(dir).join("MANIFEST").exists() {
            return Err(format!(
                "{dir} already holds a durable database — `recover {dir}`"
            ));
        }
        let service = self.take_exclusive()?;
        let db = service.shutdown();
        let service =
            CtxPrefService::new_durable(db, ServiceConfig::default(), DurabilityConfig::new(dir))
                .map_err(|e| format!("{e} (database dropped — reload it)"))?;
        service.set_query_defaults(self.options);
        self.service = Some(Arc::new(service));
        Ok(Some(format!(
            "durable: mutations now logged under {dir} (fsync per record, checkpoint every 60s)"
        )))
    }

    /// Recover a durable directory: load its latest checkpoint, replay
    /// the per-shard logs, repair a torn tail, and keep logging there.
    fn cmd_recover(&mut self, dir: &str) -> Result<Option<String>, String> {
        if dir.is_empty() {
            return Err("usage: recover <dir>".to_string());
        }
        let (service, report) =
            CtxPrefService::recover(ServiceConfig::default(), DurabilityConfig::new(dir))
                .map_err(|e| e.to_string())?;
        service.set_query_defaults(self.options);
        self.stop_server();
        self.service = Some(Arc::new(service));
        self.current = None;
        Ok(Some(format!(
            "recovered checkpoint generation {}: {} record(s) replayed, {} rejected, \
             {} torn tail(s) repaired",
            report.generation, report.replayed, report.rejected, report.truncated_tails
        )))
    }

    /// Restart the loaded database as a replicated service: a
    /// primary/replica cluster under `dir`, writes quorum-acked (or
    /// async), automatic failover on primary death.
    fn cmd_replicate(&mut self, rest: &str) -> Result<Option<String>, String> {
        let mut parts = rest.split_whitespace();
        let dir = parts
            .next()
            .ok_or("usage: replicate <dir> [nodes] [async|quorum]")?;
        let nodes: usize = match parts.next() {
            Some(n) => n.parse().map_err(|_| format!("bad node count: {n:?}"))?,
            None => 3,
        };
        if nodes < 1 {
            return Err("a cluster needs at least one node".to_string());
        }
        let ack = match parts.next() {
            None | Some("quorum") => AckMode::Quorum,
            Some("async") => AckMode::Async,
            Some(other) => return Err(format!("unknown ack mode {other:?} (async | quorum)")),
        };
        let service = self.take_exclusive()?;
        let db = service.shutdown();
        let rcfg = ReplicatedConfig {
            ack_mode: ack,
            ..ReplicatedConfig::new(dir, nodes)
        };
        let service = CtxPrefService::new_replicated(db, ServiceConfig::default(), rcfg)
            .map_err(|e| format!("{e} (database dropped — reload it)"))?;
        service.set_query_defaults(self.options);
        self.service = Some(Arc::new(service));
        Ok(Some(format!(
            "replicated: {nodes} node(s) under {dir}, {} acks, auto-failover on",
            match ack {
                AckMode::Quorum => "quorum",
                AckMode::Async => "async",
            }
        )))
    }

    /// Manually promote a node to primary (majority-guarded; the
    /// candidate catches up from every reachable peer before serving).
    fn cmd_promote(&mut self, rest: &str) -> Result<Option<String>, String> {
        let id: usize = rest.trim().parse().map_err(|_| "usage: promote <node>")?;
        let epoch = self.service()?.promote(id).map_err(|e| e.to_string())?;
        Ok(Some(format!("node {id} promoted at epoch {epoch}")))
    }

    fn cmd_repl_status(&self) -> Result<Option<String>, String> {
        let status = self
            .service()?
            .replication_status()
            .map_err(|e| e.to_string())?;
        let mut out = format!(
            "primary {}, epoch {}, max lag {} record(s)\n",
            match status.primary {
                Some(p) => format!("node {p}"),
                None => "none (failover pending)".to_string(),
            },
            status.epoch,
            status.max_lag
        );
        for n in &status.nodes {
            out.push_str(&format!(
                "node {}: {}{}, epoch {}, {} record(s) applied\n",
                n.id,
                if n.live { "live" } else { "down" },
                if n.is_primary { " PRIMARY" } else { "" },
                n.epoch,
                n.applied
            ));
        }
        let history: Vec<String> = status
            .promotions
            .iter()
            .map(|(e, n)| format!("epoch {e} → node {n}"))
            .collect();
        out.push_str(&format!("promotions: {}", history.join(", ")));
        Ok(Some(out))
    }

    /// Serve the loaded database over TCP: `serve <addr>` binds a
    /// framed-protocol listener in front of the service (the REPL
    /// keeps working alongside it), `serve` shows what is being
    /// served, `serve stop` drains and stops.
    fn cmd_serve(&mut self, rest: &str) -> Result<Option<String>, String> {
        match rest {
            "" => Ok(Some(match &self.server {
                Some(server) => format!(
                    "serving on {} ({} connection(s) active)",
                    server.local_addr(),
                    server.active_connections()
                ),
                None => "not serving — `serve <addr>` (e.g. serve 127.0.0.1:7878)".to_string(),
            })),
            "stop" => match self.server.take() {
                Some(server) => {
                    let addr = server.local_addr();
                    let undrained = server.shutdown();
                    Ok(Some(if undrained == 0 {
                        format!("stopped serving on {addr} (clean drain)")
                    } else {
                        format!("stopped serving on {addr} ({undrained} connection(s) abandoned)")
                    }))
                }
                None => Err("not serving".to_string()),
            },
            addr => {
                if self.server.is_some() {
                    return Err("already serving — `serve stop` first".to_string());
                }
                let service = self
                    .service
                    .clone()
                    .ok_or("no database loaded — try `load demo`")?;
                let server = NetServer::bind(addr, service, NetServerConfig::default())
                    .map_err(|e| format!("failed to bind {addr}: {e}"))?;
                let bound = server.local_addr();
                self.server = Some(server);
                Ok(Some(format!(
                    "serving on {bound} — `remote {bound} ping` from another shell"
                )))
            }
        }
    }

    /// Drive a remote server: `remote <addr> <cmd…>` dials the framed
    /// protocol, runs one command against the remote profile, and
    /// prints the response.
    fn cmd_remote(&mut self, rest: &str) -> Result<Option<String>, String> {
        let (addr, cmd) = rest
            .split_once(char::is_whitespace)
            .map(|(a, c)| (a, c.trim()))
            .ok_or("usage: remote <addr> <ping|query|topk|views-status|pref|bulk-pref|del|score|checkpoint|flush|wal-status|repl-status|stats>")?;
        let mut client = NetClient::connect(addr, NetClientConfig::default());
        let run = |e: ctxpref::net::NetError| e.to_string();
        let (verb, args) = match cmd.split_once(char::is_whitespace) {
            Some((v, a)) => (v, a.trim()),
            None => (cmd, ""),
        };
        match verb {
            "ping" => {
                client.ping().map_err(run)?;
                Ok(Some(format!("{addr} is alive")))
            }
            "query" if !args.is_empty() => {
                let names: Vec<&str> = args.split_whitespace().collect();
                let answer = client
                    .query(USER, "name", self.top_k, self.deadline, &names)
                    .map_err(run)?;
                Ok(Some(render_remote_answer(&answer)))
            }
            "topk" => {
                let mut parts = args.split_whitespace();
                let user = parts
                    .next()
                    .ok_or("usage: remote <addr> topk <user> <k> <state…>")?;
                let k: usize = parts
                    .next()
                    .ok_or("usage: remote <addr> topk <user> <k> <state…>")?
                    .parse()
                    .map_err(|_| "bad k")?;
                let names: Vec<&str> = parts.collect();
                if names.is_empty() {
                    return Err("usage: remote <addr> topk <user> <k> <state…>".to_string());
                }
                let answer = client
                    .query_topk(user, "name", k, self.deadline, &names)
                    .map_err(run)?;
                Ok(Some(render_remote_answer(&answer)))
            }
            "views-status" => Ok(Some(client.views_status().map_err(run)?)),
            "query-desc" if !args.is_empty() => {
                let answer = client
                    .query_descriptor(USER, "name", self.top_k, args)
                    .map_err(run)?;
                Ok(Some(render_remote_answer(&answer)))
            }
            "pref" => {
                let (cod, clause) = args
                    .split_once("::")
                    .ok_or("syntax: pref <descriptor> :: <attr> = <value> @ <score>")?;
                let (assign, score) = clause
                    .rsplit_once('@')
                    .ok_or("syntax: pref <descriptor> :: <attr> = <value> @ <score>")?;
                let (attr, value) = assign
                    .split_once('=')
                    .ok_or("expected `<attr> = <value>`")?;
                let score: f64 = score.trim().parse().map_err(|_| "bad score")?;
                client
                    .insert_preference(USER, cod.trim(), attr.trim(), value.trim(), score)
                    .map_err(run)?;
                Ok(Some("preference stored remotely".to_string()))
            }
            "del" => {
                let index: usize = args.trim().parse().map_err(|_| "usage: del <index>")?;
                let score = client.remove_preference(USER, index).map_err(run)?;
                Ok(Some(format!(
                    "removed remote preference scoring {score:.2}"
                )))
            }
            "score" => {
                let (idx, score) = args
                    .split_once(char::is_whitespace)
                    .ok_or("usage: score <index> <score>")?;
                let index: usize = idx.trim().parse().map_err(|_| "bad index")?;
                let score: f64 = score.trim().parse().map_err(|_| "bad score")?;
                client.update_score(USER, index, score).map_err(run)?;
                Ok(Some("remote score updated".to_string()))
            }
            "bulk-pref" => {
                // Several prefs in one wire frame, `;`-separated:
                // bulk-pref <desc> :: <attr> = <value> @ <score> ; …
                let mut items: Vec<(String, String, String, f64)> = Vec::new();
                for part in args.split(';') {
                    let part = part.trim();
                    if part.is_empty() {
                        continue;
                    }
                    let (cod, clause) = part.split_once("::").ok_or(
                        "syntax: bulk-pref <descriptor> :: <attr> = <value> @ <score> [; …]",
                    )?;
                    let (assign, score) = clause
                        .rsplit_once('@')
                        .ok_or("each item needs `… @ <score>`")?;
                    let (attr, value) = assign
                        .split_once('=')
                        .ok_or("expected `<attr> = <value>`")?;
                    let score: f64 = score.trim().parse().map_err(|_| "bad score")?;
                    items.push((
                        cod.trim().to_string(),
                        attr.trim().to_string(),
                        value.trim().to_string(),
                        score,
                    ));
                }
                if items.is_empty() {
                    return Err("bulk-pref needs at least one item".to_string());
                }
                let borrowed: Vec<(&str, &str, &str, f64)> = items
                    .iter()
                    .map(|(c, a, v, s)| (c.as_str(), a.as_str(), v.as_str(), *s))
                    .collect();
                let applied = client.insert_preferences(USER, &borrowed).map_err(run)?;
                Ok(Some(format!(
                    "{applied} preference(s) stored remotely in one batch"
                )))
            }
            "checkpoint" => Ok(Some(client.checkpoint().map_err(run)?)),
            "flush" => Ok(Some(client.flush_wal().map_err(run)?)),
            "scrub" => match client.scrub().map_err(run)? {
                ctxpref::net::Response::ScrubReport {
                    segments_verified,
                    checkpoints_verified,
                    read_errors,
                    quarantined,
                    healed,
                } => Ok(Some(format!(
                    "scrub: {segments_verified} sealed segment(s) + {checkpoints_verified} \
                     checkpoint(s) verified, {read_errors} transient read error(s), \
                     {quarantined} file(s) quarantined{}",
                    if quarantined == 0 {
                        ""
                    } else if healed {
                        " (healed)"
                    } else {
                        " (HEAL FAILED — will retry)"
                    }
                ))),
                other => Err(format!("unexpected scrub response {other:?}")),
            },
            "scrub-status" => match client.scrub_status().map_err(run)? {
                ctxpref::net::Response::ScrubInfo {
                    passes,
                    quarantined,
                    read_errors,
                    heals,
                    rescued_shards,
                    disk_full_sheds,
                    rotate_failures,
                } => Ok(Some(format!(
                    "scrub passes {passes}, quarantined {quarantined}, transient read errors \
                     {read_errors}, heals {heals}\nrescued shards {rescued_shards}, disk-full \
                     sheds {disk_full_sheds}, rotate failures {rotate_failures}"
                ))),
                other => Err(format!("unexpected scrub-status response {other:?}")),
            },
            "wal-status" => Ok(Some(client.wal_status().map_err(run)?)),
            "repl-status" => Ok(Some(client.repl_status().map_err(run)?)),
            "stats" => Ok(Some(client.stats().map_err(run)?)),
            other => Err(format!(
                "unknown remote command {other:?} — ping, query <values>, topk <user> <k> \
                 <values>, views-status, query-desc <descriptor>, pref, bulk-pref, del, score, \
                 checkpoint, flush, scrub, scrub-status, wal-status, repl-status, stats"
            )),
        }
    }

    /// Connect (or inspect) the routing tier: `route <cluster…>` builds
    /// a consistent-hashing router over the given clusters, one
    /// argument per cluster with comma-separated endpoints; `route`
    /// alone shows the table; `route off` disconnects.
    fn cmd_route(&mut self, rest: &str) -> Result<Option<String>, String> {
        match rest {
            "" => {
                let Some(router) = &self.router else {
                    return Ok(Some(
                        "no routing tier — `route <addr[,addr…]> <addr[,addr…]> …`".to_string(),
                    ));
                };
                let mut out = format!(
                    "routing over {} cluster(s), epoch {}\n",
                    router.clusters(),
                    router.epoch()
                );
                let overrides = router.overrides();
                if overrides.is_empty() {
                    out.push_str("no per-user overrides (everyone on their hash home)");
                } else {
                    for (user, cluster, epoch) in overrides {
                        out.push_str(&format!(
                            "{user} → cluster {cluster} (moved at epoch {epoch})\n"
                        ));
                    }
                }
                Ok(Some(out))
            }
            "off" => match self.router.take() {
                Some(_) => Ok(Some("routing tier disconnected".to_string())),
                None => Err("no routing tier connected".to_string()),
            },
            clusters => {
                let endpoints: Vec<Vec<String>> = clusters
                    .split_whitespace()
                    .map(|c| c.split(',').map(str::to_string).collect())
                    .collect();
                let n = endpoints.len();
                self.router = Some(Router::new(endpoints, RouterConfig::default()));
                Ok(Some(format!(
                    "routing over {n} cluster(s) — `route-status`, `migrate <user> <cluster>`"
                )))
            }
        }
    }

    fn router(&mut self) -> Result<&mut Router, String> {
        self.router
            .as_mut()
            .ok_or_else(|| "no routing tier — `route <addr…>` first".to_string())
    }

    /// Probe the routed clusters: primary presence, replication epoch,
    /// user and migration-entry counts, breaker state.
    fn cmd_route_status(&mut self, rest: &str) -> Result<Option<String>, String> {
        let router = self.router()?;
        let clusters: Vec<usize> = if rest.is_empty() {
            (0..router.clusters()).collect()
        } else {
            vec![rest
                .trim()
                .parse()
                .map_err(|_| "usage: route-status [cluster]")?]
        };
        let mut out = String::new();
        for c in clusters {
            match router.route_status(c) {
                Ok(info) => out.push_str(&format!(
                    "cluster {c}: {}, epoch {}, {} user(s), {} migration entr{}, breaker {:?}\n",
                    if info.has_primary {
                        "primary up"
                    } else {
                        "NO PRIMARY"
                    },
                    info.epoch,
                    info.users,
                    info.migrations,
                    if info.migrations == 1 { "y" } else { "ies" },
                    router.breaker_state(c),
                )),
                Err(e) => out.push_str(&format!(
                    "cluster {c}: unreachable ({e}), breaker {:?}\n",
                    router.breaker_state(c)
                )),
            }
        }
        Ok(Some(out))
    }

    /// Live-migrate a user to another cluster through the router:
    /// snapshot copy, WAL catch-up, brief write fence, epoch flip.
    fn cmd_migrate(&mut self, rest: &str) -> Result<Option<String>, String> {
        let (user, dest) = rest
            .split_once(char::is_whitespace)
            .ok_or("usage: migrate <user> <cluster>")?;
        let dest: usize = dest.trim().parse().map_err(|_| "bad cluster number")?;
        let router = self.router()?;
        if dest >= router.clusters() {
            return Err(format!(
                "cluster {dest} does not exist (have {})",
                router.clusters()
            ));
        }
        let report = router
            .migrate_user(user.trim(), dest)
            .map_err(|e| e.to_string())?;
        if !report.moved {
            return Ok(Some(format!(
                "{} already lives on cluster {} — nothing to move",
                report.user, report.to
            )));
        }
        Ok(Some(format!(
            "{} moved: cluster {} → {} at epoch {} ({} catch-up page(s), \
             writes fenced {:?}, {} snapshot restart(s))",
            report.user,
            report.from,
            report.to,
            report.epoch,
            report.pages,
            report.fence,
            report.restarts
        )))
    }

    fn cmd_checkpoint(&self) -> Result<Option<String>, String> {
        let report = self.service()?.checkpoint().map_err(|e| e.to_string())?;
        Ok(Some(format!(
            "checkpoint generation {} written ({} user(s)); older generations collected",
            report.generation, report.users
        )))
    }

    fn cmd_wal_status(&self) -> Result<Option<String>, String> {
        let status = self.service()?.wal_status().map_err(|e| e.to_string())?;
        let mut out = format!(
            "appends {}, group-commit batches {}, rotations {}\n",
            status.appends, status.batches, status.rotations
        );
        for (i, s) in status.shards.iter().enumerate() {
            out.push_str(&format!(
                "shard {i}: segment {} ({} bytes), last lsn {}, synced lsn {}, pending {}{}\n",
                s.seg_no,
                s.seg_bytes,
                s.last_lsn,
                s.synced_lsn,
                s.pending,
                if s.poisoned { " POISONED" } else { "" }
            ));
        }
        Ok(Some(out))
    }

    fn cmd_scrub(&self) -> Result<Option<String>, String> {
        let report = self.service()?.scrub().map_err(|e| e.to_string())?;
        let mut out = format!(
            "scrub: {} sealed segment(s) + {} checkpoint(s) verified, \
             {} transient read error(s), {} file(s) quarantined{}",
            report.segments_verified,
            report.checkpoints_verified,
            report.read_errors,
            report.quarantined.len(),
            if report.quarantined.is_empty() {
                ""
            } else if report.healed {
                " (healed with a fresh checkpoint)"
            } else {
                " (HEAL FAILED — will retry; recovery honours quarantine)"
            }
        );
        for q in &report.quarantined {
            out.push_str(&format!(
                "\nquarantined {} → {}: {}",
                q.original.display(),
                q.quarantined.display(),
                q.reason
            ));
        }
        Ok(Some(out))
    }

    fn cmd_scrub_status(&self) -> Result<Option<String>, String> {
        let s = self.service()?.scrub_status().map_err(|e| e.to_string())?;
        Ok(Some(format!(
            "scrub passes {}, quarantined {}, transient read errors {}, heals {}\n\
             rescued shards {}, disk-full sheds {}, rotate failures {}",
            s.passes,
            s.quarantined,
            s.read_errors,
            s.heals,
            s.rescued_shards,
            s.disk_full_sheds,
            s.rotate_failures
        )))
    }

    fn cmd_env(&self) -> Result<Option<String>, String> {
        self.service()?.with_db(|db| {
            let mut out = String::new();
            for (_, h) in db.env().iter() {
                let levels: Vec<String> = (0..h.level_count())
                    .map(|l| {
                        let l = ctxpref::hierarchy::LevelId(l as u8);
                        format!("{} ({} values)", h.level_name(l), h.domain_size(l))
                    })
                    .collect();
                out.push_str(&format!("{}: {}\n", h.name(), levels.join(" ≺ ")));
            }
            Ok(Some(out))
        })
    }

    fn cmd_context(&mut self, rest: &str) -> Result<Option<String>, String> {
        let service = self.service()?;
        if rest.is_empty() {
            return service.with_db(|db| {
                Ok(Some(match &self.current {
                    Some(s) => format!("current context: {}", s.display(db.env())),
                    None => "no current context set".to_string(),
                }))
            });
        }
        let names: Vec<&str> = rest.split_whitespace().collect();
        let (state, rendered) = service.with_db(|db| {
            let state = ContextState::parse(db.env(), &names).map_err(|e| e.to_string())?;
            let rendered = format!("current context set to {}", state.display(db.env()));
            Ok::<_, String>((state, rendered))
        })?;
        self.current = Some(state);
        Ok(Some(rendered))
    }

    /// State queries go through the service: deadline enforced, panics
    /// contained, and the degradation ladder engaged on failure.
    fn cmd_query(&mut self, rest: &str) -> Result<Option<String>, String> {
        let top_k = self.top_k;
        let service = self.service()?;
        if rest.is_empty() {
            let state = self
                .current
                .clone()
                .ok_or("no context — use `context <values>` or pass a descriptor")?;
            let answer = service
                .query_state_deadline(USER, &state, self.deadline)
                .map_err(|e| e.to_string())?;
            return service.with_db(|db| {
                let mut out = render_answer(db, &answer.answer, top_k)?;
                out.push_str(&render_ladder(db, &answer));
                Ok(Some(out))
            });
        }
        // Descriptor queries (hypothetical contexts) use the direct
        // library path: they are exploratory, not servable lookups.
        service.with_db(|db| {
            let ecod = ctxpref::context::parse_extended_descriptor(db.env(), rest)
                .map_err(|e| e.to_string())?;
            let answer = db.query(USER, &ecod).map_err(|e| e.to_string())?;
            let mut out = render_answer(db, &answer, top_k)?;
            for r in &answer.resolutions {
                out.push_str(&format!(
                    "[{} → {} via {} candidate(s), {} cells]\n",
                    r.query_state.display(db.env()),
                    r.outcome,
                    r.candidate_count,
                    r.cells
                ));
            }
            Ok(Some(out))
        })
    }

    /// Top-k pushdown query: `topk <user> <k> [state…]` asks the
    /// service for exactly `k` rows, served from a materialized view
    /// when one is fresh for that (user, state). With no state names
    /// the current context is used.
    fn cmd_topk(&mut self, rest: &str) -> Result<Option<String>, String> {
        let mut parts = rest.split_whitespace();
        let user = parts.next().ok_or("usage: topk <user> <k> [state…]")?;
        let k: usize = parts
            .next()
            .ok_or("usage: topk <user> <k> [state…]")?
            .parse()
            .map_err(|_| "bad k")?;
        let names: Vec<&str> = parts.collect();
        let deadline = self.deadline;
        let current = self.current.clone();
        let service = self.service()?;
        let state = if names.is_empty() {
            current.ok_or("no context — use `context <values>` or name one")?
        } else {
            service
                .with_db(|db| ContextState::parse(db.env(), &names).map_err(|e| e.to_string()))?
        };
        let answer = service
            .query_topk_tiered(user, &state, k, deadline, Priority::Interactive)
            .map_err(|e| e.to_string())?;
        service.with_db(|db| {
            let mut out = render_answer(db, &answer.answer, k)?;
            if answer.step == LadderStep::View {
                out.push_str("[served from a materialized view]\n");
            }
            out.push_str(&render_ladder(db, &answer));
            Ok(Some(out))
        })
    }

    /// Materialized-view catalog status: aggregate serving counters
    /// plus the pinned states per user.
    fn cmd_views_status(&self) -> Result<Option<String>, String> {
        Ok(Some(self.service()?.views_status()))
    }

    fn cmd_explain(&mut self, rest: &str) -> Result<Option<String>, String> {
        let current = self.current.clone();
        let service = self.service()?;
        service.with_db(|db| {
            let answer = if rest.is_empty() {
                let state =
                    current.ok_or("no context — use `context <values>` or pass a descriptor")?;
                // Bypass the cache: an explanation needs the resolution
                // trace, which cached answers do not carry.
                let ecod = ctxpref::context::ExtendedContextDescriptor::from(descriptor_of(
                    db.env(),
                    &state,
                ));
                db.query(USER, &ecod).map_err(|e| e.to_string())?
            } else {
                let ecod = ctxpref::context::parse_extended_descriptor(db.env(), rest)
                    .map_err(|e| e.to_string())?;
                db.query(USER, &ecod).map_err(|e| e.to_string())?
            };
            let tree = db.tree(USER).map_err(|e| e.to_string())?;
            let mut out = String::new();
            for r in &answer.resolutions {
                out.push_str(&ctxpref::resolve::explain_resolution(
                    &tree,
                    db.relation().schema(),
                    r,
                ));
            }
            Ok(Some(out))
        })
    }

    fn cmd_pref(&mut self, rest: &str) -> Result<Option<String>, String> {
        // pref <descriptor> :: <attr> = <value> @ <score>
        let (cod, clause) = rest
            .split_once("::")
            .ok_or("syntax: pref <descriptor> :: <attr> = <value> @ <score>")?;
        let (assign, score) = clause
            .rsplit_once('@')
            .ok_or("syntax: pref <descriptor> :: <attr> = <value> @ <score>")?;
        let (attr, value) = assign
            .split_once('=')
            .ok_or("expected `<attr> = <value>`")?;
        let score: f64 = score.trim().parse().map_err(|_| "bad score")?;
        self.service()?
            .insert_preference_eq(USER, cod.trim(), attr.trim(), value.trim().into(), score)
            .map_err(|e| e.to_string())?;
        Ok(Some("preference stored".to_string()))
    }

    fn cmd_prefs(&self) -> Result<Option<String>, String> {
        self.service()?.with_db(|db| {
            let profile = db.profile(USER).map_err(|e| e.to_string())?;
            let mut out = String::new();
            for (i, p) in profile.iter().enumerate() {
                out.push_str(&format!(
                    "[{i}] {} ⇒ {} @ {:.2}\n",
                    p.descriptor().display(db.env()),
                    p.clause().display(db.relation().schema()),
                    p.score()
                ));
            }
            if out.is_empty() {
                out.push_str("(empty profile)\n");
            }
            Ok(Some(out))
        })
    }

    fn cmd_del(&mut self, rest: &str) -> Result<Option<String>, String> {
        let index: usize = rest.trim().parse().map_err(|_| "usage: del <index>")?;
        let removed = self
            .service()?
            .remove_preference(USER, index)
            .map_err(|e| e.to_string())?;
        Ok(Some(format!(
            "removed preference scoring {:.2}",
            removed.score()
        )))
    }

    fn cmd_score(&mut self, rest: &str) -> Result<Option<String>, String> {
        let (idx, score) = rest
            .split_once(char::is_whitespace)
            .ok_or("usage: score <index> <score>")?;
        let index: usize = idx.trim().parse().map_err(|_| "bad index")?;
        let score: f64 = score.trim().parse().map_err(|_| "bad score")?;
        self.service()?
            .update_preference_score(USER, index, score)
            .map_err(|e| e.to_string())?;
        Ok(Some("score updated".to_string()))
    }

    fn cmd_tree(&self) -> Result<Option<String>, String> {
        self.service()?.with_db(|db| {
            let stats = db.tree_stats(USER).map_err(|e| e.to_string())?;
            let tree = db.tree(USER).map_err(|e| e.to_string())?;
            let mut out = format!("{tree}\n");
            out.push_str(&format!(
                "internal nodes {}, cells {}, leaf states {}, entries {}, ~{} bytes\n",
                stats.internal_nodes,
                stats.internal_cells,
                stats.leaf_nodes,
                stats.leaf_entries,
                stats.total_bytes()
            ));
            if let Some(cs) = db.cache_stats(USER).map_err(|e| e.to_string())? {
                out.push_str(&format!(
                    "query cache: {} hits / {} misses (hit ratio {:.0}%)\n",
                    cs.hits,
                    cs.misses,
                    cs.hit_ratio() * 100.0
                ));
            }
            Ok(Some(out))
        })
    }

    fn cmd_orders(&self) -> Result<Option<String>, String> {
        self.service()?.with_db(|db| {
            let tree = db.tree(USER).map_err(|e| e.to_string())?;
            let mut out = String::new();
            for order in ParamOrder::all_orders(db.env()) {
                let reordered = tree.reorder(order.clone()).map_err(|e| e.to_string())?;
                out.push_str(&format!(
                    "{:<60} {:>7} cells\n",
                    format!("{}", order.display(db.env())),
                    reordered.stats().total_cells()
                ));
            }
            Ok(Some(out))
        })
    }

    fn cmd_distance(&mut self, rest: &str) -> Result<Option<String>, String> {
        self.options.distance = match rest.trim() {
            "hierarchy" => DistanceKind::Hierarchy,
            "jaccard" => DistanceKind::Jaccard,
            other => return Err(format!("unknown distance {other:?} (hierarchy | jaccard)")),
        };
        if let Some(service) = &self.service {
            service.set_query_defaults(self.options);
        }
        Ok(Some(format!("distance set to {}", self.options.distance)))
    }

    fn cmd_stats(&self) -> Result<Option<String>, String> {
        let service = self.service()?;
        let s = service.stats();
        let mut out = format!(
            "served: {} view, {} cached, {} exact, {} nearest-state, {} default\n\
             contained panics {}, deadline misses {}, shed {}, errors {}\n\
             cache: {} hits, {} misses, {} evictions, {} invalidations\n\
             views: {} materialized, {} pinned, {} hits, {} patches, {} rebuilds",
            s.served_view,
            s.served_cached,
            s.served_exact,
            s.served_nearest,
            s.served_default,
            s.panics_contained,
            s.deadline_exceeded,
            s.shed,
            s.errors,
            s.cache_hits,
            s.cache_misses,
            s.cache_evictions,
            s.cache_invalidations,
            s.materialized_views,
            s.pinned_views,
            s.view_hits,
            s.view_patches,
            s.view_rebuilds
        );
        if service.is_durable() {
            out.push_str(&format!(
                "\nwal appends {}, group-commit batches {}, checkpoints {}, recovered lsn {}",
                s.wal_appends, s.group_commit_batches, s.checkpoints, s.recovered_lsn
            ));
        }
        if service.is_replicated() {
            out.push_str(&format!(
                "\nreplication epoch {}, max lag {}, failovers {}",
                s.replication_epoch, s.replication_max_lag, s.failovers
            ));
        }
        Ok(Some(out))
    }
}

fn render_answer(
    db: &ShardedMultiUserDb,
    answer: &QueryAnswer,
    k: usize,
) -> Result<String, String> {
    let mut out = db
        .render_top(answer, "name", k)
        .map_err(|e| e.to_string())?;
    if answer.results.is_empty() {
        out.push_str("(no results — no stored preference covers this context)\n");
    }
    Ok(out)
}

fn render_remote_answer(answer: &RemoteAnswer) -> String {
    let mut out = String::new();
    for (i, row) in answer.rows.iter().enumerate() {
        out.push_str(&format!(
            "{:>3}. {:<40} {:.3}\n",
            i + 1,
            row.name,
            row.score
        ));
    }
    if answer.rows.is_empty() {
        out.push_str("(no results — no stored preference covers this context)\n");
    }
    for f in &answer.fallbacks {
        out.push_str(&format!("[{} failed: {}]\n", f.step, f.reason));
    }
    if answer.is_degraded() {
        let via = match &answer.resolved_state {
            Some(s) => format!(" via {s}"),
            None => String::new(),
        };
        out.push_str(&format!("[degraded answer: {}{via}]\n", answer.step));
    }
    out.push_str(&format!(
        "[remote {} answer in {}µs]\n",
        answer.step, answer.elapsed_us
    ));
    out
}

fn render_ladder(db: &ShardedMultiUserDb, answer: &ServiceAnswer) -> String {
    let mut out = String::new();
    if answer.answer.from_cache {
        out.push_str("[served from the context query tree]\n");
    }
    for f in &answer.fallbacks {
        out.push_str(&format!("[{} failed: {}]\n", f.step, f.reason));
    }
    if answer.is_degraded() {
        let via = match &answer.resolved_state {
            Some(s) => format!(" via {}", s.display(db.env())),
            None => String::new(),
        };
        out.push_str(&format!("[degraded answer: {}{via}]\n", answer.step));
    }
    out
}

/// The descriptor pinning every non-`all` parameter of a state (used to
/// replay a state query without the cache, for explanation).
fn descriptor_of(
    env: &ctxpref::context::ContextEnvironment,
    s: &ContextState,
) -> ctxpref::context::ContextDescriptor {
    let mut cod = ctxpref::context::ContextDescriptor::empty();
    for (p, h) in env.iter() {
        let v = s.value(p);
        if v != h.all_value() {
            cod = cod.with(p, ctxpref::context::ParameterDescriptor::Eq(v));
        }
    }
    cod
}

/// Open a saved database: the multi-user format first, then the
/// single-user format (wrapped as user `me`) for older files.
fn open_any(path: &str) -> Result<MultiUserDb, String> {
    match ctxpref::storage::load_multi_user(path) {
        Ok(db) => Ok(db),
        Err(multi_err) => {
            let single = ctxpref::storage::load_database(path)
                .map_err(|_| format!("failed to load {path}: {multi_err}"))?;
            let mut db = MultiUserDb::new(single.env().clone(), single.relation().clone(), 64);
            db.add_user_with_profile(USER, single.profile().clone())
                .map_err(|e| e.to_string())?;
            Ok(db)
        }
    }
}

const HELP: &str = "\
commands:
  load demo                 load the two-city POI demo + a default profile
  save <path>               persist the database (atomic, checksummed)
  open <path>               load a persisted database
  durable <dir>             log every mutation to a write-ahead log under <dir>
  recover <dir>             recover a durable database (checkpoint + WAL replay)
  checkpoint                snapshot now and shrink the log's replay window
  wal-status                per-shard log positions and durability counters
  scrub                     verify segments + checkpoint at rest, quarantine + heal damage
  scrub-status              self-healing counters (passes, quarantines, heals, rescues)
  replicate <dir> [n] [async|quorum]   serve as an n-node primary/replica cluster
  promote <node>            manually promote a node to primary
  repl-status               roles, epochs, lag, and promotion history
  serve <addr>|stop         serve the database over TCP (framed protocol)
  remote <addr> <cmd>       drive a remote server (ping, query <values>,
                            query-desc, pref, bulk-pref, del, score,
                            checkpoint, flush, wal-status, repl-status, stats)
  route [<addrs…>|off]      connect a routing tier (one arg per cluster,
                            comma-separated endpoints) or show the table
  route-status [cluster]    probe routed clusters: primary, users, breaker
  migrate <user> <cluster>  live-migrate a user (copy, catch-up, fence, flip)
  env                       show context parameters and hierarchies
  context [v1 v2 v3]        set / show the current context state
  query [descriptor]        query the current or a hypothetical context
  topk <user> <k> [state…]  top-k pushdown (materialized view when fresh)
  views-status              materialized-view counters and pinned states
  explain [descriptor]      trace which stored preferences answered the query
  pref <cod> :: <attr> = <value> @ <score>   add a contextual preference
  prefs                     list the profile
  del <index>               remove a preference
  score <index> <score>     update a preference's interest score
  tree                      profile tree and cache statistics
  orders                    tree size under every parameter ordering
  distance hierarchy|jaccard  pick the state distance
  deadline <ms>             per-query deadline for served queries
  stats                     serving-layer counters (ladder, panics, deadlines)
  top <k>                   number of results to display
  quit";

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let stdin = io::stdin();
    let interactive = atty_stdin();
    let mut repl = Repl::new();

    // Subcommand forms:
    //   ctxpref-cli serve <addr> [saved-database]   load + serve, REPL alongside
    //   ctxpref-cli remote <addr> <cmd…>            one-shot remote command
    //   ctxpref-cli [saved-database]                plain REPL
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut startup: Vec<String> = Vec::new();
    let serve_mode = args.first().map(String::as_str) == Some("serve");
    match args.first().map(String::as_str) {
        Some("serve") => {
            let Some(addr) = args.get(1) else {
                eprintln!("usage: ctxpref-cli serve <addr> [saved-database]");
                return 2;
            };
            startup.push(match args.get(2) {
                Some(path) => format!("open {path}"),
                None => "load demo".to_string(),
            });
            startup.push(format!("serve {addr}"));
        }
        Some("remote") => {
            if args.len() < 3 {
                eprintln!("usage: ctxpref-cli remote <addr> <cmd…>");
                return 2;
            }
            match repl.cmd_remote(&args[1..].join(" ")) {
                Ok(Some(out)) => {
                    println!("{}", out.trim_end());
                    return 0;
                }
                Ok(None) => return 0,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 1;
                }
            }
        }
        // A database named on the command line must load; otherwise
        // the process is not in the state the caller asked for.
        Some(path) => startup.push(format!("open {path}")),
        None => {}
    }
    for line in startup {
        match repl.handle(&line) {
            Ok(Some(out)) => println!("{}", out.trim_end()),
            Ok(None) => {}
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        }
    }

    if interactive {
        println!("ctxpref — context-aware preference database (ICDE 2007). Type `help`.");
    }
    loop {
        if interactive {
            print!("ctxpref> ");
            io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            // In serve mode a closed stdin means "run as a daemon":
            // keep the listener up until the process is killed.
            Ok(0) if serve_mode && repl.server.is_some() => loop {
                std::thread::sleep(Duration::from_secs(3600));
            },
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        match repl.handle(&line) {
            Ok(Some(out)) => println!("{}", out.trim_end()),
            Ok(None) => {}
            Err(e) if e == "__quit__" => break,
            Err(e) => {
                eprintln!("error: {e}");
                // A script that fails to load its data cannot meaningfully
                // continue; interactive users just get the error.
                if !interactive && e.starts_with("failed to load") {
                    return 1;
                }
            }
        }
    }
    0
}

/// Crude interactivity probe without extra dependencies: honour an
/// explicit environment override, default to non-interactive when lines
/// are piped (the common scripted case prints no prompts).
fn atty_stdin() -> bool {
    std::env::var("CTXPREF_INTERACTIVE")
        .map(|v| v == "1")
        .unwrap_or(false)
}
