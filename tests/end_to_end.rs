//! Whole-system workflows through the `ContextualDb` façade.

use ctxpref::core::QueryOptions;
use ctxpref::prelude::*;
use ctxpref::relation::AttrType;
use ctxpref::workload::reference::{poi_env, poi_relation, POI_TYPES};

fn study_db(cache: usize) -> ContextualDb {
    let env = poi_env();
    let rel = poi_relation(&env, 99, 4);
    let mut db = ContextualDb::builder()
        .env(env)
        .relation(rel)
        .cache_capacity(cache)
        .build()
        .unwrap();
    for (i, weather) in ["bad", "good"].iter().enumerate() {
        for (j, company) in ["friends", "family", "alone"].iter().enumerate() {
            for (k, ty) in POI_TYPES.iter().enumerate() {
                let score = 0.05 + ((i * 37 + j * 11 + k * 3) % 90) as f64 / 100.0;
                db.insert_preference_eq(
                    &format!("temperature = {weather} and accompanying_people = {company}"),
                    "type",
                    (*ty).into(),
                    score,
                )
                .unwrap();
            }
        }
    }
    db
}

#[test]
fn every_detailed_context_gets_an_answer() {
    let db = study_db(0);
    let env = db.env().clone();
    let loc = env.hierarchy(env.param("location").unwrap());
    let tmp = env.hierarchy(env.param("temperature").unwrap());
    let ppl = env.hierarchy(env.param("accompanying_people").unwrap());
    for &r in loc.domain(loc.detailed_level()).iter().take(4) {
        for &t in tmp.domain(tmp.detailed_level()) {
            for &p in ppl.domain(ppl.detailed_level()) {
                let state = ContextState::new(&env, vec![r, t, p]).unwrap();
                let a = db.query_state(&state).unwrap();
                assert!(
                    !a.results.is_empty(),
                    "no answer for {}",
                    state.display(&env)
                );
                // Every selected candidate covers the query state.
                for res in &a.resolutions {
                    for c in &res.selected {
                        assert!(c.state.covers(&state, &env));
                    }
                }
            }
        }
    }
}

#[test]
fn scores_stay_in_unit_interval_and_sorted() {
    let db = study_db(0);
    let env = db.env().clone();
    let a = db
        .query_str("temperature = good and accompanying_people = friends")
        .unwrap();
    let entries = a.results.entries();
    assert!(!entries.is_empty());
    for w in entries.windows(2) {
        assert!(
            w[0].score >= w[1].score,
            "results must be sorted descending"
        );
    }
    for e in entries {
        assert!((0.0..=1.0).contains(&e.score));
        assert!(e.tuple_index < db.relation().len());
    }
    let _ = env;
}

#[test]
fn top_k_with_ties_never_splits_a_score_group() {
    let db = study_db(0);
    let a = db
        .query_str("temperature = good and accompanying_people = family")
        .unwrap();
    for k in [1usize, 5, 20] {
        let top = a.results.top_k_with_ties(k);
        if top.len() > k {
            let boundary = top[k - 1].score;
            assert!(top[top.len() - 1].score == boundary);
        }
        if top.len() < a.results.len() {
            // The first excluded entry has a strictly smaller score.
            let next = a.results.entries()[top.len()].score;
            assert!(next < top[top.len() - 1].score);
        }
    }
}

#[test]
fn cache_transparency() {
    let db = study_db(128);
    let env = db.env().clone();
    let states: Vec<ContextState> = [
        ["Plaka", "warm", "friends"],
        ["Kifisia", "cold", "family"],
        ["Perama", "hot", "alone"],
    ]
    .iter()
    .map(|n| ContextState::parse(&env, n).unwrap())
    .collect();
    for s in &states {
        let fresh = db.query_state_with(s, QueryOptions::cached()).unwrap();
        let cached = db.query_state_with(s, QueryOptions::cached()).unwrap();
        assert!(!fresh.from_cache && cached.from_cache);
        assert_eq!(fresh.results.entries(), cached.results.entries());
    }
    let stats = db.cache_stats().unwrap();
    assert_eq!(stats.hits, states.len() as u64);
}

#[test]
fn profile_edits_change_answers_consistently() {
    let mut db = study_db(8);
    let env = db.env().clone();
    let s = ContextState::parse(&env, &["Plaka", "warm", "friends"]).unwrap();
    let before = db.query_state(&s).unwrap();
    let n = db.profile().len();
    // A very strong new preference dominates.
    db.insert_preference_eq(
        "temperature = warm and accompanying_people = friends",
        "type",
        "theater".into(),
        0.99,
    )
    .unwrap();
    let after = db.query_state(&s).unwrap();
    assert_eq!(after.results.entries()[0].score, 0.99);
    // Remove it again: back to the previous answer.
    db.remove_preference(n).unwrap();
    let reverted = db.query_state(&s).unwrap();
    assert_eq!(before.results.entries(), reverted.results.entries());
}

#[test]
fn distance_kind_changes_tie_resolution_only() {
    let db = study_db(0);
    let env = db.env().clone();
    let s = ContextState::parse(&env, &["Plaka", "warm", "friends"]).unwrap();
    let h = db.query_state_with(&s, QueryOptions::default()).unwrap();
    let j = db.query_state_with(&s, QueryOptions::jaccard()).unwrap();
    // Whatever the metric, selected candidates must cover the query.
    for a in [&h, &j] {
        for r in &a.resolutions {
            for c in &r.selected {
                assert!(c.state.covers(&s, &env));
            }
        }
    }
}

#[test]
fn mixed_schema_thetas_rank() {
    // Non-equality clauses (θ = ≤) rank tuples too.
    let env = poi_env();
    let schema = Schema::new(&[("name", AttrType::Str), ("cost", AttrType::Float)]).unwrap();
    let mut rel = Relation::new("poi", schema);
    rel.insert(vec!["cheap".into(), 3.0.into()]).unwrap();
    rel.insert(vec!["pricey".into(), 30.0.into()]).unwrap();
    let mut db = ContextualDb::builder()
        .env(env.clone())
        .relation(rel)
        .build()
        .unwrap();
    db.insert_preference_cmp(
        "accompanying_people = alone",
        "cost",
        CompareOp::Le,
        10.0.into(),
        0.8,
    )
    .unwrap();
    let a = db.query_str("accompanying_people = alone").unwrap();
    assert_eq!(a.results.len(), 1);
    let rendered = db.render_top(&a, "name", 5).unwrap();
    assert_eq!(rendered.trim(), "cheap (0.80)");
}
