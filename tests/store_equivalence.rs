//! The profile tree and the serial store are two physical layouts of
//! the same logical profile: every resolution-visible behaviour must
//! coincide. Exercised over seeded random synthetic workloads.

use ctxpref::context::DistanceKind;
use ctxpref::profile::{AccessCounter, ParamOrder, ProfileTree, SerialStore};
use ctxpref::resolve::{ContextResolver, PreferenceStore, TieBreak};
use ctxpref::workload::synthetic::{
    random_query_states, stored_query_states, SyntheticSpec, ValueDist,
};

fn specs() -> Vec<SyntheticSpec> {
    vec![
        SyntheticSpec::paper_standard(200, ValueDist::Uniform, 1),
        SyntheticSpec::paper_standard(200, ValueDist::Zipf(1.5), 2),
        SyntheticSpec {
            domains: vec![vec![8, 4, 2], vec![6, 3], vec![5]],
            dists: vec![ValueDist::Zipf(1.0); 3],
            num_prefs: 300,
            clause_values: 10,
            seed: 3,
        },
    ]
}

#[test]
fn exact_lookup_agrees() {
    for spec in specs() {
        let env = spec.build_env();
        let profile = spec.build_profile(&env);
        let tree =
            ProfileTree::from_profile(&profile, ParamOrder::by_ascending_domain(&env)).unwrap();
        let serial = SerialStore::from_profile(&profile).unwrap();
        let hits = stored_query_states(&env, &profile, 20, 10 + spec.seed);
        let misses = random_query_states(&env, 20, 0.0, 20 + spec.seed);
        for q in hits.iter().chain(misses.iter()) {
            let mut c1 = AccessCounter::new();
            let mut c2 = AccessCounter::new();
            let t: Vec<_> = PreferenceStore::lookup_exact(&tree, q, &mut c1);
            let s: Vec<_> = PreferenceStore::lookup_exact(&serial, q, &mut c2);
            // Entry multisets must agree (leaf ids differ by design).
            let mut te: Vec<String> = t
                .iter()
                .flat_map(|&l| tree.entries(l))
                .map(|e| format!("{:?}@{}", e.clause, e.score))
                .collect();
            let mut se: Vec<String> = s
                .iter()
                .flat_map(|&l| PreferenceStore::entries(&serial, l))
                .map(|e| format!("{:?}@{}", e.clause, e.score))
                .collect();
            te.sort();
            se.sort();
            assert_eq!(te, se, "exact entries diverge for {}", q.display(&env));
        }
    }
}

#[test]
fn covering_candidates_agree() {
    for spec in specs() {
        let env = spec.build_env();
        let profile = spec.build_profile(&env);
        let tree =
            ProfileTree::from_profile(&profile, ParamOrder::by_ascending_domain(&env)).unwrap();
        let serial = SerialStore::from_profile(&profile).unwrap();
        let queries = random_query_states(&env, 30, 0.5, 30 + spec.seed);
        for q in &queries {
            for kind in [DistanceKind::Hierarchy, DistanceKind::Jaccard] {
                let mut c1 = AccessCounter::new();
                let mut c2 = AccessCounter::new();
                let mut t: Vec<(String, String)> = tree
                    .search_cs(q, kind, &mut c1)
                    .into_iter()
                    .map(|c| {
                        (
                            c.state.display(&env).to_string(),
                            format!("{:.9}", c.distance),
                        )
                    })
                    .collect();
                let mut s: Vec<(String, String)> = serial
                    .search_covering(q, kind, &mut c2)
                    .into_iter()
                    .map(|c| {
                        (
                            c.state.display(&env).to_string(),
                            format!("{:.9}", c.distance),
                        )
                    })
                    .collect();
                // Serial lists one candidate per record; dedupe states.
                t.sort();
                t.dedup();
                s.sort();
                s.dedup();
                assert_eq!(t, s, "covering candidates diverge for {}", q.display(&env));
            }
        }
    }
}

#[test]
fn resolution_agrees_including_ties() {
    for spec in specs() {
        let env = spec.build_env();
        let profile = spec.build_profile(&env);
        let tree =
            ProfileTree::from_profile(&profile, ParamOrder::by_ascending_domain(&env)).unwrap();
        let serial = SerialStore::from_profile(&profile).unwrap();
        let queries = random_query_states(&env, 30, 0.3, 40 + spec.seed);
        for q in &queries {
            for kind in [DistanceKind::Hierarchy, DistanceKind::Jaccard] {
                let rt = ContextResolver::new(&tree, kind, TieBreak::All).resolve_state(q);
                let rs = ContextResolver::new(&serial, kind, TieBreak::All).resolve_state(q);
                assert_eq!(rt.outcome, rs.outcome);
                let mut st: Vec<String> = rt
                    .selected
                    .iter()
                    .map(|c| c.state.display(&env).to_string())
                    .collect();
                let mut ss: Vec<String> = rs
                    .selected
                    .iter()
                    .map(|c| c.state.display(&env).to_string())
                    .collect();
                st.sort();
                st.dedup();
                ss.sort();
                ss.dedup();
                assert_eq!(st, ss, "selection diverges for {}", q.display(&env));
            }
        }
    }
}

#[test]
fn reordered_trees_are_equivalent() {
    for spec in specs() {
        let env = spec.build_env();
        let profile = spec.build_profile(&env);
        let base = ProfileTree::from_profile(&profile, ParamOrder::identity(&env)).unwrap();
        let queries = random_query_states(&env, 20, 0.4, 50 + spec.seed);
        for order in ParamOrder::all_orders(&env) {
            let tree = base.reorder(order).unwrap();
            assert_eq!(tree.state_count(), base.state_count());
            for q in &queries {
                let rb = ContextResolver::new(&base, DistanceKind::Hierarchy, TieBreak::All)
                    .resolve_state(q);
                let rt = ContextResolver::new(&tree, DistanceKind::Hierarchy, TieBreak::All)
                    .resolve_state(q);
                assert_eq!(rb.outcome, rt.outcome);
                let mut sb: Vec<String> = rb
                    .selected
                    .iter()
                    .map(|c| c.state.display(&env).to_string())
                    .collect();
                let mut st: Vec<String> = rt
                    .selected
                    .iter()
                    .map(|c| c.state.display(&env).to_string())
                    .collect();
                sb.sort();
                st.sort();
                assert_eq!(sb, st);
            }
        }
    }
}
