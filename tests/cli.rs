//! Scripted sessions through the `ctxpref-cli` binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_script(script: &str) -> (String, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ctxpref-cli"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("cli binary spawns");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(script.as_bytes())
        .expect("script written");
    let out = child.wait_with_output().expect("cli exits");
    assert!(out.status.success(), "cli exited with {:?}", out.status);
    (
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
    )
}

#[test]
fn demo_query_session() {
    let (stdout, stderr) = run_script(
        "load demo\n\
         env\n\
         context Plaka warm friends\n\
         context\n\
         query\n\
         quit\n",
    );
    assert!(stderr.is_empty(), "stderr: {stderr}");
    assert!(stdout.contains("loaded demo"));
    assert!(stdout.contains("location:"));
    assert!(stdout.contains("current context set to (Plaka, warm, friends)"));
    assert!(stdout.contains("current context: (Plaka, warm, friends)"));
    assert!(stdout.contains("(0."), "results carry scores: {stdout}");
}

#[test]
fn preference_lifecycle_session() {
    let (stdout, stderr) = run_script(
        "load demo\n\
         pref location = Ioannina and temperature = bad :: type = theater @ 0.97\n\
         prefs\n\
         query location = Ioannina and temperature = bad\n\
         tree\n\
         orders\n\
         quit\n",
    );
    assert!(stderr.is_empty(), "stderr: {stderr}");
    assert!(stdout.contains("preference stored"));
    assert!(stdout.contains("theater"));
    assert!(
        stdout.contains("theater_"),
        "the new preference surfaces: {stdout}"
    );
    assert!(stdout.contains("ProfileTree["));
    assert!(stdout.contains("cells"));
}

#[test]
fn errors_go_to_stderr_and_do_not_kill_the_session() {
    let (stdout, stderr) = run_script(
        "query\n\
         load demo\n\
         context Atlantis warm friends\n\
         bogus\n\
         distance euclidean\n\
         context Plaka warm friends\n\
         distance jaccard\n\
         query\n\
         quit\n",
    );
    assert!(stderr.contains("no database loaded"));
    assert!(stderr.contains("Atlantis"));
    assert!(stderr.contains("unknown command"));
    assert!(stderr.contains("unknown distance"));
    assert!(stdout.contains("distance set to Jaccard"));
    assert!(stdout.contains("(0."), "query still works after errors");
}

#[test]
fn deletion_and_rescoring() {
    let (stdout, stderr) = run_script(
        "load demo\n\
         pref location = Ioannina and temperature = bad :: type = theater @ 0.20\n\
         score 58 0.99\n\
         del 58\n\
         quit\n",
    );
    assert!(stderr.is_empty(), "stderr: {stderr}");
    assert!(stdout.contains("score updated"));
    assert!(stdout.contains("removed preference scoring 0.99"));
}

#[test]
fn save_and_open_roundtrip() {
    let dir = std::env::temp_dir().join(format!("ctxpref_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("session.ctxpref");
    let script = format!(
        "load demo\n\
         pref location = Ioannina and temperature = bad :: type = theater @ 0.97\n\
         save {p}\n\
         open {p}\n\
         context Perama cold alone\n\
         query\n\
         quit\n",
        p = path.display()
    );
    let (stdout, stderr) = run_script(&script);
    assert!(stderr.is_empty(), "stderr: {stderr}");
    assert!(stdout.contains("saved to"));
    assert!(
        stdout.contains("59 preferences"),
        "profile persisted: {stdout}"
    );
    assert!(
        stdout.contains("theater_"),
        "persisted preference applies: {stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn load_failure_exits_non_zero() {
    // A database named on the command line that cannot load is fatal.
    let out = Command::new(env!("CARGO_BIN_EXE_ctxpref-cli"))
        .arg("/definitely/not/a/real/path.db")
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("cli runs");
    assert!(!out.status.success(), "expected non-zero exit");
    assert!(String::from_utf8_lossy(&out.stderr).contains("failed to load"));

    // So is a failed `open` mid-script.
    let mut child = Command::new(env!("CARGO_BIN_EXE_ctxpref-cli"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("cli binary spawns");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"open /definitely/not/a/real/path.db\nquit\n")
        .expect("script written");
    let out = child.wait_with_output().expect("cli exits");
    assert!(
        !out.status.success(),
        "expected non-zero exit from scripted open failure"
    );
}

#[test]
fn served_queries_report_ladder_and_stats() {
    let (stdout, stderr) = run_script(
        "load demo\n\
         deadline 250\n\
         context Plaka warm friends\n\
         query\n\
         query\n\
         stats\n\
         quit\n",
    );
    assert!(stderr.is_empty(), "stderr: {stderr}");
    assert!(stdout.contains("per-query deadline set to 250ms"));
    assert!(
        stdout.contains("[served from the context query tree]"),
        "{stdout}"
    );
    assert!(stdout.contains("1 cached, 1 exact"), "{stdout}");
    assert!(stdout.contains("contained panics 0"));
}

#[test]
fn explain_traces_resolution() {
    let (stdout, stderr) = run_script(
        "load demo\n\
         context Plaka warm friends\n\
         explain\n\
         explain location = Perama and temperature = freezing\n\
         quit\n",
    );
    assert!(stderr.is_empty(), "stderr: {stderr}");
    assert!(stdout.contains("query state (Plaka, warm, friends)"));
    assert!(stdout.contains("stored state"));
    assert!(stdout.contains("interest score"));
    assert!(stdout.contains("cells accessed"));
    assert!(stdout.contains("(Perama, freezing, all)"), "{stdout}");
}
