//! Incremental profile-tree maintenance (remove / update without
//! rebuilding) must be indistinguishable from rebuilding the tree from
//! the edited profile.

use ctxpref::context::{ContextState, DistanceKind};
use ctxpref::core::ContextualDb;
use ctxpref::profile::{ParamOrder, Profile, ProfileTree};
use ctxpref::relation::{AttrType, Relation, Schema};
use ctxpref::resolve::{ContextResolver, TieBreak};
use ctxpref::workload::synthetic::{random_query_states, SyntheticSpec, ValueDist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn tree_fingerprint(tree: &ProfileTree) -> Vec<String> {
    let env = tree.env();
    let mut out: Vec<String> = tree
        .paths()
        .iter()
        .map(|(s, entries)| {
            let mut es: Vec<String> = entries
                .iter()
                .map(|e| format!("{:?}@{}", e.clause, e.score))
                .collect();
            es.sort();
            format!("{}::{}", s.display(env), es.join("|"))
        })
        .collect();
    out.sort();
    out
}

#[test]
fn random_edit_sequences_match_rebuild() {
    for seed in 0..6u64 {
        let spec = SyntheticSpec {
            domains: vec![vec![8, 4], vec![6], vec![10, 5]],
            dists: vec![ValueDist::Zipf(1.0); 3],
            num_prefs: 120,
            clause_values: 6,
            seed,
        };
        let env = spec.build_env();
        let mut profile = spec.build_profile(&env);
        let order = ParamOrder::by_ascending_domain(&env);
        let mut tree = ProfileTree::from_profile(&profile, order.clone()).unwrap();

        let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
        for _ in 0..60 {
            if profile.is_empty() {
                break;
            }
            let idx = rng.random_range(0..profile.len());
            let victim = profile.preferences()[idx].clone();
            // Remove from the logical profile, then detach from the
            // tree only the states no other preference still covers
            // with the identical entry.
            let removed = profile.remove(idx);
            for state in removed.descriptor().states(&env).unwrap() {
                let still = profile.iter().any(|p| {
                    p.clause() == removed.clause()
                        && p.score() == removed.score()
                        && p.descriptor().states(&env).unwrap().contains(&state)
                });
                if !still {
                    tree.remove_state_entry(&state, removed.clause(), removed.score());
                }
            }
            let _ = victim;
            let rebuilt = ProfileTree::from_profile(&profile, order.clone()).unwrap();
            assert_eq!(
                tree_fingerprint(&tree),
                tree_fingerprint(&rebuilt),
                "divergence after removal (seed {seed})"
            );
            assert_eq!(tree.state_count(), rebuilt.state_count());
            assert_eq!(tree.stats().leaf_entries, rebuilt.stats().leaf_entries);
        }
    }
}

#[test]
fn removal_prunes_and_slots_are_reused() {
    let spec = SyntheticSpec {
        domains: vec![vec![10], vec![10]],
        dists: vec![ValueDist::Uniform; 2],
        num_prefs: 50,
        clause_values: 5,
        seed: 3,
    };
    let env = spec.build_env();
    let profile = spec.build_profile(&env);
    let order = ParamOrder::identity(&env);
    let mut tree = ProfileTree::from_profile(&profile, order.clone()).unwrap();
    let full = tree.stats();

    // Remove everything…
    for pref in profile.iter() {
        tree.remove(pref).unwrap();
    }
    let empty = tree.stats();
    assert_eq!(empty.leaf_entries, 0);
    assert_eq!(empty.internal_cells, 0, "all paths pruned");
    assert_eq!(tree.state_count(), 0);

    // …and re-insert: slots are recycled, sizes match the original.
    for pref in profile.iter() {
        tree.insert(pref).unwrap();
    }
    let again = tree.stats();
    assert_eq!(again.total_cells(), full.total_cells());
    assert_eq!(tree_fingerprint(&tree).len(), tree.state_count());

    // Resolution still behaves after heavy churn.
    let q = random_query_states(&env, 10, 0.4, 9);
    for state in &q {
        let r = ContextResolver::new(&tree, DistanceKind::Hierarchy, TieBreak::All)
            .resolve_state(state);
        for c in &r.selected {
            assert!(c.state.covers(state, &env));
        }
    }
}

#[test]
fn update_state_entry_changes_scores_in_place() {
    let spec = SyntheticSpec {
        domains: vec![vec![4], vec![4]],
        dists: vec![ValueDist::Uniform; 2],
        num_prefs: 10,
        clause_values: 3,
        seed: 5,
    };
    let env = spec.build_env();
    let profile = spec.build_profile(&env);
    let mut tree = ProfileTree::from_profile(&profile, ParamOrder::identity(&env)).unwrap();
    let pref = &profile.preferences()[0];
    let state = &pref.descriptor().states(&env).unwrap()[0];
    assert!(tree.update_state_entry(state, pref.clause(), 0.42));
    let mut counter = ctxpref::profile::AccessCounter::new();
    let (_, entries) = tree.exact_lookup(state, &mut counter).unwrap();
    assert!(entries.iter().any(|e| e.score == 0.42));
    // Unknown state or clause → false.
    let missing = ContextState::all(&env);
    assert!(!tree.update_state_entry(&missing, pref.clause(), 0.1));
}

#[test]
fn facade_update_detects_conflicts_and_preserves_shared_entries() {
    let env = ctxpref::context::ContextEnvironment::new(vec![ctxpref::hierarchy::Hierarchy::flat(
        "weather",
        &["cold", "warm", "hot"],
    )
    .unwrap()])
    .unwrap();
    let schema = Schema::new(&[("name", AttrType::Str)]).unwrap();
    let mut rel = Relation::new("r", schema);
    rel.insert(vec!["a".into()]).unwrap();
    let mut db = ContextualDb::builder()
        .env(env.clone())
        .relation(rel)
        .build()
        .unwrap();

    // Two preferences sharing the (warm) state with the same clause and
    // score via different descriptors.
    db.insert_preference_eq("weather in {warm, hot}", "name", "a".into(), 0.5)
        .unwrap();
    db.insert_preference_eq("weather in {cold, warm}", "name", "a".into(), 0.5)
        .unwrap();

    // Updating either one would leave (warm) scored twice → conflict.
    let err = db.update_preference_score(0, 0.9).unwrap_err();
    assert!(err.to_string().contains("conflict"), "{err}");

    // Removing preference 0 must keep the shared (warm) entry alive for
    // preference 1.
    db.remove_preference(0).unwrap();
    let warm = ContextState::parse(&env, &["warm"]).unwrap();
    let a = db.query_state(&warm).unwrap();
    assert_eq!(a.results.entries()[0].score, 0.5);
    // And (hot), contributed only by preference 0, is gone.
    let hot = ContextState::parse(&env, &["hot"]).unwrap();
    let a = db.query_state(&hot).unwrap();
    assert!(a.results.is_empty());

    // Now the update succeeds and is observable.
    db.update_preference_score(0, 0.9).unwrap();
    let a = db.query_state(&warm).unwrap();
    assert_eq!(a.results.entries()[0].score, 0.9);
}

/// `Profile` edits mirrored through the façade equal a from-scratch DB.
#[test]
fn facade_edits_match_fresh_database() {
    let spec = SyntheticSpec {
        domains: vec![vec![6], vec![8, 2]],
        dists: vec![ValueDist::Uniform; 2],
        num_prefs: 40,
        clause_values: 4,
        seed: 8,
    };
    let env = spec.build_env();
    let profile = spec.build_profile(&env);
    let schema = Schema::new(&[("a1", AttrType::Str)]).unwrap();
    let mut rel = Relation::new("r", schema);
    for i in 0..4 {
        rel.insert(vec![format!("v{i}").into()]).unwrap();
    }

    let mut db = ContextualDb::builder()
        .env(env.clone())
        .relation(rel.clone())
        .build()
        .unwrap();
    for pref in profile.iter() {
        db.insert_preference(pref.clone()).unwrap();
    }
    let mut rng = StdRng::seed_from_u64(77);
    for _ in 0..15 {
        let idx = rng.random_range(0..db.profile().len());
        db.remove_preference(idx).unwrap();
    }

    // Fresh DB from the edited logical profile.
    let mut fresh = ContextualDb::builder()
        .env(env.clone())
        .relation(rel)
        .build()
        .unwrap();
    let edited: Profile = db.profile().clone();
    for pref in edited.iter() {
        fresh.insert_preference(pref.clone()).unwrap();
    }

    for q in random_query_states(&env, 25, 0.4, 13) {
        let a = db.query_state(&q).unwrap();
        let b = fresh.query_state(&q).unwrap();
        assert_eq!(
            a.results.entries(),
            b.results.entries(),
            "q = {}",
            q.display(&env)
        );
    }
    assert_eq!(db.tree_stats(), fresh.tree_stats());
}
