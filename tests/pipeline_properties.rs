//! Property-based tests over the whole pipeline: random environments,
//! profiles, and queries; the resolution invariants the paper's
//! correctness argument rests on must hold for all of them.

use ctxpref::context::{ContextEnvironment, ContextState, CtxValue, DistanceKind};
use ctxpref::profile::{ParamOrder, ProfileTree, SerialStore};
use ctxpref::resolve::{minimal_covering, ContextResolver, MatchOutcome, TieBreak};
use ctxpref::workload::synthetic::{SyntheticSpec, ValueDist};
use proptest::prelude::*;

/// Random small workload specs (kept small so each case is fast).
fn spec_strategy() -> impl Strategy<Value = SyntheticSpec> {
    (
        1usize..=3,    // hierarchy shape selector for param 1
        1usize..=3,    // … param 2
        1usize..=3,    // … param 3
        10usize..=120, // preferences
        prop_oneof![
            Just(ValueDist::Uniform),
            (0.5f64..2.5).prop_map(ValueDist::Zipf)
        ],
        0u64..1000, // seed
    )
        .prop_map(|(s1, s2, s3, n, dist, seed)| {
            let shape = |s: usize| match s {
                1 => vec![6],
                2 => vec![12, 4],
                _ => vec![18, 6, 2],
            };
            SyntheticSpec {
                domains: vec![shape(s1), shape(s2), shape(s3)],
                dists: vec![dist; 3],
                num_prefs: n,
                clause_values: 8,
                seed,
            }
        })
}

fn random_detailed(env: &ContextEnvironment, picks: &[usize; 3]) -> ContextState {
    let values: Vec<CtxValue> = env
        .iter()
        .zip(picks)
        .map(|((_, h), &k)| {
            let dom = h.domain(h.detailed_level());
            dom[k % dom.len()]
        })
        .collect();
    ContextState::from_values_unchecked(values)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every candidate `Search_CS` returns covers the query; the
    /// resolver's selection attains the minimum distance; and the
    /// minimum-distance selection is a subset of the Definition-12
    /// matches' closure (each selected state is minimal or tied with a
    /// minimal one in distance).
    #[test]
    fn resolution_invariants(spec in spec_strategy(), picks in any::<[usize; 3]>()) {
        let env = spec.build_env();
        let profile = spec.build_profile(&env);
        let tree = ProfileTree::from_profile(&profile, ParamOrder::by_ascending_domain(&env))
            .unwrap();
        let q = random_detailed(&env, &picks);
        let resolver = ContextResolver::new(&tree, DistanceKind::Hierarchy, TieBreak::All);
        let res = resolver.resolve_state(&q);
        match res.outcome {
            MatchOutcome::Exact => {
                prop_assert!(res.selected.iter().all(|c| c.state == q));
                prop_assert!(res.selected.iter().all(|c| c.distance == 0.0));
            }
            MatchOutcome::Covered => {
                prop_assert!(!res.selected.is_empty());
                let mut counter = ctxpref::profile::AccessCounter::new();
                let all = tree.search_cs(&q, DistanceKind::Hierarchy, &mut counter);
                let min = all.iter().map(|c| c.distance).fold(f64::INFINITY, f64::min);
                for c in &res.selected {
                    prop_assert!(c.state.covers(&q, &env));
                    prop_assert!((c.distance - min).abs() < 1e-9);
                }
                // Every minimum-distance candidate is a Definition-12
                // match (Properties 2–3).
                let matches = minimal_covering(&env, &all);
                for c in &res.selected {
                    prop_assert!(
                        matches.iter().any(|m| m.state == c.state),
                        "min-distance candidate {} is not minimal",
                        c.state.display(&env)
                    );
                }
            }
            MatchOutcome::NoMatch => prop_assert!(res.selected.is_empty()),
        }
    }

    /// Tree and serial resolution agree on outcome and selected states.
    #[test]
    fn stores_agree(spec in spec_strategy(), picks in any::<[usize; 3]>()) {
        let env = spec.build_env();
        let profile = spec.build_profile(&env);
        let tree = ProfileTree::from_profile(&profile, ParamOrder::by_ascending_domain(&env))
            .unwrap();
        let serial = SerialStore::from_profile(&profile).unwrap();
        let q = random_detailed(&env, &picks);
        for kind in [DistanceKind::Hierarchy, DistanceKind::Jaccard] {
            let rt = ContextResolver::new(&tree, kind, TieBreak::All).resolve_state(&q);
            let rs = ContextResolver::new(&serial, kind, TieBreak::All).resolve_state(&q);
            prop_assert_eq!(rt.outcome, rs.outcome);
            let mut st: Vec<ContextState> = rt.selected.iter().map(|c| c.state.clone()).collect();
            let mut ss: Vec<ContextState> = rs.selected.iter().map(|c| c.state.clone()).collect();
            st.sort(); st.dedup();
            ss.sort(); ss.dedup();
            prop_assert_eq!(st, ss);
        }
    }

    /// The parameter ordering of the tree never changes resolution
    /// results, only its size/cost.
    #[test]
    fn ordering_is_semantically_transparent(spec in spec_strategy(), picks in any::<[usize; 3]>()) {
        let env = spec.build_env();
        let profile = spec.build_profile(&env);
        let orders = ParamOrder::all_orders(&env);
        let q = random_detailed(&env, &picks);
        let mut baseline: Option<(MatchOutcome, Vec<ContextState>)> = None;
        for order in orders {
            let tree = ProfileTree::from_profile(&profile, order).unwrap();
            let r = ContextResolver::new(&tree, DistanceKind::Hierarchy, TieBreak::All)
                .resolve_state(&q);
            let mut sel: Vec<ContextState> = r.selected.iter().map(|c| c.state.clone()).collect();
            sel.sort();
            sel.dedup();
            match &baseline {
                None => baseline = Some((r.outcome, sel)),
                Some((o, s)) => {
                    prop_assert_eq!(*o, r.outcome);
                    prop_assert_eq!(s.clone(), sel);
                }
            }
        }
    }

    /// Exact lookups on the tree respect the Σ|edom| bound; the stored
    /// state count never exceeds the number of preference states.
    #[test]
    fn bounds_hold(spec in spec_strategy()) {
        let env = spec.build_env();
        let profile = spec.build_profile(&env);
        let tree = ProfileTree::from_profile(&profile, ParamOrder::by_ascending_domain(&env))
            .unwrap();
        let bound: u64 = env.iter().map(|(_, h)| h.edom_size() as u64).sum();
        for (state, _) in tree.paths().into_iter().take(20) {
            let mut c = ctxpref::profile::AccessCounter::new();
            prop_assert!(tree.exact_lookup(&state, &mut c).is_some());
            prop_assert!(c.cells() <= bound);
        }
        prop_assert!(tree.state_count() <= profile.len());
        let worst = ParamOrder::all_orders(&env)
            .into_iter()
            .map(|o| o.max_cells(&env))
            .max()
            .unwrap();
        prop_assert!((tree.stats().total_cells() as u128) <= worst + profile.len() as u128);
    }
}
