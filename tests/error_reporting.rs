//! Error reporting quality: every error variant renders an actionable
//! message, and error sources chain correctly. A production system's
//! errors are part of its API.

use std::error::Error;

use ctxpref::context::{parse_descriptor, ContextError};
use ctxpref::core::{ContextualDb, CoreError};
use ctxpref::hierarchy::{Hierarchy, HierarchyBuilder, HierarchyError};
use ctxpref::prelude::*;
use ctxpref::profile::ProfileError;
use ctxpref::relation::{AttrType, RelationError};
use ctxpref::storage::StorageError;
use ctxpref::workload::reference::reference_env;

#[test]
fn hierarchy_errors_name_the_offenders() {
    let mut b = HierarchyBuilder::new("x", &["lo", "hi"]);
    b.add("hi", "top", None).unwrap();
    let e = b.add("hi", "top", None).unwrap_err();
    assert!(e.to_string().contains("top"), "{e}");

    let mut b = HierarchyBuilder::new("x", &["lo", "hi"]);
    b.add("hi", "t", None).unwrap();
    b.add("lo", "child", Some("ghost")).unwrap();
    let e = b.build().unwrap_err();
    assert!(
        e.to_string().contains("ghost") && e.to_string().contains("child"),
        "{e}"
    );

    let e = HierarchyBuilder::new("x", &[]).build().unwrap_err();
    assert_eq!(e, HierarchyError::NoLevels);
    assert!(e.source().is_none());
    assert!(!e.to_string().is_empty());
}

#[test]
fn context_errors_locate_the_problem() {
    let env = reference_env();
    let e = parse_descriptor(&env, "location == Plaka").unwrap_err();
    match &e {
        ContextError::Parse { position, message } => {
            assert!(*position > 0);
            assert!(message.contains("expected"));
        }
        other => panic!("expected Parse, got {other:?}"),
    }
    assert!(e.to_string().contains("byte"));

    let e = parse_descriptor(&env, "location = Sparta").unwrap_err();
    assert!(
        e.to_string().contains("Sparta") && e.to_string().contains("location"),
        "{e}"
    );

    let e = ContextState::parse(&env, &["Plaka"]).unwrap_err();
    assert!(
        e.to_string().contains("3") && e.to_string().contains("1"),
        "{e}"
    );
}

#[test]
fn profile_conflict_reports_scores_and_chains_sources() {
    let env = reference_env();
    let schema = Schema::new(&[("name", AttrType::Str)]).unwrap();
    let rel = Relation::new("r", schema);
    let mut db = ContextualDb::builder()
        .env(env)
        .relation(rel)
        .build()
        .unwrap();
    db.insert_preference_eq("temperature = warm", "name", "Acropolis".into(), 0.8)
        .unwrap();
    let e = db
        .insert_preference_eq("temperature = warm", "name", "Acropolis".into(), 0.3)
        .unwrap_err();
    let msg = e.to_string();
    assert!(msg.contains("0.8") && msg.contains("0.3"), "{msg}");
    // The core error chains to the profile error.
    match &e {
        CoreError::Profile(ProfileError::Conflict {
            existing_score,
            new_score,
            ..
        }) => {
            assert_eq!(*existing_score, 0.8);
            assert_eq!(*new_score, 0.3);
        }
        other => panic!("expected Profile(Conflict), got {other:?}"),
    }
    assert!(e.source().is_some());
}

#[test]
fn relation_errors_name_attribute_and_types() {
    let schema = Schema::new(&[("cost", AttrType::Float)]).unwrap();
    let mut rel = Relation::new("r", schema);
    let e = rel.insert(vec!["oops".into()]).unwrap_err();
    match &e {
        RelationError::TypeMismatch {
            attr,
            expected,
            got,
        } => {
            assert_eq!(attr, "cost");
            assert_eq!(*expected, AttrType::Float);
            assert_eq!(*got, AttrType::Str);
        }
        other => panic!("expected TypeMismatch, got {other:?}"),
    }
    assert!(
        e.to_string().contains("cost") && e.to_string().contains("float"),
        "{e}"
    );
}

#[test]
fn invalid_scores_are_rejected_with_value() {
    let env = reference_env();
    let schema = Schema::new(&[("name", AttrType::Str)]).unwrap();
    let rel = Relation::new("r", schema);
    let mut db = ContextualDb::builder()
        .env(env)
        .relation(rel)
        .build()
        .unwrap();
    let e = db
        .insert_preference_eq("temperature = warm", "name", "X".into(), 1.7)
        .unwrap_err();
    assert!(e.to_string().contains("1.7"), "{e}");
}

#[test]
fn storage_errors_carry_line_numbers() {
    let bad = "ctxpref v1\nhierarchy h\nlevels L\nv L a -\nend\nrelation r\nattr x int\nt i:notanint\nend\norder h\nprofile\nend\n";
    let e = ctxpref::storage::read_database(bad.as_bytes()).unwrap_err();
    match &e {
        StorageError::Syntax { line, message } => {
            assert_eq!(*line, 8);
            assert!(message.contains("notanint"), "{message}");
        }
        other => panic!("expected Syntax, got {other:?}"),
    }
    assert!(e.to_string().contains("line 8"), "{e}");
}

#[test]
fn missing_builder_inputs_are_clear() {
    let e = ContextualDb::builder().build().unwrap_err();
    assert!(e.to_string().contains("environment"), "{e}");
    let env = ContextEnvironment::new(vec![Hierarchy::flat("x", &["a"]).unwrap()]).unwrap();
    let e = ContextualDb::builder().env(env).build().unwrap_err();
    assert!(e.to_string().contains("relation"), "{e}");
}

#[test]
fn every_error_type_is_std_error() {
    fn assert_error<E: Error>() {}
    assert_error::<HierarchyError>();
    assert_error::<ContextError>();
    assert_error::<RelationError>();
    assert_error::<ProfileError>();
    assert_error::<CoreError>();
    assert_error::<StorageError>();
    assert_error::<ctxpref::qualitative::QualitativeError>();
}
