//! End-to-end checks of every concrete example in the paper's text,
//! across all crates.

use ctxpref::context::{parse_descriptor, DistanceKind};
use ctxpref::hierarchy::LevelId;
use ctxpref::prelude::*;
use ctxpref::profile::AccessCounter;
use ctxpref::relation::AttrType;
use ctxpref::workload::reference::reference_env;

/// Section 3.1: anc/desc examples over Figure 1.
#[test]
fn section_3_1_anc_desc() {
    let env = reference_env();
    let loc = env.hierarchy(env.param("location").unwrap());
    let city = loc.level_by_name("City").unwrap();
    let plaka = loc.lookup("Plaka").unwrap();
    let athens = loc.lookup("Athens").unwrap();
    let greece = loc.lookup("Greece").unwrap();
    // anc^City_Region(Plaka) = Athens.
    assert_eq!(loc.anc(plaka, city), Some(athens));
    // desc^City_Region(Athens) = {Plaka, Kifisia}.
    let names: Vec<&str> = loc
        .desc(athens, LevelId::DETAILED)
        .into_iter()
        .map(|v| loc.value_name(v))
        .collect();
    assert_eq!(names, vec!["Plaka", "Kifisia"]);
    // desc^Country_City(Greece) = {Athens, Ioannina}.
    let names: Vec<&str> = loc
        .desc(greece, city)
        .into_iter()
        .map(|v| loc.value_name(v))
        .collect();
    assert_eq!(names, vec!["Athens", "Ioannina"]);
}

/// Section 3.1: the descriptor
/// (location = Plaka ∧ temperature = {warm, hot} ∧ people = friends)
/// denotes exactly (Plaka, warm, friends) and (Plaka, hot, friends).
#[test]
fn section_3_1_descriptor_expansion() {
    let env = reference_env();
    let cod = parse_descriptor(
        &env,
        "location = Plaka and temperature in {warm, hot} and accompanying_people = friends",
    )
    .unwrap();
    let states: Vec<String> = cod
        .states(&env)
        .unwrap()
        .iter()
        .map(|s| s.display(&env).to_string())
        .collect();
    assert_eq!(
        states,
        vec!["(Plaka, warm, friends)", "(Plaka, hot, friends)"]
    );
    // temperature ∈ [mild, hot] = {mild, warm, hot}.
    let cod = parse_descriptor(&env, "temperature in [mild, hot]").unwrap();
    assert_eq!(cod.state_count(&env).unwrap(), 3);
}

fn poi_db(env: &ContextEnvironment) -> ContextualDb {
    let schema = Schema::new(&[("name", AttrType::Str), ("type", AttrType::Str)]).unwrap();
    let mut rel = Relation::new("Points_of_Interest", schema);
    for (n, t) in [
        ("Acropolis", "monument"),
        ("Benaki", "museum"),
        ("Mikro", "brewery"),
        ("Kifisia Cafe", "cafeteria"),
    ] {
        rel.insert(vec![n.into(), t.into()]).unwrap();
    }
    ContextualDb::builder()
        .env(env.clone())
        .relation(rel)
        .build()
        .unwrap()
}

/// Section 3.2: contextual_preference1–3 insert cleanly; the Acropolis
/// score-conflict example (0.8 then 0.3) is rejected.
#[test]
fn section_3_2_preferences_and_conflict() {
    let env = reference_env();
    let mut db = poi_db(&env);
    db.insert_preference_eq(
        "location = Plaka and temperature = warm",
        "name",
        "Acropolis".into(),
        0.8,
    )
    .unwrap();
    db.insert_preference_eq(
        "accompanying_people = friends",
        "type",
        "brewery".into(),
        0.9,
    )
    .unwrap();
    db.insert_preference_eq(
        "location = Plaka and temperature in {warm, hot}",
        "name",
        "Acropolis".into(),
        0.8,
    )
    .unwrap();
    // Re-scoring the same (state, clause) differently conflicts.
    let err = db
        .insert_preference_eq(
            "location = Plaka and temperature = warm",
            "name",
            "Acropolis".into(),
            0.3,
        )
        .unwrap_err();
    assert!(err.to_string().contains("conflict"));
}

/// Figure 4: the profile tree built from the three example preferences
/// has exactly the states of the figure.
#[test]
fn figure_4_profile_tree() {
    let env = reference_env();
    // Order as in the figure: people, temperature, location.
    let order =
        ParamOrder::by_names(&env, &["accompanying_people", "temperature", "location"]).unwrap();
    let mut profile = Profile::new(env.clone());
    let ty = AttributeClause::eq(ctxpref::relation::AttrId(1), "cafeteria".into());
    for (cod, clause, score) in [
        (
            "location = Kifisia and temperature = warm and accompanying_people = friends",
            ty.clone(),
            0.9,
        ),
        (
            "accompanying_people = friends",
            AttributeClause::eq(ctxpref::relation::AttrId(1), "brewery".into()),
            0.9,
        ),
        (
            "location = Plaka and temperature in {warm, hot}",
            AttributeClause::eq(ctxpref::relation::AttrId(0), "Acropolis".into()),
            0.8,
        ),
    ] {
        profile
            .insert(
                ctxpref::profile::ContextualPreference::new(
                    parse_descriptor(&env, cod).unwrap(),
                    clause,
                    score,
                )
                .unwrap(),
            )
            .unwrap();
    }
    let tree = ProfileTree::from_profile(&profile, order).unwrap();
    let mut paths: Vec<String> = tree
        .paths()
        .iter()
        .map(|(s, _)| s.display(&env).to_string())
        .collect();
    paths.sort();
    assert_eq!(
        paths,
        vec![
            "(Kifisia, warm, friends)",
            "(Plaka, hot, all)",
            "(Plaka, warm, all)",
            "(all, all, friends)",
        ]
    );
}

/// Section 4.2: the query (Athens, warm) against {(Greece, warm),
/// (all, warm)} resolves to the more specific (Greece, warm).
#[test]
fn section_4_2_more_specific_wins() {
    let env = reference_env();
    let mut db = poi_db(&env);
    db.insert_preference_eq(
        "location = Greece and temperature = warm",
        "name",
        "Acropolis".into(),
        0.6,
    )
    .unwrap();
    db.insert_preference_eq("temperature = warm", "type", "museum".into(), 0.9)
        .unwrap();
    let a = db
        .query_str("location = Athens and temperature = warm")
        .unwrap();
    // The Greece preference (Acropolis, 0.6) wins over the more general
    // one despite its lower score.
    assert_eq!(a.results.len(), 1);
    assert_eq!(a.results.entries()[0].score, 0.6);
}

/// Section 4.2's tie: (Greece, warm) and (Athens, good) both match
/// (Athens, warm); neither covers the other; both are Definition-12
/// matches.
#[test]
fn section_4_2_tie_both_match() {
    let env = reference_env();
    let s_query = ContextState::parse(&env, &["Athens", "warm", "all"]).unwrap();
    let s1 = ContextState::parse(&env, &["Greece", "warm", "all"]).unwrap();
    let s2 = ContextState::parse(&env, &["Athens", "good", "all"]).unwrap();
    assert!(s1.covers(&s_query, &env));
    assert!(s2.covers(&s_query, &env));
    assert!(!s1.covers(&s2, &env) && !s2.covers(&s1, &env));

    let mut db = poi_db(&env);
    db.insert_preference_eq(
        "location = Greece and temperature = warm",
        "name",
        "Acropolis".into(),
        0.6,
    )
    .unwrap();
    db.insert_preference_eq(
        "location = Athens and temperature = good",
        "type",
        "museum".into(),
        0.9,
    )
    .unwrap();
    let a = db
        .query_str("location = Athens and temperature = warm")
        .unwrap();
    // Under TieBreak::All both preferences apply.
    assert_eq!(a.resolutions[0].selected.len(), 2);
    assert_eq!(a.results.len(), 2);
}

/// Section 4.4: exact matches need one root-to-leaf traversal; the same
/// lookup via the serial store scans records.
#[test]
fn section_4_4_exact_traversal_cost() {
    let env = reference_env();
    let mut profile = Profile::new(env.clone());
    for (i, region) in ["Plaka", "Kifisia", "Perama"].iter().enumerate() {
        for (j, temp) in ["cold", "warm"].iter().enumerate() {
            profile
                .insert(
                    ctxpref::profile::ContextualPreference::new(
                        parse_descriptor(
                            &env,
                            &format!("location = {region} and temperature = {temp}"),
                        )
                        .unwrap(),
                        AttributeClause::eq(ctxpref::relation::AttrId(0), "X".into()),
                        0.1 + (i * 2 + j) as f64 / 10.0,
                    )
                    .unwrap(),
                )
                .unwrap();
        }
    }
    let tree = ProfileTree::from_profile(&profile, ParamOrder::identity(&env)).unwrap();
    let serial = SerialStore::from_profile(&profile).unwrap();
    let q = ContextState::parse(&env, &["Perama", "warm", "all"]).unwrap();
    let mut tc = AccessCounter::new();
    let mut sc = AccessCounter::new();
    assert!(tree.exact_lookup(&q, &mut tc).is_some());
    assert!(!serial.exact_lookup(&q, &mut sc).is_empty());
    assert!(
        tc.cells() < sc.cells(),
        "tree {} vs serial {}",
        tc.cells(),
        sc.cells()
    );
    // Tree bound: Σ |edom(Ci)|.
    let bound: u64 = env.iter().map(|(_, h)| h.edom_size() as u64).sum();
    assert!(tc.cells() <= bound);
}

/// Section 4.3 / Table 1: the Jaccard distance produces fewer ties than
/// the hierarchy distance.
#[test]
fn jaccard_breaks_hierarchy_ties() {
    let env = reference_env();
    let q = ContextState::parse(&env, &["Plaka", "warm", "friends"]).unwrap();
    // Two covers at equal hierarchy distance but different Jaccard
    // distance: (Athens, warm, friends) lifts location by one level
    // (2 leaves below Athens); (Plaka, good, friends) lifts temperature
    // by one level (3 leaves below good).
    let c1 = ContextState::parse(&env, &["Athens", "warm", "friends"]).unwrap();
    let c2 = ContextState::parse(&env, &["Plaka", "good", "friends"]).unwrap();
    let dh1 = ctxpref::context::hierarchy_state_dist(&env, &c1, &q);
    let dh2 = ctxpref::context::hierarchy_state_dist(&env, &c2, &q);
    assert_eq!(dh1, dh2, "hierarchy distance ties");
    let dj1 = ctxpref::context::jaccard_state_dist(&env, &c1, &q);
    let dj2 = ctxpref::context::jaccard_state_dist(&env, &c2, &q);
    assert!(
        (dj1 - dj2).abs() > 1e-9,
        "jaccard breaks the tie: {dj1} vs {dj2}"
    );
    assert!(
        dj1 < dj2,
        "Athens (2 regions) is closer than good (3 conditions)"
    );
    let _ = DistanceKind::Jaccard;
}
