//! Lattice hierarchies through the whole stack: decompose into chains,
//! build an environment, index preferences, query, persist, restore.

use ctxpref::context::ContextState;
use ctxpref::core::ContextualDb;
use ctxpref::hierarchy::lattice::LatticeBuilder;
use ctxpref::relation::{AttrType, Relation, Schema};
use ctxpref::storage::{read_database, write_database};

fn week_lattice() -> ctxpref::hierarchy::LatticeHierarchy {
    let mut b = LatticeBuilder::new("time");
    b.level("Slot", &["PartOfDay", "DayType"]);
    b.level("PartOfDay", &[]);
    b.level("DayType", &[]);
    for p in ["morning", "evening"] {
        b.value("PartOfDay", p, &[]);
    }
    b.value("DayType", "weekday", &[]);
    b.value("DayType", "weekend", &[]);
    for (d, day) in ["mon", "tue", "sat", "sun"].iter().enumerate() {
        let dt = if d < 2 { "weekday" } else { "weekend" };
        for part in ["morning", "evening"] {
            b.value("Slot", &format!("{day}_{part}"), &[part, dt]);
        }
    }
    b.build().unwrap()
}

fn poi() -> Relation {
    let schema = Schema::new(&[("name", AttrType::Str), ("type", AttrType::Str)]).unwrap();
    let mut rel = Relation::new("poi", schema);
    for (n, t) in [
        ("Mikro", "brewery"),
        ("Benaki", "museum"),
        ("Agora", "market"),
    ] {
        rel.insert(vec![n.into(), t.into()]).unwrap();
    }
    rel
}

#[test]
fn both_branches_participate_in_resolution() {
    let lattice = week_lattice();
    let chains = lattice.decompose().unwrap();
    assert_eq!(chains.len(), 2);
    let env = ctxpref::context::ContextEnvironment::new(chains).unwrap();
    let mut db = ContextualDb::builder()
        .env(env.clone())
        .relation(poi())
        .build()
        .unwrap();

    // One preference per branch, at branch level.
    db.insert_preference_eq("time_partofday = evening", "type", "brewery".into(), 0.9)
        .unwrap();
    db.insert_preference_eq("time_daytype = weekend", "type", "market".into(), 0.8)
        .unwrap();

    // A concrete slot appears in BOTH parameters (the same detailed
    // value names exist in both chains) — a consistent current context
    // sets both coordinates from one slot.
    let slot = "sat_evening";
    let state = ContextState::parse(&env, &[slot, slot]).unwrap();
    let answer = db.query_state(&state).unwrap();
    // Both preferences are applicable: (evening, all) and (all, weekend)
    // tie at hierarchy distance 3 → both selected.
    let scores: Vec<f64> = answer.results.entries().iter().map(|e| e.score).collect();
    assert_eq!(
        scores,
        vec![0.9, 0.8],
        "both lattice branches contribute: {scores:?}"
    );

    // A weekday morning matches neither.
    let state = ContextState::parse(&env, &["mon_morning", "mon_morning"]).unwrap();
    let answer = db.query_state(&state).unwrap();
    assert!(answer.results.is_empty());
}

#[test]
fn lattice_derived_database_round_trips_through_storage() {
    let lattice = week_lattice();
    let env = ctxpref::context::ContextEnvironment::new(lattice.decompose().unwrap()).unwrap();
    let mut db = ContextualDb::builder()
        .env(env.clone())
        .relation(poi())
        .cache_capacity(4)
        .build()
        .unwrap();
    db.insert_preference_eq("time_partofday = morning", "type", "museum".into(), 0.7)
        .unwrap();
    db.insert_preference_eq(
        "time_daytype = weekday and time_partofday = evening",
        "type",
        "brewery".into(),
        0.85,
    )
    .unwrap();

    let mut buf = Vec::new();
    write_database(&mut buf, &db).unwrap();
    let restored = read_database(&buf[..]).unwrap();

    for slot in ["mon_morning", "tue_evening", "sun_morning", "sat_evening"] {
        let state = ContextState::parse(&env, &[slot, slot]).unwrap();
        let a = db.query_state(&state).unwrap();
        let b = restored.query_state(&state).unwrap();
        assert_eq!(a.results.entries(), b.results.entries(), "slot {slot}");
    }
}

#[test]
fn chain_consistency_one_slot_two_views() {
    // The invariant an application must maintain: when a lattice is
    // decomposed, a current context sets every derived parameter from
    // the SAME detailed slot. Verify the derived coordinates stay
    // mutually consistent (their lattice ancestors agree).
    let lattice = week_lattice();
    let chains = lattice.decompose().unwrap();
    for &slot in &["mon_morning", "sun_evening"] {
        let lv = lattice.lookup(slot).unwrap();
        for chain in &chains {
            let cv = chain.lookup(slot).expect("slot exists in every chain");
            // Lifting within the chain agrees with lifting in the lattice.
            let branch_level = chain.level_name(ctxpref::hierarchy::LevelId(1)).to_string();
            let lat_level = lattice.level_by_name(&branch_level).unwrap();
            assert_eq!(
                chain.value_name(chain.anc(cv, ctxpref::hierarchy::LevelId(1)).unwrap()),
                lattice.value_name(lattice.anc(lv, lat_level).unwrap())
            );
        }
    }
}
