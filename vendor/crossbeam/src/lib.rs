//! Offline stand-in for the slice of `crossbeam` this workspace uses:
//! [`scope`] with spawn closures that receive the scope again (so
//! spawned threads can themselves spawn). Backed by
//! `std::thread::scope`; panics from spawned threads surface as the
//! `Err` of the returned `thread::Result`, as with the real crate.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;

/// A scope handle; `spawn` borrows it and passes a fresh handle to the
/// spawned closure.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives the scope so it can
    /// spawn further threads (the crossbeam calling convention).
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Run `f` with a scope in which threads borrowing local data can be
/// spawned; all are joined before `scope` returns. A panic in any
/// spawned thread (or in `f`) is caught and returned as `Err`.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_share_borrows() {
        let data = vec![1, 2, 3];
        let sum = super::scope(|s| {
            let h1 = s.spawn(|_| data.iter().sum::<i32>());
            let h2 = s.spawn(|inner| inner.spawn(|_| data.len()).join().unwrap());
            h1.join().unwrap() + h2.join().unwrap() as i32
        })
        .unwrap();
        assert_eq!(sum, 9);
    }

    #[test]
    fn panics_become_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
