//! Offline stand-in for the slice of `criterion` this workspace's
//! benches use. Each benchmark runs a small fixed number of iterations
//! and prints a rough mean time — enough to smoke-test that benches
//! compile and run, with none of criterion's statistics. Use it for
//! regression *signals*, not measurements.

use std::fmt;
use std::time::Instant;

/// Identifier of one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/param`.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        Self(format!("{name}/{param}"))
    }

    /// Just the parameter as the id.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        Self(param.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Passed to benchmark closures; `iter` runs the measured routine.
pub struct Bencher {
    iters: u32,
}

impl Bencher {
    /// Run `routine` a fixed number of times, reporting a rough mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        let per = start.elapsed() / self.iters;
        println!("    ~{per:?}/iter over {} iters", self.iters);
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    println!("bench {label}");
    let mut b = Bencher { iters: 3 };
    f(&mut b);
}

/// A named group of benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Ignored (kept for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ignored (kept for API compatibility).
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into().0), f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.into().0), |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&id.into().0, f);
        self
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub use std::hint::black_box;

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_runs() {
        let mut c = Criterion::default();
        let mut calls = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(5)
                .bench_function("f", |b| b.iter(|| calls += 1));
            g.bench_with_input(BenchmarkId::new("w", 3), &3, |b, &x| {
                b.iter(|| black_box(x * 2));
            });
            g.finish();
        }
        assert!(calls >= 1);
    }
}
