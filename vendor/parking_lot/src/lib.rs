//! Offline stand-in for the `parking_lot` API, backed by `std::sync`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of `parking_lot` it actually uses:
//! [`Mutex`] and [`RwLock`] whose lock methods return guards directly
//! (no `Result`) and which never poison. Poison-freedom matters here:
//! the service layer catches panics from query workers, and a poisoned
//! `std::sync` lock would otherwise turn one caught panic into a
//! permanent denial of service.

use std::fmt;
use std::sync::PoisonError;

/// Read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;
/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A reader-writer lock with the `parking_lot` calling convention:
/// `read()`/`write()` return guards directly and ignore poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// A new unlocked lock holding `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire a read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// A mutual-exclusion lock with the `parking_lot` calling convention.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// A new unlocked mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Result of a [`Condvar::wait_timeout`], re-exported from `std`.
pub use std::sync::WaitTimeoutResult;

/// A condition variable paired with [`Mutex`]. Because the shim's
/// [`MutexGuard`] *is* the `std` guard, the wait API follows `std`'s
/// move-the-guard convention (not `parking_lot`'s `&mut` one): the
/// guard goes in, the reacquired guard comes back out. Poisoning is
/// swallowed like everywhere else in this shim.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Wake every thread blocked in [`Self::wait_timeout`].
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Wake one thread blocked in [`Self::wait_timeout`].
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Release `guard`, block until notified or `timeout` elapses,
    /// then reacquire and return the guard plus whether the wait timed
    /// out. Spurious wakeups are possible — recheck the condition.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        self.0
            .wait_timeout(guard, timeout)
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
        assert!(l.try_read().is_some());
    }

    #[test]
    fn locks_do_not_poison() {
        let l = std::sync::Arc::new(Mutex::new(0));
        let l2 = std::sync::Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.lock();
            panic!("poison attempt");
        })
        .join();
        *l.lock() = 7;
        assert_eq!(*l.lock(), 7);
    }
}
