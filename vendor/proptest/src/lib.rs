//! Offline stand-in for the slice of `proptest` this workspace uses.
//!
//! The build environment cannot reach crates.io, so this crate
//! reimplements the API surface the test suites depend on: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map` / `prop_flat_map`
//! / `prop_filter` / `boxed`, `any::<T>()`, range and string-pattern
//! strategies, [`prop_oneof!`], `collection::vec`, `option::of`, and
//! `ProptestConfig::with_cases`.
//!
//! Semantics: cases are generated from a deterministic per-test seed
//! (derived from file and test name), assertions are plain `assert!`s,
//! and **there is no shrinking** — a failure reports the panic from the
//! failing case directly. That trades minimal counterexamples for zero
//! dependencies, which is the right trade for an offline CI.

pub mod strategy;

pub mod test_runner {
    //! Test configuration and the deterministic generator.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 48 }
        }
    }

    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from raw bits.
        pub fn from_seed(seed: u64) -> Self {
            Self {
                state: seed ^ 0x6a09_e667_f3bc_c909,
            }
        }

        /// The deterministic per-test generator: seeded from the test's
        /// file and name so every run regenerates the same cases.
        pub fn for_test(file: &str, name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in file.bytes().chain(name.bytes()) {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self::from_seed(h)
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// A uniform index in `0..n` (`n` ≥ 1).
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    // Raw random bits: exercises NaN, infinities, subnormals — exactly
    // what serialization round-trip tests want from `any::<f64>()`.
    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }
}

pub mod collection {
    //! Collection strategies (`collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specifications accepted by [`vec`].
    pub trait SizeRange {
        /// Draw a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below(self.end - self.start)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below(self.end() - self.start() + 1)
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy for vectors of values drawn from `element`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `collection::vec(element, len_range)`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

pub mod option {
    //! Option strategies (`option::of`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<T>` (evenly `None` / `Some`).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 1 == 0 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// `option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*` imports.

    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property (plain `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Weighted choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, …) { body }`
/// runs `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::Config::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(file!(), stringify!($name));
            for __case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let mut rng = TestRng::from_seed(1);
        let s = (0usize..10, 5u64..=6).prop_map(|(a, b)| a as u64 + b);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((5..16).contains(&v));
        }
    }

    #[test]
    fn oneof_filter_and_vec() {
        let mut rng = TestRng::from_seed(2);
        let s = crate::collection::vec(
            prop_oneof![3 => Just(1u8), 1 => (10u8..20).prop_filter("even", |v| v % 2 == 0)],
            1..8,
        );
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 8);
            assert!(v
                .iter()
                .all(|&x| x == 1 || (x >= 10 && x < 20 && x % 2 == 0)));
        }
    }

    #[test]
    fn string_patterns_respect_bounds() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..100 {
            let s = ".{1,20}".generate(&mut rng);
            let n = s.chars().count();
            assert!((1..=20).contains(&n), "len {n}");
            assert!(!s.contains('\n'));
        }
        let empty_ok = ".*".generate(&mut rng);
        let _ = empty_ok.len();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: patterns, multiple params, flat_map.
        #[test]
        fn macro_end_to_end((a, b) in (0usize..5, 0usize..5), v in any::<[usize; 3]>()) {
            prop_assert!(a < 5 && b < 5);
            prop_assert_eq!(v.len(), 3);
        }
    }
}
