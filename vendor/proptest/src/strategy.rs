//! The [`Strategy`] trait and the built-in strategies.

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;

/// A generator of values of one type. Unlike real proptest there is no
/// shrinking: `generate` draws a value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `keep` (re-draws until satisfied).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl std::fmt::Display,
        keep: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.to_string(),
            keep,
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    keep: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.keep)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 10000 consecutive draws: {}",
            self.reason
        );
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `any::<T>()` — the canonical full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Weighted union of strategies over a common value type (what
/// [`prop_oneof!`](crate::prop_oneof) builds).
pub struct Union<V> {
    variants: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    /// A union of `(weight, strategy)` variants.
    pub fn new(variants: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!variants.is_empty(), "empty prop_oneof");
        let total = variants.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof weights sum to zero");
        Self { variants, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.next_u64() % self.total;
        for (w, s) in &self.variants {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Characters `.`-pattern strings draw from: a deliberately hostile mix
/// of ASCII, escapes' own metacharacters, whitespace (but not `\n`,
/// which regex `.` excludes), and multi-byte code points.
const PATTERN_CHARS: &[char] = &[
    'a', 'b', 'c', 'd', 'e', 'x', 'y', 'z', 'A', 'Z', '0', '1', '9', '_', '-', '.', ',', ';', ':',
    '!', '?', '/', '|', '(', ')', '[', ']', '{', '}', '=', '*', '@', '#', '\'', '"', '`', '\\',
    ' ', ' ', '\t', '\r', '\u{85}', '\u{2028}', 'é', 'ß', 'λ', 'Ω', '中', '🦀',
];

/// String patterns used as strategies (`".{0,20}"`, `".*"`, `".+"`).
/// Only the `.`-repetition shapes the workspace uses are supported;
/// anything else panics loudly rather than silently generating the
/// wrong distribution.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_dot_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern {self:?}"));
        let n = lo + rng.below(hi - lo + 1);
        (0..n)
            .map(|_| PATTERN_CHARS[rng.below(PATTERN_CHARS.len())])
            .collect()
    }
}

/// Parse `".*"`, `".+"`, or `".{lo,hi}"` into length bounds.
fn parse_dot_pattern(p: &str) -> Option<(usize, usize)> {
    match p {
        ".*" => return Some((0, 32)),
        ".+" => return Some((1, 32)),
        _ => {}
    }
    let body = p.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_patterns_parse() {
        assert_eq!(parse_dot_pattern(".*"), Some((0, 32)));
        assert_eq!(parse_dot_pattern(".+"), Some((1, 32)));
        assert_eq!(parse_dot_pattern(".{3,7}"), Some((3, 7)));
        assert_eq!(parse_dot_pattern("[a-z]+"), None);
    }

    #[test]
    fn union_respects_weights_loosely() {
        let mut rng = TestRng::from_seed(9);
        let u = Union::new(vec![(9, Just(0u8).boxed()), (1, Just(1u8).boxed())]);
        let ones: usize = (0..1000).map(|_| usize::from(u.generate(&mut rng))).sum();
        assert!(ones < 300, "ones = {ones}");
    }
}
