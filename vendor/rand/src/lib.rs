//! Offline stand-in for the slice of the `rand` 0.9 API this workspace
//! uses: [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and the
//! [`Rng`] methods `random`, `random_range`, and `random_bool`.
//!
//! The generator is SplitMix64: tiny, fast, and — the property the
//! workload generators actually rely on — **deterministic for a given
//! seed across platforms and runs**. It makes no statistical or
//! security claims beyond what the synthetic-workload and fault-plan
//! use cases need.

/// Types that can produce a uniformly random value of themselves from
/// raw generator output.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Ranges a uniform value can be drawn from ([`Rng::random_range`]).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics if empty.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u: f64 = Standard::draw(rng);
        lo + u * (hi - lo)
    }
}

/// The subset of the `rand::Rng` interface the workspace uses.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random `T` (integers over their full domain, floats
    /// in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A uniform draw from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.random();
        u < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators ([`seed_from_u64`](Self::seed_from_u64) is the
/// only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Deterministically construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    /// Deterministic SplitMix64 generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((1_500..3_500).contains(&heads), "heads = {heads}");
    }
}
