//! Request priority tiers for overload shedding.
//!
//! Every request through the service (and, via the `ctxpref2` wire
//! envelope, every request through the network stack) carries a
//! [`Priority`]. Under overload the admission controller sheds
//! lowest-tier-first: Maintenance yields before Bulk, Bulk before
//! Interactive, and Interactive is only ever refused by the hard
//! in-flight backstop — never by the sojourn-time controller.

/// The priority tier a request runs at. Ordering is by value: a
/// *numerically higher* tier is shed *earlier* under pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// User-facing query traffic: shed last, only by the hard
    /// in-flight backstop.
    #[default]
    Interactive = 0,
    /// Batch loads and migrations: shed when pressure is sustained.
    Bulk = 1,
    /// Background upkeep (checkpoints, scrubs, anti-entropy): the
    /// first tier to yield under any pressure.
    Maintenance = 2,
}

impl Priority {
    /// The wire tag (`u8`) of this tier in the `ctxpref2` envelope.
    pub fn wire_tag(self) -> u8 {
        self as u8
    }

    /// Decode a wire tag; `None` for an unknown tag (the decoder turns
    /// that into a typed `BadTag` error).
    pub fn from_wire_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Self::Interactive),
            1 => Some(Self::Bulk),
            2 => Some(Self::Maintenance),
            _ => None,
        }
    }

    /// The tier's lowercase display name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Interactive => "interactive",
            Self::Bulk => "bulk",
            Self::Maintenance => "maintenance",
        }
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_tags_roundtrip() {
        for tier in [Priority::Interactive, Priority::Bulk, Priority::Maintenance] {
            assert_eq!(Priority::from_wire_tag(tier.wire_tag()), Some(tier));
        }
        assert_eq!(Priority::from_wire_tag(3), None);
        assert_eq!(Priority::from_wire_tag(255), None);
    }

    #[test]
    fn shedding_order_is_by_value() {
        assert!(Priority::Interactive < Priority::Bulk);
        assert!(Priority::Bulk < Priority::Maintenance);
        assert_eq!(Priority::default(), Priority::Interactive);
    }
}
