//! Per-user migration state held by a service.
//!
//! A live migration moves one user between two *clusters*. Each side's
//! service keeps a tiny per-user entry while the move is in flight:
//!
//! * the **source** is `Fenced` from cut-over until the flip completes
//!   (client writes to that one user get the typed, retry-able
//!   [`ServiceError::Migrating`](crate::ServiceError::Migrating) —
//!   never a hang), then keeps a `Moved` tombstone so stale clients
//!   that still route here are told to refresh instead of forking the
//!   user's state;
//! * the **destination** is `Importing` while the copy and catch-up
//!   replay build the user, which blocks client writes for the user
//!   until the driver activates it — the destination does not own the
//!   user until the routing table says so.
//!
//! Every entry carries the **routing epoch** the driver minted for the
//! migration (distinct from the replication epoch). An action with an
//! older epoch than the entry is refused with
//! [`ServiceError::StaleMigration`](crate::ServiceError::StaleMigration),
//! so a deposed migration driver can never fence, import, or apply
//! stale writes over a newer migration's work. Entries are in-memory
//! by design: a crash aborts the migration, and every step is
//! restartable from scratch.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, MutexGuard};

use crate::error::ServiceError;

/// How long a fence (or import) waits for writers that passed the
/// write gate before the entry landed. In-flight writes complete in
/// WAL-append time, so this is a safety net against a wedged writer —
/// on expiry the entry stays installed (writes remain refused, which
/// is safe) and the caller gets a typed error so the driver aborts.
const DRAIN_WAIT: Duration = Duration::from_secs(10);

/// Which side of a migration a user's entry describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPhase {
    /// Source at cut-over: reads serve, client writes are refused with
    /// the retry-able `Migrating` error.
    Fenced,
    /// Destination during copy/catch-up: the user is being built here
    /// and client writes are refused until activation. The watermark
    /// is the highest **source** LSN already applied — replayed pages
    /// at or below it are dropped, which makes `migrate_apply`
    /// idempotent even though the ops themselves are not.
    Importing {
        /// Highest source LSN whose effects are already applied.
        watermark: u64,
    },
    /// Source after a completed cut-over: the user now lives
    /// elsewhere; stale clients are told to refresh their routing.
    Moved,
}

/// One user's migration entry: the routing epoch that owns it plus the
/// phase this side is in.
#[derive(Debug, Clone, Copy)]
pub struct MigrationEntry {
    /// The routing epoch the migration driver minted for this move.
    pub epoch: u64,
    /// This side's phase.
    pub phase: MigrationPhase,
}

/// Entries plus the per-user count of client writes currently inside
/// the write path — one mutex so gate checks, entry installs, and
/// drain waits are a single atomic story.
#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<String, MigrationEntry>,
    /// Client writes that passed the gate and have not finished their
    /// append + ack yet.
    in_flight: HashMap<String, usize>,
}

/// The per-service migration table.
#[derive(Debug, Default)]
pub(crate) struct MigrationTable {
    inner: Mutex<Inner>,
    /// Signalled when a user's in-flight count drops to zero.
    drained: Condvar,
}

/// Holds one client write's in-flight registration for the duration of
/// the write path (gate check through append + ack). Dropping it
/// releases the slot and wakes any fence waiting for stragglers.
#[must_use = "the guard must live across the append, or the fence race returns"]
pub(crate) struct WriteGuard<'a> {
    table: &'a MigrationTable,
    user: String,
}

impl Drop for WriteGuard<'_> {
    fn drop(&mut self) {
        let mut inner = self.table.inner.lock();
        if let Some(n) = inner.in_flight.get_mut(&self.user) {
            *n -= 1;
            if *n == 0 {
                inner.in_flight.remove(&self.user);
                self.table.drained.notify_all();
            }
        }
    }
}

impl MigrationTable {
    /// Admit a client write for `user`: refuse while an entry blocks
    /// the user, otherwise register the write as in-flight until the
    /// returned guard drops. The check and the registration are one
    /// atomic step, so a fence installed after this returns must wait
    /// for the write to finish before it can treat the WAL as frozen —
    /// no write that passed the gate can append after the fence's
    /// drain cut is taken.
    pub fn write_guard(&self, user: &str) -> Result<WriteGuard<'_>, ServiceError> {
        let mut inner = self.inner.lock();
        if inner.entries.contains_key(user) {
            return Err(ServiceError::Migrating {
                user: user.to_string(),
            });
        }
        *inner.in_flight.entry(user.to_string()).or_insert(0) += 1;
        Ok(WriteGuard {
            table: self,
            user: user.to_string(),
        })
    }

    /// Wait (bounded) for every in-flight write of `user` to finish.
    /// Called with the entry already installed, so no new write can
    /// join; the wait only covers stragglers that passed the gate
    /// before the entry landed.
    fn drain(&self, mut inner: MutexGuard<'_, Inner>, user: &str) -> Result<(), ServiceError> {
        let deadline = Instant::now() + DRAIN_WAIT;
        while inner.in_flight.contains_key(user) {
            let timeout = deadline.saturating_duration_since(Instant::now());
            if timeout.is_zero() {
                return Err(ServiceError::DeadlineExceeded {
                    deadline: DRAIN_WAIT,
                });
            }
            let (reacquired, result) = self.drained.wait_timeout(inner, timeout);
            inner = reacquired;
            if result.timed_out() && inner.in_flight.contains_key(user) {
                return Err(ServiceError::DeadlineExceeded {
                    deadline: DRAIN_WAIT,
                });
            }
        }
        Ok(())
    }

    /// Fence `user` at `epoch` (source side, cut-over). Idempotent for
    /// the same epoch; a newer epoch supersedes any older entry; an
    /// older epoch — or re-fencing a completed move — is refused.
    ///
    /// Returns only after every write that passed the gate before the
    /// fence landed has finished its append, so the drain export taken
    /// next reads a `last_lsn` that covers all acked writes.
    pub fn fence(&self, user: &str, epoch: u64) -> Result<(), ServiceError> {
        let mut inner = self.inner.lock();
        if let Some(e) = inner.entries.get(user) {
            if epoch < e.epoch || (epoch == e.epoch && e.phase == MigrationPhase::Moved) {
                return Err(ServiceError::StaleMigration { current: e.epoch });
            }
        }
        inner.entries.insert(
            user.to_string(),
            MigrationEntry {
                epoch,
                phase: MigrationPhase::Fenced,
            },
        );
        self.drain(inner, user)
    }

    /// Begin (or idempotently restart) an import of `user` at `epoch`
    /// with the snapshot's cut LSN as the starting watermark. Like
    /// [`Self::fence`], waits for straggler writes that passed the
    /// gate before the entry landed, so the import's reset cannot
    /// delete a write acked after it.
    pub fn begin_import(&self, user: &str, epoch: u64, src_lsn: u64) -> Result<(), ServiceError> {
        let mut inner = self.inner.lock();
        if let Some(e) = inner.entries.get(user) {
            if epoch < e.epoch {
                return Err(ServiceError::StaleMigration { current: e.epoch });
            }
        }
        inner.entries.insert(
            user.to_string(),
            MigrationEntry {
                epoch,
                phase: MigrationPhase::Importing { watermark: src_lsn },
            },
        );
        self.drain(inner, user)
    }

    /// The current import watermark for `user`, verifying the entry is
    /// an import owned by `epoch`.
    pub fn import_watermark(&self, user: &str, epoch: u64) -> Result<u64, ServiceError> {
        match self.inner.lock().entries.get(user) {
            Some(e) if e.epoch == epoch => match e.phase {
                MigrationPhase::Importing { watermark } => Ok(watermark),
                _ => Err(ServiceError::StaleMigration { current: e.epoch }),
            },
            Some(e) => Err(ServiceError::StaleMigration { current: e.epoch }),
            None => Err(ServiceError::StaleMigration { current: 0 }),
        }
    }

    /// Advance the import watermark (monotone).
    pub fn advance_watermark(&self, user: &str, epoch: u64, through: u64) {
        let mut inner = self.inner.lock();
        if let Some(e) = inner.entries.get_mut(user) {
            if e.epoch == epoch {
                if let MigrationPhase::Importing { watermark } = &mut e.phase {
                    *watermark = (*watermark).max(through);
                }
            }
        }
    }

    /// The phase of `user`'s entry, verifying `epoch` owns it.
    pub fn phase_of(&self, user: &str, epoch: u64) -> Result<MigrationPhase, ServiceError> {
        match self.inner.lock().entries.get(user) {
            Some(e) if e.epoch == epoch => Ok(e.phase),
            Some(e) => Err(ServiceError::StaleMigration { current: e.epoch }),
            None => Err(ServiceError::StaleMigration { current: 0 }),
        }
    }

    /// Whether `epoch` owns an import entry for `user` (abort uses
    /// this to drop the partial copy *before* releasing the entry, so
    /// no client write can slip in and then be deleted).
    pub fn is_import(&self, user: &str, epoch: u64) -> bool {
        matches!(
            self.inner.lock().entries.get(user),
            Some(e) if e.epoch == epoch && matches!(e.phase, MigrationPhase::Importing { .. })
        )
    }

    /// Activate `user` on the destination: drop the import entry so
    /// client writes flow. Idempotent — a missing entry means a retry
    /// of an activation that already landed.
    pub fn activate(&self, user: &str, epoch: u64) -> Result<(), ServiceError> {
        let mut inner = self.inner.lock();
        match inner.entries.get(user) {
            None => Ok(()),
            Some(e) if e.epoch == epoch => {
                inner.entries.remove(user);
                Ok(())
            }
            Some(e) => Err(ServiceError::StaleMigration { current: e.epoch }),
        }
    }

    /// Mark the source side done: the entry (which must be this
    /// epoch's fence) becomes a `Moved` tombstone. The caller removes
    /// the user's data *before* flipping the phase, while the fence
    /// still blocks client writes. Idempotent on retry.
    pub fn finish(&self, user: &str, epoch: u64) -> Result<bool, ServiceError> {
        let mut inner = self.inner.lock();
        match inner.entries.get_mut(user) {
            Some(e) if e.epoch == epoch && e.phase == MigrationPhase::Fenced => {
                e.phase = MigrationPhase::Moved;
                Ok(true)
            }
            Some(e) if e.epoch == epoch && e.phase == MigrationPhase::Moved => Ok(false),
            Some(e) => Err(ServiceError::StaleMigration { current: e.epoch }),
            None => Err(ServiceError::StaleMigration { current: 0 }),
        }
    }

    /// Abort this epoch's migration on either side. Returns whether an
    /// import entry was dropped (the caller then removes the partial
    /// user). A newer entry, a completed move, or no entry at all make
    /// this a no-op — abort is best-effort cleanup and never touches
    /// state it does not own.
    pub fn abort(&self, user: &str, epoch: u64) -> bool {
        let mut inner = self.inner.lock();
        match inner.entries.get(user) {
            Some(e) if e.epoch == epoch => match e.phase {
                MigrationPhase::Fenced => {
                    inner.entries.remove(user);
                    false
                }
                MigrationPhase::Importing { .. } => {
                    inner.entries.remove(user);
                    true
                }
                MigrationPhase::Moved => false,
            },
            _ => false,
        }
    }

    /// Number of live entries (fences, imports, and tombstones).
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Snapshot of the table for status rendering.
    pub fn snapshot(&self) -> Vec<(String, MigrationEntry)> {
        let mut v: Vec<_> = self
            .inner
            .lock()
            .entries
            .iter()
            .map(|(k, e)| (k.clone(), *e))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }
}

/// What a router needs to know about one serving endpoint: whether the
/// cluster behind it currently has a primary, its replication epoch,
/// and how much per-user state it holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteInfo {
    /// Whether a primary is currently serving writes (always `true`
    /// for an unreplicated service).
    pub has_primary: bool,
    /// The replication epoch (0 for an unreplicated service).
    pub epoch: u64,
    /// Users held by this side's serving core.
    pub users: u64,
    /// Live migration entries (fences, imports, tombstones).
    pub migrations: u64,
}

/// A consistent per-user export used by the migration driver: the
/// cut's coordinates plus an FNV digest of the profile at the cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UserExport {
    /// Whether the user exists on this side.
    pub present: bool,
    /// The user's WAL shard (== core stripe).
    pub shard: u64,
    /// The shard's last applied LSN at the cut.
    pub last_lsn: u64,
    /// FNV digest of the profile at the cut (0 when absent).
    pub digest: u64,
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;

    #[test]
    fn fence_waits_for_in_flight_writes_to_drain() {
        // A write that passed the gate before the fence landed must
        // finish its append before the fence returns — otherwise the
        // drain export could read a last_lsn that misses an acked
        // straggler.
        let table = Arc::new(MigrationTable::default());
        let guard = table.write_guard("ann").unwrap();
        let fencer = {
            let table = Arc::clone(&table);
            std::thread::spawn(move || {
                table.fence("ann", 1).unwrap();
                Instant::now()
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        let released = Instant::now();
        drop(guard);
        let fenced = fencer.join().unwrap();
        assert!(
            fenced >= released,
            "fence returned while a write was still in flight"
        );
        // The fence now refuses new writes with the typed error.
        assert!(matches!(
            table.write_guard("ann"),
            Err(ServiceError::Migrating { .. })
        ));
        // Other users are untouched.
        drop(table.write_guard("bob").unwrap());
    }

    #[test]
    fn fence_with_no_writers_returns_immediately() {
        let table = MigrationTable::default();
        drop(table.write_guard("ann").unwrap());
        let start = Instant::now();
        table.fence("ann", 1).unwrap();
        assert!(start.elapsed() < DRAIN_WAIT / 2, "fence waited for nobody");
    }

    #[test]
    fn begin_import_waits_for_stragglers_too() {
        // The import's reset deletes the user's copy; a straggler write
        // acked after the reset would be silently destroyed, so the
        // import entry drains in-flight writes exactly like a fence.
        let table = Arc::new(MigrationTable::default());
        let guard = table.write_guard("ann").unwrap();
        let importer = {
            let table = Arc::clone(&table);
            std::thread::spawn(move || {
                table.begin_import("ann", 1, 7).unwrap();
                Instant::now()
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        let released = Instant::now();
        drop(guard);
        let imported = importer.join().unwrap();
        assert!(
            imported >= released,
            "import began while a write was still in flight"
        );
        assert_eq!(table.import_watermark("ann", 1).unwrap(), 7);
    }

    #[test]
    fn concurrent_guards_for_one_user_all_drain() {
        let table = Arc::new(MigrationTable::default());
        let g1 = table.write_guard("ann").unwrap();
        let g2 = table.write_guard("ann").unwrap();
        let fencer = {
            let table = Arc::clone(&table);
            std::thread::spawn(move || {
                table.fence("ann", 1).unwrap();
                Instant::now()
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        drop(g1);
        std::thread::sleep(Duration::from_millis(30));
        let released = Instant::now();
        drop(g2);
        let fenced = fencer.join().unwrap();
        assert!(
            fenced >= released,
            "fence returned with a second write still in flight"
        );
    }
}
