//! Per-user migration state held by a service.
//!
//! A live migration moves one user between two *clusters*. Each side's
//! service keeps a tiny per-user entry while the move is in flight:
//!
//! * the **source** is `Fenced` from cut-over until the flip completes
//!   (client writes to that one user get the typed, retry-able
//!   [`ServiceError::Migrating`](crate::ServiceError::Migrating) —
//!   never a hang), then keeps a `Moved` tombstone so stale clients
//!   that still route here are told to refresh instead of forking the
//!   user's state;
//! * the **destination** is `Importing` while the copy and catch-up
//!   replay build the user, which blocks client writes for the user
//!   until the driver activates it — the destination does not own the
//!   user until the routing table says so.
//!
//! Every entry carries the **routing epoch** the driver minted for the
//! migration (distinct from the replication epoch). An action with an
//! older epoch than the entry is refused with
//! [`ServiceError::StaleMigration`](crate::ServiceError::StaleMigration),
//! so a deposed migration driver can never fence, import, or apply
//! stale writes over a newer migration's work. Entries are in-memory
//! by design: a crash aborts the migration, and every step is
//! restartable from scratch.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::error::ServiceError;

/// Which side of a migration a user's entry describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPhase {
    /// Source at cut-over: reads serve, client writes are refused with
    /// the retry-able `Migrating` error.
    Fenced,
    /// Destination during copy/catch-up: the user is being built here
    /// and client writes are refused until activation. The watermark
    /// is the highest **source** LSN already applied — replayed pages
    /// at or below it are dropped, which makes `migrate_apply`
    /// idempotent even though the ops themselves are not.
    Importing {
        /// Highest source LSN whose effects are already applied.
        watermark: u64,
    },
    /// Source after a completed cut-over: the user now lives
    /// elsewhere; stale clients are told to refresh their routing.
    Moved,
}

/// One user's migration entry: the routing epoch that owns it plus the
/// phase this side is in.
#[derive(Debug, Clone, Copy)]
pub struct MigrationEntry {
    /// The routing epoch the migration driver minted for this move.
    pub epoch: u64,
    /// This side's phase.
    pub phase: MigrationPhase,
}

/// The per-service migration table.
#[derive(Debug, Default)]
pub(crate) struct MigrationTable {
    entries: Mutex<HashMap<String, MigrationEntry>>,
}

impl MigrationTable {
    /// Refuse a client write for `user` while an entry blocks it.
    pub fn ensure_writable(&self, user: &str) -> Result<(), ServiceError> {
        match self.entries.lock().get(user) {
            None => Ok(()),
            Some(_) => Err(ServiceError::Migrating {
                user: user.to_string(),
            }),
        }
    }

    /// Fence `user` at `epoch` (source side, cut-over). Idempotent for
    /// the same epoch; a newer epoch supersedes any older entry; an
    /// older epoch — or re-fencing a completed move — is refused.
    pub fn fence(&self, user: &str, epoch: u64) -> Result<(), ServiceError> {
        let mut entries = self.entries.lock();
        if let Some(e) = entries.get(user) {
            if epoch < e.epoch || (epoch == e.epoch && e.phase == MigrationPhase::Moved) {
                return Err(ServiceError::StaleMigration { current: e.epoch });
            }
        }
        entries.insert(
            user.to_string(),
            MigrationEntry {
                epoch,
                phase: MigrationPhase::Fenced,
            },
        );
        Ok(())
    }

    /// Begin (or idempotently restart) an import of `user` at `epoch`
    /// with the snapshot's cut LSN as the starting watermark.
    pub fn begin_import(&self, user: &str, epoch: u64, src_lsn: u64) -> Result<(), ServiceError> {
        let mut entries = self.entries.lock();
        if let Some(e) = entries.get(user) {
            if epoch < e.epoch {
                return Err(ServiceError::StaleMigration { current: e.epoch });
            }
        }
        entries.insert(
            user.to_string(),
            MigrationEntry {
                epoch,
                phase: MigrationPhase::Importing { watermark: src_lsn },
            },
        );
        Ok(())
    }

    /// The current import watermark for `user`, verifying the entry is
    /// an import owned by `epoch`.
    pub fn import_watermark(&self, user: &str, epoch: u64) -> Result<u64, ServiceError> {
        match self.entries.lock().get(user) {
            Some(e) if e.epoch == epoch => match e.phase {
                MigrationPhase::Importing { watermark } => Ok(watermark),
                _ => Err(ServiceError::StaleMigration { current: e.epoch }),
            },
            Some(e) => Err(ServiceError::StaleMigration { current: e.epoch }),
            None => Err(ServiceError::StaleMigration { current: 0 }),
        }
    }

    /// Advance the import watermark (monotone).
    pub fn advance_watermark(&self, user: &str, epoch: u64, through: u64) {
        let mut entries = self.entries.lock();
        if let Some(e) = entries.get_mut(user) {
            if e.epoch == epoch {
                if let MigrationPhase::Importing { watermark } = &mut e.phase {
                    *watermark = (*watermark).max(through);
                }
            }
        }
    }

    /// The phase of `user`'s entry, verifying `epoch` owns it.
    pub fn phase_of(&self, user: &str, epoch: u64) -> Result<MigrationPhase, ServiceError> {
        match self.entries.lock().get(user) {
            Some(e) if e.epoch == epoch => Ok(e.phase),
            Some(e) => Err(ServiceError::StaleMigration { current: e.epoch }),
            None => Err(ServiceError::StaleMigration { current: 0 }),
        }
    }

    /// Whether `epoch` owns an import entry for `user` (abort uses
    /// this to drop the partial copy *before* releasing the entry, so
    /// no client write can slip in and then be deleted).
    pub fn is_import(&self, user: &str, epoch: u64) -> bool {
        matches!(
            self.entries.lock().get(user),
            Some(e) if e.epoch == epoch && matches!(e.phase, MigrationPhase::Importing { .. })
        )
    }

    /// Activate `user` on the destination: drop the import entry so
    /// client writes flow. Idempotent — a missing entry means a retry
    /// of an activation that already landed.
    pub fn activate(&self, user: &str, epoch: u64) -> Result<(), ServiceError> {
        let mut entries = self.entries.lock();
        match entries.get(user) {
            None => Ok(()),
            Some(e) if e.epoch == epoch => {
                entries.remove(user);
                Ok(())
            }
            Some(e) => Err(ServiceError::StaleMigration { current: e.epoch }),
        }
    }

    /// Mark the source side done: the entry (which must be this
    /// epoch's fence) becomes a `Moved` tombstone. The caller removes
    /// the user's data *before* flipping the phase, while the fence
    /// still blocks client writes. Idempotent on retry.
    pub fn finish(&self, user: &str, epoch: u64) -> Result<bool, ServiceError> {
        let mut entries = self.entries.lock();
        match entries.get_mut(user) {
            Some(e) if e.epoch == epoch && e.phase == MigrationPhase::Fenced => {
                e.phase = MigrationPhase::Moved;
                Ok(true)
            }
            Some(e) if e.epoch == epoch && e.phase == MigrationPhase::Moved => Ok(false),
            Some(e) => Err(ServiceError::StaleMigration { current: e.epoch }),
            None => Err(ServiceError::StaleMigration { current: 0 }),
        }
    }

    /// Abort this epoch's migration on either side. Returns whether an
    /// import entry was dropped (the caller then removes the partial
    /// user). A newer entry, a completed move, or no entry at all make
    /// this a no-op — abort is best-effort cleanup and never touches
    /// state it does not own.
    pub fn abort(&self, user: &str, epoch: u64) -> bool {
        let mut entries = self.entries.lock();
        match entries.get(user) {
            Some(e) if e.epoch == epoch => match e.phase {
                MigrationPhase::Fenced => {
                    entries.remove(user);
                    false
                }
                MigrationPhase::Importing { .. } => {
                    entries.remove(user);
                    true
                }
                MigrationPhase::Moved => false,
            },
            _ => false,
        }
    }

    /// Number of live entries (fences, imports, and tombstones).
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Snapshot of the table for status rendering.
    pub fn snapshot(&self) -> Vec<(String, MigrationEntry)> {
        let mut v: Vec<_> = self
            .entries
            .lock()
            .iter()
            .map(|(k, e)| (k.clone(), *e))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }
}

/// What a router needs to know about one serving endpoint: whether the
/// cluster behind it currently has a primary, its replication epoch,
/// and how much per-user state it holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteInfo {
    /// Whether a primary is currently serving writes (always `true`
    /// for an unreplicated service).
    pub has_primary: bool,
    /// The replication epoch (0 for an unreplicated service).
    pub epoch: u64,
    /// Users held by this side's serving core.
    pub users: u64,
    /// Live migration entries (fences, imports, tombstones).
    pub migrations: u64,
}

/// A consistent per-user export used by the migration driver: the
/// cut's coordinates plus an FNV digest of the profile at the cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UserExport {
    /// Whether the user exists on this side.
    pub present: bool,
    /// The user's WAL shard (== core stripe).
    pub shard: u64,
    /// The shard's last applied LSN at the cut.
    pub last_lsn: u64,
    /// FNV digest of the profile at the cut (0 when absent).
    pub digest: u64,
}
