use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ctxpref_context::{parse_descriptor, ContextState};
use ctxpref_core::{CoreError, MultiUserDb, ShardedMultiUserDb};
use ctxpref_profile::{AttributeClause, ContextualPreference, Profile};
use ctxpref_qcache::CacheStats;
use ctxpref_relation::CompareOp;
use ctxpref_replication::{
    AckMode, Cluster, ClusterConfig, ClusterStatus, NodeId, ReplicationError, RoleHook, TickReport,
};
use ctxpref_storage::StorageError;
use ctxpref_wal::{
    CheckpointReport, DurableDb, RecoveryReport, ScrubReport, SyncPolicy, WalOp, WalOptions,
    WalStatus,
};
use parking_lot::{Mutex, RwLock};

use crate::error::ServiceError;
use crate::ladder::{run_ladder, run_ladder_topk, LadderStep, ServiceAnswer};
use crate::migrate::{MigrationEntry, MigrationTable, RouteInfo, UserExport};
use crate::stats::{Counters, ServiceStats};
use crate::tier::Priority;

/// Bounded retry with exponential backoff for storage I/O.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retry).
    pub max_attempts: u32,
    /// Sleep before attempt `n+1` is `base_backoff · 2ⁿ⁻¹`.
    pub base_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff: Duration::from_millis(2),
        }
    }
}

/// Configuration of [`CtxPrefService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads executing queries.
    pub workers: usize,
    /// Admission-control limit on queued + executing requests; further
    /// requests are shed with [`ServiceError::Overloaded`].
    pub max_in_flight: usize,
    /// Deadline applied by [`CtxPrefService::query_state`].
    pub default_deadline: Duration,
    /// Retry policy for storage I/O.
    pub retry: RetryPolicy,
    /// Stripes of the sharded serving core (users are hashed onto
    /// shards; mutations lock only their shard).
    pub shards: usize,
    /// Cap on a whole storage operation including retry backoff: when
    /// the *next* backoff sleep would cross this deadline, the retry
    /// loop gives up with [`ServiceError::DeadlineExceeded`] instead of
    /// sleeping past it.
    pub storage_deadline: Duration,
    /// Target queue sojourn time of the CoDel-style admission
    /// controller: dwell above this is treated as standing queue.
    pub codel_target: Duration,
    /// How long sojourn must stay above the target before the
    /// controller starts shedding (lowest tier first).
    pub codel_interval: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_in_flight: 64,
            default_deadline: Duration::from_millis(250),
            retry: RetryPolicy::default(),
            shards: ctxpref_core::DEFAULT_SHARDS,
            storage_deadline: Duration::from_secs(2),
            codel_target: Duration::from_millis(25),
            codel_interval: Duration::from_millis(100),
        }
    }
}

/// Configuration of the service's durability layer (separate from
/// [`ServiceConfig`], which stays `Copy`): where the write-ahead log
/// and checkpoints live, and how eagerly they reach the disk.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// The durable directory (manifest, checkpoints, per-shard logs).
    pub dir: PathBuf,
    /// Fsync policy: per-record (durable acks) or group commit
    /// (batched fsync on the background flusher's interval).
    pub sync: SyncPolicy,
    /// Rotate a shard's WAL segment past this many bytes.
    pub segment_max_bytes: u64,
    /// Take a background checkpoint this often (`None` = only when
    /// [`CtxPrefService::checkpoint`] is called).
    pub checkpoint_interval: Option<Duration>,
    /// Run a background scrub pass this often — verify sealed WAL
    /// segments and the checkpoint snapshot at rest, quarantine and
    /// heal what fails (`None` = only when [`CtxPrefService::scrub`]
    /// is called).
    pub scrub_interval: Option<Duration>,
}

impl DurabilityConfig {
    /// Durability under `dir` with the conservative defaults: fsync
    /// per record, 1 MiB segments, a background checkpoint every 60 s,
    /// a background scrub every 5 min.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            sync: SyncPolicy::PerRecord,
            segment_max_bytes: 1 << 20,
            checkpoint_interval: Some(Duration::from_secs(60)),
            scrub_interval: Some(Duration::from_secs(300)),
        }
    }

    /// Switch to group commit with the given flush interval.
    pub fn group_commit(mut self, flush_interval: Duration) -> Self {
        self.sync = SyncPolicy::GroupCommit { flush_interval };
        self
    }

    /// Set (or disable, with `None`) the background scrub interval.
    pub fn scrub_every(mut self, interval: Option<Duration>) -> Self {
        self.scrub_interval = interval;
        self
    }

    fn wal_options(&self) -> WalOptions {
        WalOptions {
            sync: self.sync,
            segment_max_bytes: self.segment_max_bytes,
        }
    }
}

/// Configuration of the service's replication layer: how many nodes,
/// when writes are acknowledged, and how eagerly the control plane
/// ticks. Built on top of the same durability knobs as
/// [`DurabilityConfig`] — every node is a full durable database.
#[derive(Debug, Clone)]
pub struct ReplicatedConfig {
    /// Root directory; node `i` gets the durable directory
    /// `<dir>/node-<i>`.
    pub dir: PathBuf,
    /// Total nodes in the cluster (one primary, the rest replicas).
    /// Majorities for quorum acks and promotion are computed against
    /// this, so 3 tolerates one failure, 5 tolerates two.
    pub nodes: usize,
    /// When writes are acknowledged: [`AckMode::Async`] (primary-only,
    /// fast, may lose acked writes on failover) or [`AckMode::Quorum`]
    /// (majority-durable, failover-safe).
    pub ack_mode: AckMode,
    /// Fsync policy for every node's WAL.
    pub sync: SyncPolicy,
    /// Rotate a shard's WAL segment past this many bytes.
    pub segment_max_bytes: u64,
    /// Whether the background tick promotes a replica automatically
    /// once the primary misses enough heartbeats.
    pub auto_failover: bool,
    /// Consecutive missed heartbeats (ticks) before the primary is
    /// declared dead.
    pub heartbeat_threshold: u32,
    /// Interval of the background control-plane tick (ship pending
    /// records, probe the primary, fail over). `None` = no background
    /// thread; drive [`CtxPrefService::tick_replication`] manually.
    pub tick_interval: Option<Duration>,
    /// Run a background scrub pass over every live node this often
    /// (`None` = only when [`CtxPrefService::scrub`] is called).
    pub scrub_interval: Option<Duration>,
}

impl ReplicatedConfig {
    /// A quorum-acked `nodes`-node cluster under `dir` with the
    /// conservative defaults: fsync per record, 1 MiB segments,
    /// auto-failover after 3 missed beats, a 25 ms background tick.
    pub fn new(dir: impl Into<PathBuf>, nodes: usize) -> Self {
        Self {
            dir: dir.into(),
            nodes,
            ack_mode: AckMode::Quorum,
            sync: SyncPolicy::PerRecord,
            segment_max_bytes: 1 << 20,
            auto_failover: true,
            heartbeat_threshold: 3,
            tick_interval: Some(Duration::from_millis(25)),
            scrub_interval: Some(Duration::from_secs(300)),
        }
    }

    /// Switch to async acks (primary-only durability before the ack).
    pub fn async_acks(mut self) -> Self {
        self.ack_mode = AckMode::Async;
        self
    }

    /// Set (or disable, with `None`) the background scrub interval.
    pub fn scrub_every(mut self, interval: Option<Duration>) -> Self {
        self.scrub_interval = interval;
        self
    }

    /// Switch to group commit with the given flush interval.
    pub fn group_commit(mut self, flush_interval: Duration) -> Self {
        self.sync = SyncPolicy::GroupCommit { flush_interval };
        self
    }

    fn cluster_config(&self, shards: usize) -> ClusterConfig {
        ClusterConfig {
            nodes: self.nodes,
            shards,
            ack_mode: self.ack_mode,
            wal: WalOptions {
                sync: self.sync,
                segment_max_bytes: self.segment_max_bytes,
            },
            batch_max: 64,
            heartbeat_threshold: self.heartbeat_threshold,
            auto_failover: self.auto_failover,
        }
    }
}

struct Job {
    user: String,
    state: ContextState,
    /// `Some(k)` routes the job down the top-k ladder (materialized
    /// view first, early-terminating evaluation otherwise); `None` is
    /// a full-ranking query.
    topk: Option<usize>,
    deadline: Instant,
    requested: Duration,
    tier: Priority,
    enqueued: Instant,
    cancelled: Arc<AtomicBool>,
    reply: mpsc::SyncSender<Result<ServiceAnswer, ServiceError>>,
}

/// CoDel-style admission controller: workers feed it the queue
/// sojourn time of every job they dequeue; when sojourn stays above
/// the target for a sustained interval, admission sheds the lowest
/// tiers first. Maintenance yields at any standing queue, Bulk when
/// the queue is badly over target, and Interactive is never shed by
/// sojourn — only by the hard in-flight backstop.
///
/// All state is atomics (instants encoded as micros since `base`), so
/// the hot paths — one `observe` per dequeue, one `pressure` load per
/// admission — never take a lock.
pub(crate) struct Admission {
    target: Duration,
    interval: Duration,
    base: Instant,
    /// Micros-since-base when sojourn first went above target
    /// (0 = currently at or below target).
    above_since: AtomicU64,
    /// Micros-since-base of the most recent observation; pressure
    /// decays back to calm when observations stop (an idle queue
    /// cannot be overloaded).
    last_observe: AtomicU64,
    /// The most recently observed sojourn, in micros — the basis of
    /// the `retry_after` hint handed to shed callers.
    last_sojourn: AtomicU64,
    /// 0 = calm, 1 = shed Maintenance, 2 = shed Bulk too.
    pressure: AtomicU8,
}

impl Admission {
    fn new(target: Duration, interval: Duration) -> Self {
        Self {
            target: target.max(Duration::from_micros(1)),
            interval: interval.max(Duration::from_micros(1)),
            base: Instant::now(),
            above_since: AtomicU64::new(0),
            last_observe: AtomicU64::new(0),
            last_sojourn: AtomicU64::new(0),
            pressure: AtomicU8::new(0),
        }
    }

    fn micros_now(&self) -> u64 {
        // Saturate at 1 so 0 stays the "not above target" sentinel.
        (self.base.elapsed().as_micros() as u64).max(1)
    }

    /// Feed one dequeued job's queue dwell into the controller.
    pub(crate) fn observe(&self, sojourn: Duration) {
        let now = self.micros_now();
        self.last_observe.store(now, Ordering::Relaxed);
        self.last_sojourn
            .store(sojourn.as_micros() as u64, Ordering::Relaxed);
        if sojourn <= self.target {
            self.above_since.store(0, Ordering::Relaxed);
            self.pressure.store(0, Ordering::Relaxed);
            return;
        }
        let since = self.above_since.load(Ordering::Relaxed);
        let since = if since == 0 {
            self.above_since.store(now, Ordering::Relaxed);
            now
        } else {
            since
        };
        if now.saturating_sub(since) >= self.interval.as_micros() as u64 {
            let level = if sojourn >= self.target * 4 { 2 } else { 1 };
            self.pressure.store(level, Ordering::Relaxed);
        }
    }

    /// The current pressure level: 0 = admit everything, 1 = shed
    /// Maintenance, 2 = shed Bulk too. Stale pressure decays to calm
    /// when no job has been observed for two intervals.
    pub(crate) fn pressure(&self) -> u8 {
        let last = self.last_observe.load(Ordering::Relaxed);
        if last == 0 {
            return 0;
        }
        let now = self.micros_now();
        if now.saturating_sub(last) > 2 * self.interval.as_micros() as u64 {
            self.above_since.store(0, Ordering::Relaxed);
            self.pressure.store(0, Ordering::Relaxed);
            return 0;
        }
        self.pressure.load(Ordering::Relaxed)
    }

    /// Whether the sojourn controller sheds `tier` right now.
    fn sheds(&self, tier: Priority) -> bool {
        match tier {
            Priority::Interactive => false,
            Priority::Bulk => self.pressure() >= 2,
            Priority::Maintenance => self.pressure() >= 1,
        }
    }

    /// The backoff hint handed to shed callers: the last observed
    /// sojourn (how long the queue actually is), clamped between the
    /// target and one second.
    fn retry_after(&self) -> Duration {
        Duration::from_micros(self.last_sojourn.load(Ordering::Relaxed))
            .clamp(self.target, Duration::from_secs(1))
    }
}

/// The failure of a bulk mutation: how many items of the batch were
/// applied before the failure, plus the failure itself. The prefix is
/// durably applied — a caller resumes after `applied`, it does not
/// replay the whole batch.
#[derive(Debug)]
pub struct BulkError {
    /// Items applied before the failure.
    pub applied: usize,
    /// The first item failure.
    pub error: ServiceError,
}

impl std::fmt::Display for BulkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bulk write failed after {} item(s): {}",
            self.applied, self.error
        )
    }
}

impl std::error::Error for BulkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Decrements the in-flight counter when a request leaves the system,
/// whatever the path out.
struct InFlightGuard(Arc<AtomicUsize>);

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The fault-tolerant serving layer over a sharded multi-user core.
///
/// Requests run on a fixed pool of worker threads behind a
/// request/response API:
///
/// * **Deadlines & cancellation** — every query carries a deadline; the
///   caller gets [`ServiceError::DeadlineExceeded`] at the deadline even
///   if the worker is still grinding, and the worker observes the
///   cancellation and stops between ladder rungs.
/// * **Panic isolation** — each query runs under `catch_unwind`; a panic
///   (real or injected) is contained and surfaces as
///   [`ServiceError::QueryPanicked`] or a recorded ladder fallback,
///   never as a crash. The locks are `parking_lot` locks precisely so a
///   contained panic cannot poison shared state.
/// * **Admission control** — at most `max_in_flight` requests are
///   queued or executing; excess load is shed immediately with
///   [`ServiceError::Overloaded`].
/// * **Degradation ladder** — see [`crate::ladder`]: cached → exact →
///   nearest-state → non-contextual default, every fallback recorded.
/// * **Retrying storage** — [`Self::save`] and [`Self::open`] retry
///   transient I/O failures with exponential backoff capped by the
///   configured storage deadline; writes are atomic and checksummed
///   (see `ctxpref-storage`).
/// * **Sharded core** — the database is a [`ShardedMultiUserDb`]: user
///   slots are striped over per-shard `RwLock`s, so one user's profile
///   edit (or a long snapshot) never blocks queries for users on other
///   shards, and a worker acquires exactly the one shard its request
///   needs.
/// * **Durability (opt-in)** — built with [`Self::new_durable`] or
///   [`Self::recover`], every mutation is appended to a per-shard
///   write-ahead log *before* it touches the core, a background
///   checkpointer bounds replay time, and recovery replays the log on
///   top of the latest checkpoint (see `ctxpref-wal`).
pub struct CtxPrefService {
    /// The serving core reads go to. A slot rather than a plain handle:
    /// for a replicated service this is the local node's database, and
    /// a crash + restart of that node builds a *new* recovered instance
    /// inside the cluster — the control-plane tick re-resolves the slot
    /// so reads follow the recovered node instead of serving a frozen
    /// orphan forever.
    db: Arc<RwLock<Arc<ShardedMultiUserDb>>>,
    cfg: ServiceConfig,
    counters: Arc<Counters>,
    admission: Arc<Admission>,
    in_flight: Arc<AtomicUsize>,
    shutting_down: Arc<AtomicBool>,
    sender: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    durable: Option<Arc<DurableDb>>,
    cluster: Option<Arc<Cluster>>,
    maintenance: Vec<(mpsc::Sender<()>, JoinHandle<()>)>,
    recovered_lsn: u64,
    recovered_rescued_shards: u64,
    migrations: MigrationTable,
}

impl std::fmt::Debug for CtxPrefService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CtxPrefService")
            .field("workers", &self.workers.len())
            .field("in_flight", &self.in_flight.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// Count one shed request: the combined counter, the reason breakdown
/// (`reason` is one of the `shed_*` reason atomics), and the tier
/// breakdown — operators telling overload shapes apart need all three.
fn record_shed(counters: &Counters, reason: &AtomicU64, tier: Priority) {
    counters.shed.fetch_add(1, Ordering::Relaxed);
    reason.fetch_add(1, Ordering::Relaxed);
    let by_tier = match tier {
        Priority::Interactive => &counters.shed_interactive,
        Priority::Bulk => &counters.shed_bulk,
        Priority::Maintenance => &counters.shed_maintenance,
    };
    by_tier.fetch_add(1, Ordering::Relaxed);
}

/// Fold one scrub pass's outcome into the service counters.
fn record_scrub(counters: &Counters, report: &ScrubReport) {
    counters.scrub_passes.fetch_add(1, Ordering::Relaxed);
    counters
        .scrub_quarantined
        .fetch_add(report.quarantined.len() as u64, Ordering::Relaxed);
    counters
        .scrub_read_errors
        .fetch_add(report.read_errors, Ordering::Relaxed);
    if report.healed {
        counters.scrub_heals.fetch_add(1, Ordering::Relaxed);
    }
}

/// The self-healing storage counters, as reported by
/// [`CtxPrefService::scrub_status`] (and the `scrub-status` wire verb):
/// what scrubbing has found and done since the service started.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubStatus {
    /// Scrub passes completed (manual and background).
    pub passes: u64,
    /// Files quarantined (corrupt sealed segments or checkpoints).
    pub quarantined: u64,
    /// Files skipped on a transient read error (retried next pass).
    pub read_errors: u64,
    /// Passes that healed damage with a fresh checkpoint.
    pub heals: u64,
    /// WAL shards recovery rescued via quarantine (the node restarted
    /// clean-but-behind; replication re-fetches the lost suffix).
    pub rescued_shards: u64,
    /// Appends shed with a typed retryable disk-full error.
    pub disk_full_sheds: u64,
    /// Size-triggered segment rotations that failed (retried later).
    pub rotate_failures: u64,
}

impl CtxPrefService {
    /// Serve `db` with `cfg`, sharding it over `cfg.shards` stripes.
    pub fn new(db: MultiUserDb, cfg: ServiceConfig) -> Self {
        Self::new_sharded(ShardedMultiUserDb::from_db(db, cfg.shards), cfg)
    }

    /// Serve an already-sharded core with `cfg` (`cfg.shards` is
    /// ignored; the core keeps its stripe count).
    pub fn new_sharded(db: ShardedMultiUserDb, cfg: ServiceConfig) -> Self {
        Self::new_arc(Arc::new(db), cfg)
    }

    /// Serve `db` with `cfg`, logging every mutation to a fresh durable
    /// directory per `dcfg` before applying it. Fails with
    /// [`ctxpref_wal::WalError::AlreadyExists`] if the directory already
    /// holds a durable database — [`Self::recover`] it instead.
    pub fn new_durable(
        db: MultiUserDb,
        cfg: ServiceConfig,
        dcfg: DurabilityConfig,
    ) -> Result<Self, ServiceError> {
        let db = Arc::new(ShardedMultiUserDb::from_db(db, cfg.shards));
        let durable = Arc::new(DurableDb::create(
            &dcfg.dir,
            Arc::clone(&db),
            dcfg.wal_options(),
        )?);
        let mut service = Self::new_arc(db, cfg);
        service.attach_durability(durable, &dcfg);
        Ok(service)
    }

    /// Recover a durable directory — load the manifest's checkpoint,
    /// replay each shard's live log segments, repair a torn tail — and
    /// serve the recovered database; further mutations append to the
    /// same log.
    pub fn recover(
        cfg: ServiceConfig,
        dcfg: DurabilityConfig,
    ) -> Result<(Self, RecoveryReport), ServiceError> {
        let (durable, report) = DurableDb::recover(&dcfg.dir, dcfg.wal_options())?;
        let durable = Arc::new(durable);
        let mut service = Self::new_arc(Arc::clone(durable.db()), cfg);
        service.recovered_lsn = report.recovered_lsn();
        service.recovered_rescued_shards = report.rescued_shards;
        service.attach_durability(durable, &dcfg);
        Ok((service, report))
    }

    fn new_arc(db: Arc<ShardedMultiUserDb>, cfg: ServiceConfig) -> Self {
        let db = Arc::new(RwLock::new(db));
        let counters = Arc::new(Counters::default());
        let admission = Arc::new(Admission::new(cfg.codel_target, cfg.codel_interval));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let shutting_down = Arc::new(AtomicBool::new(false));
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let db = Arc::clone(&db);
                let counters = Arc::clone(&counters);
                let admission = Arc::clone(&admission);
                let in_flight = Arc::clone(&in_flight);
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("ctxpref-worker-{i}"))
                    .spawn(move || worker_loop(&db, &counters, &admission, &in_flight, &receiver))
                    .expect("spawning a worker thread")
            })
            .collect();
        Self {
            db,
            cfg,
            counters,
            admission,
            in_flight,
            shutting_down,
            sender: Some(sender),
            workers,
            durable: None,
            cluster: None,
            maintenance: Vec::new(),
            recovered_lsn: 0,
            recovered_rescued_shards: 0,
            migrations: MigrationTable::default(),
        }
    }

    /// Serve `db` replicated across `rcfg.nodes` primary/replica nodes
    /// under `rcfg.dir`. Every node is a full durable database (WAL,
    /// checkpoints, recovery); `db`'s initial contents are seeded
    /// through the replicated write path so all nodes start identical.
    ///
    /// Queries are served from node 0's core — the service's local
    /// node — while mutations route through the cluster's current
    /// primary, honouring the configured [`AckMode`]. After a failover
    /// away from node 0, reads stay local (and catch up through
    /// shipping); writes follow the new primary automatically.
    pub fn new_replicated(
        db: MultiUserDb,
        cfg: ServiceConfig,
        rcfg: ReplicatedConfig,
    ) -> Result<Self, ServiceError> {
        let env = db.env().clone();
        let rel = db.relation().clone();
        let cache = db.cache_capacity();
        let shards = cfg.shards.max(1);
        let cluster = Arc::new(
            Cluster::new(&rcfg.dir, rcfg.cluster_config(shards), || {
                Arc::new(ShardedMultiUserDb::new(
                    env.clone(),
                    rel.clone(),
                    cache,
                    shards,
                ))
            })
            .map_err(ServiceError::from)?,
        );
        // Seed the initial contents through the replicated write path:
        // every node (not just the primary) must hold them, and the WAL
        // must cover them so late-joining replicas can catch up.
        for user in db.users_sorted() {
            cluster
                .write(&WalOp::AddUser {
                    user: user.to_string(),
                })
                .map_err(ServiceError::from)?;
            let profile = db.profile(user)?;
            for pref in profile.preferences() {
                cluster
                    .write(&WalOp::InsertPreference {
                        user: user.to_string(),
                        pref: pref.clone(),
                    })
                    .map_err(ServiceError::from)?;
            }
        }
        let local = cluster.db_of(0).expect("node 0 exists at bootstrap");
        let mut service = Self::new_arc(Arc::clone(local.db()), cfg);
        service.attach_replication(cluster, &rcfg);
        Ok(service)
    }

    /// Wire `cluster` into the service: mutations route through the
    /// replicated write path from here on, and (when configured) the
    /// background control-plane tick starts.
    fn attach_replication(&mut self, cluster: Arc<Cluster>, rcfg: &ReplicatedConfig) {
        if let Some(interval) = rcfg.tick_interval {
            let cluster = Arc::clone(&cluster);
            let slot = Arc::clone(&self.db);
            let (stop, stopped) = mpsc::channel::<()>();
            let handle = std::thread::Builder::new()
                .name("ctxpref-repl-tick".to_string())
                .spawn(move || {
                    while let Err(mpsc::RecvTimeoutError::Timeout) = stopped.recv_timeout(interval)
                    {
                        let _ = cluster.tick();
                        // Follow the local node across crash/restart:
                        // recovery builds a new core instance and the
                        // serving slot must not keep the orphan.
                        if let Some(local) = cluster.db_of(0) {
                            refresh_serving_slot(&slot, local.db());
                        }
                    }
                })
                .expect("spawning the replication tick thread");
            self.maintenance.push((stop, handle));
        }
        if let SyncPolicy::GroupCommit { flush_interval } = rcfg.sync {
            let cluster = Arc::clone(&cluster);
            let (stop, stopped) = mpsc::channel::<()>();
            let handle = std::thread::Builder::new()
                .name("ctxpref-repl-flusher".to_string())
                .spawn(move || {
                    while let Err(mpsc::RecvTimeoutError::Timeout) =
                        stopped.recv_timeout(flush_interval)
                    {
                        if let Some(db) = cluster.primary_db() {
                            let _ = db.flush();
                        }
                    }
                })
                .expect("spawning the replication flusher thread");
            self.maintenance.push((stop, handle));
        }
        if let Some(interval) = rcfg.scrub_interval {
            let cluster = Arc::clone(&cluster);
            let counters = Arc::clone(&self.counters);
            let admission = Arc::clone(&self.admission);
            let (stop, stopped) = mpsc::channel::<()>();
            let handle = std::thread::Builder::new()
                .name("ctxpref-scrubber".to_string())
                .spawn(move || {
                    while let Err(mpsc::RecvTimeoutError::Timeout) = stopped.recv_timeout(interval)
                    {
                        // Maintenance yields under pressure: a scrub
                        // pass can wait out an overload spike.
                        if admission.pressure() >= 1 {
                            continue;
                        }
                        for id in 0..cluster.config().nodes {
                            let cluster = Arc::clone(&cluster);
                            let outcome =
                                catch_unwind(AssertUnwindSafe(move || cluster.scrub_node(id)));
                            if let Ok(Ok(report)) = outcome {
                                record_scrub(&counters, &report);
                            }
                        }
                    }
                })
                .expect("spawning the scrubber thread");
            self.maintenance.push((stop, handle));
        }
        self.cluster = Some(cluster);
    }

    /// Wire `durable` into the service: mutations route through the log
    /// from here on, and the background maintenance threads start (a
    /// checkpointer, plus a flusher when group commit is configured).
    fn attach_durability(&mut self, durable: Arc<DurableDb>, dcfg: &DurabilityConfig) {
        if let Some(interval) = dcfg.checkpoint_interval {
            let db = Arc::clone(&durable);
            let counters = Arc::clone(&self.counters);
            let admission = Arc::clone(&self.admission);
            let (stop, stopped) = mpsc::channel::<()>();
            let handle = std::thread::Builder::new()
                .name("ctxpref-checkpointer".to_string())
                .spawn(move || {
                    // recv_timeout disconnects when the service drops
                    // its stop sender — that is the shutdown signal.
                    while let Err(mpsc::RecvTimeoutError::Timeout) = stopped.recv_timeout(interval)
                    {
                        // Maintenance yields under pressure: defer the
                        // checkpoint; replay time grows a little, the
                        // overloaded serving path keeps its cycles.
                        if admission.pressure() >= 1 {
                            continue;
                        }
                        let db = Arc::clone(&db);
                        let ok = catch_unwind(AssertUnwindSafe(move || db.checkpoint().is_ok()));
                        if matches!(ok, Ok(true)) {
                            counters.checkpoints.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
                .expect("spawning the checkpointer thread");
            self.maintenance.push((stop, handle));
        }
        if let SyncPolicy::GroupCommit { flush_interval } = dcfg.sync {
            let db = Arc::clone(&durable);
            let (stop, stopped) = mpsc::channel::<()>();
            let handle = std::thread::Builder::new()
                .name("ctxpref-wal-flusher".to_string())
                .spawn(move || {
                    while let Err(mpsc::RecvTimeoutError::Timeout) =
                        stopped.recv_timeout(flush_interval)
                    {
                        let _ = db.flush();
                    }
                })
                .expect("spawning the WAL flusher thread");
            self.maintenance.push((stop, handle));
        }
        if let Some(interval) = dcfg.scrub_interval {
            let db = Arc::clone(&durable);
            let counters = Arc::clone(&self.counters);
            let admission = Arc::clone(&self.admission);
            let (stop, stopped) = mpsc::channel::<()>();
            let handle = std::thread::Builder::new()
                .name("ctxpref-scrubber".to_string())
                .spawn(move || {
                    while let Err(mpsc::RecvTimeoutError::Timeout) = stopped.recv_timeout(interval)
                    {
                        // Maintenance yields under pressure (see the
                        // replicated scrubber above).
                        if admission.pressure() >= 1 {
                            continue;
                        }
                        let db = Arc::clone(&db);
                        let outcome = catch_unwind(AssertUnwindSafe(move || db.scrub()));
                        if let Ok(Ok(report)) = outcome {
                            record_scrub(&counters, &report);
                        }
                    }
                })
                .expect("spawning the scrubber thread");
            self.maintenance.push((stop, handle));
        }
        self.durable = Some(durable);
    }

    /// Load a multi-user database from `path` (retrying transient I/O
    /// per the retry policy) and serve it.
    pub fn open(path: impl AsRef<Path>, cfg: ServiceConfig) -> Result<Self, ServiceError> {
        let counters = Counters::default();
        let db = retry_storage(&cfg.retry, cfg.storage_deadline, &counters, || {
            ctxpref_storage::load_multi_user(&path)
        })?;
        let service = Self::new(db, cfg);
        service.counters.storage_retries.fetch_add(
            counters.storage_retries.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        Ok(service)
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// A snapshot of the service counters, with the durability figures
    /// (WAL appends, group-commit batches, recovered LSN) overlaid when
    /// the service runs durably.
    pub fn stats(&self) -> ServiceStats {
        let mut stats = self.counters.snapshot();
        if let Some(d) = self.durable_db() {
            stats.wal_appends = d.wal_appends();
            stats.group_commit_batches = d.group_commit_batches();
            let health = d.wal_health();
            stats.wal_rotate_failures = health.rotate_failures;
            stats.wal_disk_full_sheds = health.disk_full_sheds;
            stats.repl_apply_rejects = d.repl_apply_rejects();
        }
        stats.recovered_lsn = self.recovered_lsn;
        stats.rescued_shards = self.recovered_rescued_shards;
        if let Some(c) = &self.cluster {
            let status = c.status();
            stats.replication_epoch = status.epoch;
            stats.replication_max_lag = status.max_lag;
            stats.failovers = (status.promotions.len() as u64).saturating_sub(1);
            stats.rescued_shards = status.nodes.iter().map(|n| n.rescued_shards).sum();
        }
        let core = self.core();
        let cache = core.cache_totals();
        stats.cache_hits = cache.hits;
        stats.cache_misses = cache.misses;
        stats.cache_insertions = cache.insertions;
        stats.cache_evictions = cache.evictions;
        stats.cache_invalidations = cache.invalidations;
        let views = core.views_totals();
        stats.view_hits = views.view_hits;
        stats.view_misses = views.view_misses;
        stats.view_patches = views.view_patches;
        stats.view_rebuilds = views.view_rebuilds;
        stats.materialized_views = views.materialized_views;
        stats.pinned_views = views.pinned_views;
        if let Some(plan) = ctxpref_faults::current() {
            let mut hits: Vec<(String, u64)> = plan.hit_counts().into_iter().collect();
            hits.sort();
            stats.fault_hits = hits;
        }
        stats
    }

    /// Whether mutations are logged to a durable directory (every node
    /// of a replicated service is durable).
    pub fn is_durable(&self) -> bool {
        self.durable.is_some() || self.cluster.is_some()
    }

    /// Whether mutations replicate across a primary/replica cluster.
    pub fn is_replicated(&self) -> bool {
        self.cluster.is_some()
    }

    /// The durable database behind mutations: the attached one, or the
    /// cluster's current primary when replicated.
    fn durable_db(&self) -> Option<Arc<DurableDb>> {
        match (&self.durable, &self.cluster) {
            (Some(d), _) => Some(Arc::clone(d)),
            (None, Some(c)) => c.primary_db(),
            (None, None) => None,
        }
    }

    /// Like [`Self::durable_db`], but distinguishes the two absent
    /// cases: a purely in-memory service is [`ServiceError::NotDurable`]
    /// (permanent), while a replicated cluster with no elected primary
    /// is [`ReplicationError::NoPrimary`] — a transient, retryable
    /// condition that maps to `not-primary` on the wire.
    fn durable_db_required(&self) -> Result<Arc<DurableDb>, ServiceError> {
        match (&self.durable, &self.cluster) {
            (Some(d), _) => Ok(Arc::clone(d)),
            (None, Some(c)) => c
                .primary_db()
                .ok_or(ServiceError::Replication(ReplicationError::NoPrimary)),
            (None, None) => Err(ServiceError::NotDurable),
        }
    }

    /// The replication cluster handle (partition scripting, manual
    /// crash/restart, direct status) — `None` without replication.
    pub fn cluster(&self) -> Option<&Arc<Cluster>> {
        self.cluster.as_ref()
    }

    /// The serving core, resolved through the swappable slot.
    fn core(&self) -> Arc<ShardedMultiUserDb> {
        Arc::clone(&self.db.read())
    }

    /// Re-point the serving slot at the cluster's current local node.
    /// A crash + restart of node 0 recovers into a *new* core instance;
    /// without this, reads would keep serving the orphaned pre-crash
    /// one forever. Called from every control-plane beat (manual and
    /// background).
    fn refresh_serving_view(&self) {
        let Some(cluster) = &self.cluster else { return };
        if let Some(local) = cluster.db_of(0) {
            refresh_serving_slot(&self.db, local.db());
        }
    }

    /// A point-in-time view of the cluster: roles, epochs, lag,
    /// promotion history.
    pub fn replication_status(&self) -> Result<ClusterStatus, ServiceError> {
        let c = self.cluster.as_ref().ok_or(ServiceError::NotReplicated)?;
        Ok(c.status())
    }

    /// Manually promote node `id` to primary (majority-guarded, with
    /// pre-serve catch-up — see the replication crate). Returns the
    /// minted epoch.
    pub fn promote(&self, id: NodeId) -> Result<u64, ServiceError> {
        let c = self.cluster.as_ref().ok_or(ServiceError::NotReplicated)?;
        Ok(c.promote(id)?)
    }

    /// One manual control-plane beat: ship pending records, probe the
    /// primary from every replica, fail over if it is declared dead.
    pub fn tick_replication(&self) -> Result<TickReport, ServiceError> {
        let c = self.cluster.as_ref().ok_or(ServiceError::NotReplicated)?;
        let report = c.tick();
        self.refresh_serving_view();
        Ok(report)
    }

    /// Ship every live replica as far as the primary's logs reach.
    pub fn pump_replication(&self) -> Result<bool, ServiceError> {
        let c = self.cluster.as_ref().ok_or(ServiceError::NotReplicated)?;
        let shipped = c.pump()?;
        self.refresh_serving_view();
        Ok(shipped)
    }

    /// Compare per-shard digests across the cluster and resync each
    /// divergent shard from the primary. Returns the resync count.
    pub fn anti_entropy(&self) -> Result<usize, ServiceError> {
        let c = self.cluster.as_ref().ok_or(ServiceError::NotReplicated)?;
        let resynced = c.anti_entropy()?;
        self.refresh_serving_view();
        Ok(resynced)
    }

    /// Install a hook fired when a node is promoted to primary.
    pub fn set_promotion_hook(&self, hook: RoleHook) -> Result<(), ServiceError> {
        let c = self.cluster.as_ref().ok_or(ServiceError::NotReplicated)?;
        c.set_promotion_hook(hook);
        Ok(())
    }

    /// Install a hook fired when an acting primary is demoted.
    pub fn set_demotion_hook(&self, hook: RoleHook) -> Result<(), ServiceError> {
        let c = self.cluster.as_ref().ok_or(ServiceError::NotReplicated)?;
        c.set_demotion_hook(hook);
        Ok(())
    }

    /// Requests currently queued or executing.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Acquire)
    }

    /// The admission controller's current pressure level: 0 admits
    /// everything, 1 sheds Maintenance, 2 sheds Bulk too. Interactive
    /// traffic is only ever refused by the hard in-flight backstop.
    pub fn admission_pressure(&self) -> u8 {
        self.admission.pressure()
    }

    /// Query `user` under `state` with the default deadline.
    pub fn query_state(
        &self,
        user: &str,
        state: &ContextState,
    ) -> Result<ServiceAnswer, ServiceError> {
        self.query_state_deadline(user, state, self.cfg.default_deadline)
    }

    /// Query `user` under `state`, failing with
    /// [`ServiceError::DeadlineExceeded`] if no answer is produced
    /// within `deadline`. Runs at [`Priority::Interactive`] — use
    /// [`Self::query_tiered`] to run at a sheddable tier.
    pub fn query_state_deadline(
        &self,
        user: &str,
        state: &ContextState,
        deadline: Duration,
    ) -> Result<ServiceAnswer, ServiceError> {
        self.query_tiered(user, state, deadline, Priority::Interactive)
    }

    /// Query `user` under `state` at `tier`, failing with
    /// [`ServiceError::DeadlineExceeded`] if no answer is produced
    /// within `deadline` and with the retryable
    /// [`ServiceError::Overloaded`] when admission sheds the tier.
    ///
    /// Two admission gates run in order. The CoDel-style sojourn
    /// controller sheds Maintenance (then Bulk) when queue dwell has
    /// exceeded the target for a sustained interval; Interactive
    /// passes it unconditionally. The hard `max_in_flight` backstop
    /// then bounds memory for every tier.
    pub fn query_tiered(
        &self,
        user: &str,
        state: &ContextState,
        deadline: Duration,
        tier: Priority,
    ) -> Result<ServiceAnswer, ServiceError> {
        self.submit(user, state, None, deadline, tier)
    }

    /// Top-k query for `user` under `state` with the default deadline
    /// at [`Priority::Interactive`]: served from a materialized view
    /// when one is current ([`LadderStep::View`]), early-terminating
    /// evaluation otherwise, with the same degradation ladder below.
    pub fn query_topk(
        &self,
        user: &str,
        state: &ContextState,
        k: usize,
    ) -> Result<ServiceAnswer, ServiceError> {
        self.query_topk_tiered(
            user,
            state,
            k,
            self.cfg.default_deadline,
            Priority::Interactive,
        )
    }

    /// Top-k query at an explicit deadline and tier — the same
    /// admission gates, deadline enforcement, and cancellation as
    /// [`Self::query_tiered`].
    pub fn query_topk_tiered(
        &self,
        user: &str,
        state: &ContextState,
        k: usize,
        deadline: Duration,
        tier: Priority,
    ) -> Result<ServiceAnswer, ServiceError> {
        self.submit(user, state, Some(k), deadline, tier)
    }

    fn submit(
        &self,
        user: &str,
        state: &ContextState,
        topk: Option<usize>,
        deadline: Duration,
        tier: Priority,
    ) -> Result<ServiceAnswer, ServiceError> {
        if self.shutting_down.load(Ordering::Acquire) {
            return Err(ServiceError::ShuttingDown);
        }
        // Sojourn-controller gate: shed low tiers while the queue has
        // been standing above target.
        if self.admission.sheds(tier) {
            record_shed(&self.counters, &self.counters.shed_sojourn, tier);
            return Err(ServiceError::Overloaded {
                limit: self.cfg.max_in_flight,
                retry_after: self.admission.retry_after(),
            });
        }
        // Hard backstop: reserve a slot or shed.
        if self.in_flight.fetch_add(1, Ordering::AcqRel) >= self.cfg.max_in_flight {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            record_shed(&self.counters, &self.counters.shed_admission, tier);
            return Err(ServiceError::Overloaded {
                limit: self.cfg.max_in_flight,
                retry_after: self.admission.retry_after(),
            });
        }
        let cancelled = Arc::new(AtomicBool::new(false));
        let (reply, response) = mpsc::sync_channel(1);
        let now = Instant::now();
        let job = Job {
            user: user.to_string(),
            state: state.clone(),
            topk,
            deadline: now + deadline,
            requested: deadline,
            tier,
            enqueued: now,
            cancelled: Arc::clone(&cancelled),
            reply,
        };
        let job_deadline = job.deadline;
        if let Some(sender) = &self.sender {
            if sender.send(job).is_err() {
                self.in_flight.fetch_sub(1, Ordering::AcqRel);
                return Err(ServiceError::ShuttingDown);
            }
        } else {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            return Err(ServiceError::ShuttingDown);
        }
        // Wait only the budget that remains: admission and enqueue
        // already consumed part of the requested deadline, and waiting
        // the full duration here would let the caller overstay the
        // instant the workers enforce.
        match response.recv_timeout(job_deadline.saturating_duration_since(Instant::now())) {
            Ok(result) => {
                self.record(&result);
                result
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Cancel: the worker drops the job (or its result) when
                // it notices; the in-flight slot frees then.
                cancelled.store(true, Ordering::Release);
                self.counters
                    .deadline_exceeded
                    .fetch_add(1, Ordering::Relaxed);
                Err(ServiceError::DeadlineExceeded { deadline })
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // The worker vanished mid-request (only possible if a
                // panic escaped the containment, which the chaos suite
                // asserts never happens) — still a typed error.
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
                Err(ServiceError::QueryPanicked {
                    message: "worker disconnected before replying".to_string(),
                })
            }
        }
    }

    fn record(&self, result: &Result<ServiceAnswer, ServiceError>) {
        match result {
            Ok(answer) => {
                let counter = match answer.step {
                    LadderStep::View => &self.counters.served_view,
                    LadderStep::Cached => &self.counters.served_cached,
                    LadderStep::Exact => &self.counters.served_exact,
                    LadderStep::NearestState => &self.counters.served_nearest,
                    LadderStep::DefaultAnswer => &self.counters.served_default,
                };
                counter.fetch_add(1, Ordering::Relaxed);
                let contained_panics = answer
                    .fallbacks
                    .iter()
                    .filter(|fb| fb.reason.starts_with("panic:"))
                    .count() as u64;
                if contained_panics > 0 {
                    self.counters
                        .panics_contained
                        .fetch_add(contained_panics, Ordering::Relaxed);
                }
            }
            Err(ServiceError::DeadlineExceeded { .. }) => {
                self.counters
                    .deadline_exceeded
                    .fetch_add(1, Ordering::Relaxed);
            }
            Err(ServiceError::QueryPanicked { .. }) => {
                self.counters
                    .panics_contained
                    .fetch_add(1, Ordering::Relaxed);
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Register a user with an empty profile. On a durable service the
    /// registration is logged before the core changes (as is every
    /// mutation below); on a replicated one it routes through the
    /// cluster's current primary, honouring the configured ack mode.
    pub fn add_user(&self, name: &str) -> Result<(), ServiceError> {
        let _guard = self.migrations.write_guard(name)?;
        if let Some(c) = &self.cluster {
            c.write(&WalOp::AddUser {
                user: name.to_string(),
            })
            .map_err(ServiceError::from)?;
            return Ok(());
        }
        match &self.durable {
            Some(d) => {
                d.add_user(name)?;
                Ok(())
            }
            None => Ok(self.core().add_user(name)?),
        }
    }

    /// Register a user with an initial profile.
    pub fn add_user_with_profile(&self, name: &str, profile: Profile) -> Result<(), ServiceError> {
        let _guard = self.migrations.write_guard(name)?;
        if let Some(c) = &self.cluster {
            c.write(&WalOp::AddUser {
                user: name.to_string(),
            })
            .map_err(ServiceError::from)?;
            for pref in profile.preferences() {
                c.write(&WalOp::InsertPreference {
                    user: name.to_string(),
                    pref: pref.clone(),
                })
                .map_err(ServiceError::from)?;
            }
            return Ok(());
        }
        match &self.durable {
            Some(d) => {
                d.add_user_with_profile(name, profile)?;
                Ok(())
            }
            None => Ok(self.core().add_user_with_profile(name, profile)?),
        }
    }

    /// Remove a user, returning their profile.
    pub fn remove_user(&self, name: &str) -> Result<Profile, ServiceError> {
        let _guard = self.migrations.write_guard(name)?;
        if let Some(c) = &self.cluster {
            // Read the profile off the primary (the authoritative copy)
            // before logging the removal.
            let primary = c.primary_db().ok_or(ReplicationError::NoPrimary)?;
            let profile = primary.db().profile(name)?;
            c.write(&WalOp::RemoveUser {
                user: name.to_string(),
            })
            .map_err(ServiceError::from)?;
            return Ok(profile);
        }
        match &self.durable {
            Some(d) => {
                let (_ack, profile) = d.remove_user(name)?;
                Ok(profile)
            }
            None => Ok(self.core().remove_user(name)?),
        }
    }

    /// Insert a preference for one user (write-locks only their shard).
    pub fn insert_preference(
        &self,
        user: &str,
        pref: ContextualPreference,
    ) -> Result<(), ServiceError> {
        let _guard = self.migrations.write_guard(user)?;
        if let Some(c) = &self.cluster {
            c.write(&WalOp::InsertPreference {
                user: user.to_string(),
                pref,
            })
            .map_err(ServiceError::from)?;
            return Ok(());
        }
        match &self.durable {
            Some(d) => {
                d.insert_preference(user, pref)?;
                Ok(())
            }
            None => Ok(self.core().insert_preference(user, pref)?),
        }
    }

    /// Insert an equality preference for one user from its textual
    /// parts.
    pub fn insert_preference_eq(
        &self,
        user: &str,
        descriptor: &str,
        attr: &str,
        value: ctxpref_relation::Value,
        score: f64,
    ) -> Result<(), ServiceError> {
        let _guard = self.migrations.write_guard(user)?;
        if self.cluster.is_some() || self.durable.is_some() {
            let pref = self.build_eq_preference(descriptor, attr, value, score)?;
            return self.insert_preference(user, pref);
        }
        Ok(self
            .core()
            .insert_preference_eq(user, descriptor, attr, value, score)?)
    }

    /// Insert several equality preferences for one user under a single
    /// migration write guard — the batched-mutation verb behind the
    /// wire protocol's batch frames. Items apply in order and the
    /// batch stops at the first failure: the error reports how many
    /// items landed, so a caller can resume after the prefix instead
    /// of replaying (and double-applying) it.
    ///
    /// Each item is `(descriptor, attr, value, score)` in the same
    /// textual form [`Self::insert_preference_eq`] takes.
    pub fn insert_preferences_eq_bulk(
        &self,
        user: &str,
        items: &[(&str, &str, &str, f64)],
    ) -> Result<usize, BulkError> {
        let _guard = self
            .migrations
            .write_guard(user)
            .map_err(|error| BulkError { applied: 0, error })?;
        let mut applied = 0;
        for (descriptor, attr, value, score) in items {
            let one: Result<(), ServiceError> = (|| {
                if let Some(c) = &self.cluster {
                    let pref =
                        self.build_eq_preference(descriptor, attr, (*value).into(), *score)?;
                    c.write(&WalOp::InsertPreference {
                        user: user.to_string(),
                        pref,
                    })
                    .map_err(ServiceError::from)?;
                    return Ok(());
                }
                match &self.durable {
                    Some(d) => {
                        let pref =
                            self.build_eq_preference(descriptor, attr, (*value).into(), *score)?;
                        d.insert_preference(user, pref)?;
                        Ok(())
                    }
                    None => Ok(self.core().insert_preference_eq(
                        user,
                        descriptor,
                        attr,
                        (*value).into(),
                        *score,
                    )?),
                }
            })();
            match one {
                Ok(()) => applied += 1,
                Err(error) => return Err(BulkError { applied, error }),
            }
        }
        Ok(applied)
    }

    /// Remove one user's preference by index.
    pub fn remove_preference(
        &self,
        user: &str,
        index: usize,
    ) -> Result<ContextualPreference, ServiceError> {
        let _guard = self.migrations.write_guard(user)?;
        if let Some(c) = &self.cluster {
            let primary = c.primary_db().ok_or(ReplicationError::NoPrimary)?;
            let pref = primary
                .db()
                .profile(user)?
                .preferences()
                .get(index)
                .cloned();
            // An out-of-range index fails inside the write (nothing is
            // logged), so a successful write implies `pref` was read.
            c.write(&WalOp::RemovePreference {
                user: user.to_string(),
                index,
            })
            .map_err(ServiceError::from)?;
            return pref.ok_or(ServiceError::Core(CoreError::NoSuchPreference(index)));
        }
        match &self.durable {
            Some(d) => {
                let (_ack, pref) = d.remove_preference(user, index)?;
                Ok(pref)
            }
            None => Ok(self.core().remove_preference(user, index)?),
        }
    }

    /// Update the score of one user's preference by index.
    pub fn update_preference_score(
        &self,
        user: &str,
        index: usize,
        score: f64,
    ) -> Result<(), ServiceError> {
        let _guard = self.migrations.write_guard(user)?;
        if let Some(c) = &self.cluster {
            c.write(&WalOp::UpdateScore {
                user: user.to_string(),
                index,
                score,
            })
            .map_err(ServiceError::from)?;
            return Ok(());
        }
        match &self.durable {
            Some(d) => {
                d.update_preference_score(user, index, score)?;
                Ok(())
            }
            None => Ok(self.core().update_preference_score(user, index, score)?),
        }
    }

    /// Route one operation through whichever write path this service
    /// runs (replicated → durable → plain), with **no** migration
    /// fence check: this is the internal path migration itself uses to
    /// build and tear down per-user state while the fence holds.
    fn write_op(&self, op: &WalOp) -> Result<(), ServiceError> {
        if let Some(c) = &self.cluster {
            c.write(op).map_err(ServiceError::from)?;
            return Ok(());
        }
        match &self.durable {
            Some(d) => {
                d.apply(op)?;
                Ok(())
            }
            None => Ok(op.apply_sharded(&self.core())?),
        }
    }

    /// A consistent per-user export for the migration driver: whether
    /// the user exists, their WAL shard, the shard's last applied LSN
    /// at the cut, and an FNV digest of the profile at the cut. Taken
    /// under the user's shard mutex, so the digest and the LSN agree
    /// exactly. Requires durability (migration replays the WAL).
    pub fn migrate_export(&self, user: &str) -> Result<UserExport, ServiceError> {
        let d = self.durable_db_required()?;
        let cut = d.user_cut(user);
        let core = d.db();
        let digest = cut
            .profile
            .as_ref()
            .map(|p| ctxpref_replication::user_digest(core.env(), core.relation(), user, p))
            .unwrap_or(0);
        Ok(UserExport {
            present: cut.profile.is_some(),
            shard: cut.shard as u64,
            last_lsn: cut.last_lsn,
            digest,
        })
    }

    /// Snapshot one user for migration: a consistent cut's LSN plus
    /// the WAL-op payloads (`add` + one `ins` per preference) that
    /// reconstruct the profile on the destination. The WAL suffix of
    /// the user's shard strictly after the returned LSN is exactly
    /// what the snapshot misses.
    pub fn migrate_snapshot(&self, user: &str) -> Result<(u64, Vec<Vec<u8>>), ServiceError> {
        let d = self.durable_db_required()?;
        let cut = d.user_cut(user);
        let profile = cut
            .profile
            .ok_or_else(|| ServiceError::Core(CoreError::NoSuchUser(user.to_string())))?;
        let core = d.db();
        let ops = ctxpref_replication::snapshot_ops(core.env(), core.relation(), user, &profile);
        Ok((cut.last_lsn, ops))
    }

    /// One page of the user's WAL suffix for migration catch-up:
    /// records of the user's shard with LSN ≥ `from_lsn`, filtered to
    /// the migrating user, plus the highest LSN scanned. `Ok(None)`
    /// means the suffix was garbage-collected into a checkpoint — the
    /// driver must restart from a fresh snapshot. Because replicas
    /// mirror the primary's per-shard LSN sequence, the cursor stays
    /// valid across a failover of this cluster.
    pub fn migrate_pull(
        &self,
        user: &str,
        from_lsn: u64,
        max: usize,
    ) -> Result<Option<ctxpref_replication::UserSuffix>, ServiceError> {
        let d = self.durable_db_required()?;
        let shard = d.db().shard_of(user);
        ctxpref_replication::user_suffix(&d, user, shard, from_lsn, max).map_err(ServiceError::from)
    }

    /// Fence `user` for cut-over at routing epoch `epoch`: client
    /// writes for that one user are refused with the typed, retry-able
    /// [`ServiceError::Migrating`] until the migration finishes or
    /// aborts. Reads keep serving. Idempotent per epoch; an older
    /// epoch is refused with [`ServiceError::StaleMigration`].
    pub fn migrate_fence(&self, user: &str, epoch: u64) -> Result<(), ServiceError> {
        self.migrations.fence(user, epoch)
    }

    /// Destination side: begin importing `user` at `epoch`. Drops any
    /// existing copy of the user (a previous attempt's partial state),
    /// applies the snapshot ops through the normal write path, and
    /// sets the catch-up watermark to the snapshot's cut LSN. Client
    /// writes for the user are refused until [`Self::migrate_activate`].
    pub fn migrate_import(
        &self,
        user: &str,
        epoch: u64,
        src_lsn: u64,
        ops: &[Vec<u8>],
    ) -> Result<(), ServiceError> {
        self.migrations.begin_import(user, epoch, src_lsn)?;
        // Reset: a partial previous attempt may have left the user
        // behind. The import entry already blocks client writes, so
        // nothing acked can be deleted here.
        match self.write_op(&WalOp::RemoveUser {
            user: user.to_string(),
        }) {
            Ok(()) | Err(ServiceError::Core(_)) => {}
            Err(other) => return Err(other),
        }
        let core = self.core();
        for payload in ops {
            let op = WalOp::decode(payload, core.env(), core.relation())?;
            self.write_op(&op)?;
        }
        Ok(())
    }

    /// Destination side: apply one page of catch-up records. Records
    /// at or below the import watermark are dropped (a retried page —
    /// the ops themselves are not idempotent, the watermark makes the
    /// page so); the watermark then advances to `through`. Returns the
    /// new watermark.
    pub fn migrate_apply(
        &self,
        user: &str,
        epoch: u64,
        through: u64,
        records: &[(u64, Vec<u8>)],
    ) -> Result<u64, ServiceError> {
        let mut watermark = self.migrations.import_watermark(user, epoch)?;
        let core = self.core();
        for (lsn, payload) in records {
            if *lsn <= watermark {
                continue;
            }
            let op = WalOp::decode(payload, core.env(), core.relation())?;
            if op.user() != user {
                // The source filters by user; anything else is damage.
                return Err(ServiceError::Wal(ctxpref_wal::WalError::Payload {
                    reason: format!("catch-up record for {:?} during {user:?}", op.user()),
                }));
            }
            self.write_op(&op)?;
            watermark = *lsn;
            self.migrations.advance_watermark(user, epoch, watermark);
        }
        if through > watermark {
            watermark = through;
            self.migrations.advance_watermark(user, epoch, watermark);
        }
        Ok(watermark)
    }

    /// Destination side: the routing table flipped — drop the import
    /// entry so client writes for `user` flow here. Idempotent.
    pub fn migrate_activate(&self, user: &str, epoch: u64) -> Result<(), ServiceError> {
        self.migrations.activate(user, epoch)
    }

    /// Source side: the cut-over completed — remove the user's data
    /// (still under the fence, so no write can fork it) and leave a
    /// `Moved` tombstone telling stale clients to refresh their
    /// routing. Idempotent per epoch.
    pub fn migrate_finish(&self, user: &str, epoch: u64) -> Result<(), ServiceError> {
        match self.migrations.phase_of(user, epoch)? {
            crate::migrate::MigrationPhase::Moved => return Ok(()),
            crate::migrate::MigrationPhase::Fenced => {}
            crate::migrate::MigrationPhase::Importing { .. } => {
                return Err(ServiceError::StaleMigration { current: epoch })
            }
        }
        match self.write_op(&WalOp::RemoveUser {
            user: user.to_string(),
        }) {
            Ok(()) | Err(ServiceError::Core(_)) => {}
            Err(other) => return Err(other),
        }
        self.migrations.finish(user, epoch).map(|_| ())
    }

    /// Abort `epoch`'s migration of `user` on this side: a source
    /// fence lifts (writes flow again), a destination import drops the
    /// partial copy. A newer migration's entry, a completed move, or
    /// no entry at all make this a no-op — abort never touches state
    /// it does not own.
    pub fn migrate_abort(&self, user: &str, epoch: u64) -> Result<(), ServiceError> {
        if self.migrations.is_import(user, epoch) {
            // Drop the partial copy while the entry still blocks
            // client writes, so nothing acked can slip in and then be
            // deleted with it.
            match self.write_op(&WalOp::RemoveUser {
                user: user.to_string(),
            }) {
                Ok(()) | Err(ServiceError::Core(_)) => {}
                Err(other) => return Err(other),
            }
        }
        self.migrations.abort(user, epoch);
        Ok(())
    }

    /// The migration table: every live fence, import, and tombstone.
    pub fn migration_entries(&self) -> Vec<(String, MigrationEntry)> {
        self.migrations.snapshot()
    }

    /// What a router needs from one probe: whether a primary serves
    /// writes, the replication epoch, and how much state lives here.
    pub fn route_info(&self) -> RouteInfo {
        let (has_primary, epoch) = match &self.cluster {
            Some(c) => {
                let s = c.status();
                (s.primary.is_some(), s.epoch)
            }
            None => (true, 0),
        };
        RouteInfo {
            has_primary,
            epoch,
            users: self.core().user_count() as u64,
            migrations: self.migrations.len() as u64,
        }
    }

    /// Validate an equality preference's textual parts against the live
    /// environment and schema (mirrors the core's
    /// `insert_preference_eq`, but builds the value so it can be logged
    /// before it is applied).
    fn build_eq_preference(
        &self,
        descriptor: &str,
        attr: &str,
        value: ctxpref_relation::Value,
        score: f64,
    ) -> Result<ContextualPreference, CoreError> {
        let core = self.core();
        let cod = parse_descriptor(core.env(), descriptor)?;
        let clause = AttributeClause::new(
            core.relation().schema().require_attr(attr)?,
            CompareOp::Eq,
            value,
        );
        Ok(ContextualPreference::new(cod, clause, score)?)
    }

    /// Take a checkpoint now: snapshot the database next to the log,
    /// rotate the per-shard segments, atomically swap the manifest, and
    /// garbage-collect old generations. Fails with
    /// [`ServiceError::NotDurable`] on a non-durable service.
    pub fn checkpoint(&self) -> Result<CheckpointReport, ServiceError> {
        let durable = self.durable_db_required()?;
        let report = durable.checkpoint()?;
        self.counters.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(report)
    }

    /// Run one scrub pass now: verify every sealed WAL segment and the
    /// checkpoint snapshot at rest, quarantine what fails its checksum,
    /// and heal the directory with a fresh checkpoint. On a replicated
    /// service every **live** node is scrubbed (crashed nodes are
    /// skipped — quarantine-aware recovery covers them at restart) and
    /// the per-node reports are merged. Never blocks the append path.
    pub fn scrub(&self) -> Result<ScrubReport, ServiceError> {
        if let Some(c) = &self.cluster {
            let c = Arc::clone(c);
            let mut merged = ScrubReport::default();
            for id in 0..c.config().nodes {
                match c.scrub_node(id) {
                    Ok(report) => {
                        record_scrub(&self.counters, &report);
                        merged.segments_verified += report.segments_verified;
                        merged.checkpoints_verified += report.checkpoints_verified;
                        merged.read_errors += report.read_errors;
                        merged.quarantined.extend(report.quarantined);
                        merged.healed |= report.healed;
                    }
                    Err(ReplicationError::NodeDown { .. }) => {}
                    Err(e) => return Err(e.into()),
                }
            }
            return Ok(merged);
        }
        let durable = self.durable_db_required()?;
        let report = durable.scrub()?;
        record_scrub(&self.counters, &report);
        Ok(report)
    }

    /// The self-healing storage counters — scrub passes, quarantined
    /// files, heals, rescues, disk-full sheds — without running a pass.
    /// Fails with [`ServiceError::NotDurable`] on a non-durable
    /// service (there is nothing at rest to scrub).
    pub fn scrub_status(&self) -> Result<ScrubStatus, ServiceError> {
        if !self.is_durable() {
            return Err(ServiceError::NotDurable);
        }
        let stats = self.stats();
        Ok(ScrubStatus {
            passes: stats.scrub_passes,
            quarantined: stats.scrub_quarantined,
            read_errors: stats.scrub_read_errors,
            heals: stats.scrub_heals,
            rescued_shards: stats.rescued_shards,
            disk_full_sheds: stats.wal_disk_full_sheds,
            rotate_failures: stats.wal_rotate_failures,
        })
    }

    /// Fsync all pending group-commit WAL records, returning how many
    /// became durable.
    pub fn flush_wal(&self) -> Result<u64, ServiceError> {
        let durable = self.durable_db_required()?;
        Ok(durable.flush()?)
    }

    /// Per-shard WAL positions plus append/batch/rotation totals (the
    /// primary's, on a replicated service).
    pub fn wal_status(&self) -> Result<WalStatus, ServiceError> {
        let durable = self.durable_db_required()?;
        Ok(durable.wal_status())
    }

    /// One user's query-cache statistics.
    pub fn cache_stats(&self, user: &str) -> Result<Option<CacheStats>, ServiceError> {
        Ok(self.core().cache_stats(user)?)
    }

    /// One user's view-serving counters.
    pub fn view_stats(&self, user: &str) -> Result<ctxpref_views::ViewStats, ServiceError> {
        Ok(self.core().view_stats(user)?)
    }

    /// Register and pin a materialized top-k view of `(user, state)`:
    /// materialized on first use, never evicted, rebuilt lazily after
    /// recovery (view contents are derived data and are never trusted
    /// across a WAL replay).
    pub fn pin_view(&self, user: &str, state: &ContextState) -> Result<(), ServiceError> {
        Ok(self.core().pin_view(user, state)?)
    }

    /// Unpin a previously pinned view; returns whether it was pinned.
    pub fn unpin_view(&self, user: &str, state: &ContextState) -> Result<bool, ServiceError> {
        Ok(self.core().unpin_view(user, state)?)
    }

    /// A human-readable view-catalog report: aggregate counters first,
    /// then one line per user with materialized views (their pinned
    /// states listed). Served by the `views-status` wire verb.
    pub fn views_status(&self) -> String {
        let core = self.core();
        let totals = core.views_totals();
        let mut body = format!(
            "views materialized={} pinned={} hits={} misses={} patches={} rebuilds={}\n",
            totals.materialized_views,
            totals.pinned_views,
            totals.view_hits,
            totals.view_misses,
            totals.view_patches,
            totals.view_rebuilds,
        );
        for user in core.users_sorted() {
            let Ok(s) = core.view_stats(&user) else {
                continue;
            };
            if s.materialized_views == 0 && s.pinned_views == 0 {
                continue;
            }
            let pinned: Vec<String> = core
                .pinned_views(&user)
                .unwrap_or_default()
                .iter()
                .map(|st| st.display(core.env()).to_string())
                .collect();
            body.push_str(&format!(
                "user {user} materialized={} pinned={} hits={} patches={} rebuilds={}{}{}\n",
                s.materialized_views,
                s.pinned_views,
                s.view_hits,
                s.view_patches,
                s.view_rebuilds,
                if pinned.is_empty() { "" } else { " states=" },
                pinned.join(";"),
            ));
        }
        body
    }

    /// Replace the query options used by every query on the database.
    pub fn set_query_defaults(&self, options: ctxpref_core::QueryOptions) {
        self.core().set_query_defaults(options);
    }

    /// Read access to the underlying sharded database (for inspection;
    /// queries should go through [`Self::query_state`] to get fault
    /// tolerance). The closure takes no lock itself — accessor methods
    /// on the core lock individual shards as needed.
    pub fn with_db<R>(&self, f: impl FnOnce(&ShardedMultiUserDb) -> R) -> R {
        f(&self.core())
    }

    /// Snapshot the database to `path`: an atomic, checksummed write,
    /// with transient I/O failures retried per the retry policy (capped
    /// by the storage deadline). The snapshot is taken shard by shard
    /// before any I/O starts, so the save never holds a shard lock
    /// across disk writes and queries proceed during the save.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ServiceError> {
        let snapshot = self.core().snapshot();
        retry_storage(
            &self.cfg.retry,
            self.cfg.storage_deadline,
            &self.counters,
            || ctxpref_storage::save_multi_user(&path, &snapshot),
        )
    }

    /// Stop accepting requests, drain the workers, and return the
    /// database.
    pub fn shutdown(mut self) -> MultiUserDb {
        self.stop();
        let slot = Arc::clone(&self.db);
        drop(self);
        // The workers and maintenance threads are joined, so the slot
        // and the core inside it both have exactly one owner left.
        match Arc::try_unwrap(slot).map(RwLock::into_inner) {
            Ok(db) => match Arc::try_unwrap(db) {
                Ok(sharded) => sharded.into_db(),
                // A caller still holds a clone-derived reference
                // (cannot happen through the public API).
                Err(_arc) => unreachable!("shutdown consumes the only core handle"),
            },
            Err(_slot) => unreachable!("shutdown consumes the only service handle"),
        }
    }

    fn stop(&mut self) {
        self.shutting_down.store(true, Ordering::Release);
        // Maintenance first: dropping a stop sender disconnects that
        // thread's recv_timeout loop.
        for (stop, handle) in self.maintenance.drain(..) {
            drop(stop);
            let _ = handle.join();
        }
        if let Some(d) = &self.durable {
            // Best-effort: make pending group-commit records durable on
            // a clean shutdown.
            let _ = d.flush();
        }
        self.sender.take(); // closing the channel stops the workers
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Released last so shutdown()'s Arc::try_unwrap on the database
        // sees the service as the sole owner. Dropping the cluster
        // releases every node's directory lock and core handle (the
        // tick thread's clone was joined with the maintenance drain).
        self.durable = None;
        self.cluster = None;
    }
}

impl Drop for CtxPrefService {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Point `slot` at `fresh` when it holds a different core instance
/// (pointer identity — content equality is irrelevant, the slot must
/// track the cluster's live object).
fn refresh_serving_slot(slot: &RwLock<Arc<ShardedMultiUserDb>>, fresh: &Arc<ShardedMultiUserDb>) {
    if !Arc::ptr_eq(&slot.read(), fresh) {
        *slot.write() = Arc::clone(fresh);
    }
}

fn worker_loop(
    slot: &RwLock<Arc<ShardedMultiUserDb>>,
    counters: &Counters,
    admission: &Admission,
    in_flight: &Arc<AtomicUsize>,
    receiver: &Mutex<mpsc::Receiver<Job>>,
) {
    loop {
        // Hold the receiver lock only while picking up a job.
        let job = { receiver.lock().recv() };
        let Ok(job) = job else { return };
        // Resolve the serving core per job: the slot is re-pointed when
        // a replicated service's local node recovers from a crash.
        let db = Arc::clone(&slot.read());
        let _slot = InFlightGuard(Arc::clone(in_flight));
        // Feed the admission controller the job's queue dwell — the
        // signal the sojourn shedder runs on.
        admission.observe(job.enqueued.elapsed());
        if job.cancelled.load(Ordering::Acquire) {
            counters.cancelled.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        if Instant::now() >= job.deadline {
            // Expired while queued: counted and dropped, never
            // executed — dead work would only deepen the overload.
            counters.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            record_shed(counters, &counters.shed_expired, job.tier);
            let _ = job.reply.try_send(Err(ServiceError::DeadlineExceeded {
                deadline: job.requested,
            }));
            continue;
        }
        // Fault site: an injected delay stalls the pool here, growing
        // queue sojourn deterministically for the overload tests and
        // standing in for per-job service time in the storm bench.
        // Deliberately AFTER the cancel/expiry drops: dropping dead
        // work is free; only work that will execute pays.
        let _ = ctxpref_faults::hit(ctxpref_faults::sites::SVC_WORKER_DEQUEUE);
        // Outer containment: nothing may unwind out of a request, even
        // a bug outside the per-rung guards.
        let result = catch_unwind(AssertUnwindSafe(|| {
            // Acquire only the user's shard, and account the wait: the
            // time to get the lock is the serving core's contention.
            let lock_started = Instant::now();
            let shard = db.read_user_shard(&job.user);
            let waited = lock_started.elapsed();
            counters
                .lock_wait_micros
                .fetch_add(waited.as_micros() as u64, Ordering::Relaxed);
            // Re-check the deadline now that the lock is held: a
            // contended acquisition may have consumed the whole budget,
            // and running the ladder for a caller that already timed
            // out would only waste the shard's read capacity.
            if Instant::now() >= job.deadline {
                counters.deadline_after_lock.fetch_add(1, Ordering::Relaxed);
                counters.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::DeadlineExceeded {
                    deadline: job.requested,
                });
            }
            match job.topk {
                Some(k) => run_ladder_topk(
                    &shard,
                    &job.user,
                    &job.state,
                    k,
                    job.deadline,
                    job.requested,
                ),
                None => run_ladder(&shard, &job.user, &job.state, job.deadline, job.requested),
            }
        }))
        .unwrap_or_else(|payload| {
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Err(ServiceError::QueryPanicked { message })
        });
        let _ = job.reply.try_send(result);
    }
}

/// Run `op` up to `policy.max_attempts` times, sleeping
/// `base_backoff · 2ⁿ⁻¹` between attempts, but never sleeping past
/// `deadline` (measured from entry): when the next backoff would cross
/// it, give up with [`ServiceError::DeadlineExceeded`] instead. Only
/// I/O errors are considered transient; parse/model/corruption errors
/// fail immediately.
fn retry_storage<T>(
    policy: &RetryPolicy,
    deadline: Duration,
    counters: &Counters,
    mut op: impl FnMut() -> Result<T, StorageError>,
) -> Result<T, ServiceError> {
    let started = Instant::now();
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        match op() {
            Ok(v) => return Ok(v),
            Err(StorageError::Io(_)) if attempt < policy.max_attempts => {
                let backoff = policy.base_backoff * 2u32.pow(attempt - 1);
                if started.elapsed() + backoff >= deadline {
                    counters.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                    return Err(ServiceError::DeadlineExceeded { deadline });
                }
                counters.storage_retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(backoff);
            }
            Err(e) => return Err(ServiceError::Storage(e)),
        }
    }
}
