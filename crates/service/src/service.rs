use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ctxpref_context::ContextState;
use ctxpref_core::{MultiUserDb, ShardedMultiUserDb};
use ctxpref_profile::{ContextualPreference, Profile};
use ctxpref_qcache::CacheStats;
use ctxpref_storage::StorageError;
use parking_lot::Mutex;

use crate::error::ServiceError;
use crate::ladder::{run_ladder, LadderStep, ServiceAnswer};
use crate::stats::{Counters, ServiceStats};

/// Bounded retry with exponential backoff for storage I/O.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retry).
    pub max_attempts: u32,
    /// Sleep before attempt `n+1` is `base_backoff · 2ⁿ⁻¹`.
    pub base_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 3, base_backoff: Duration::from_millis(2) }
    }
}

/// Configuration of [`CtxPrefService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads executing queries.
    pub workers: usize,
    /// Admission-control limit on queued + executing requests; further
    /// requests are shed with [`ServiceError::Overloaded`].
    pub max_in_flight: usize,
    /// Deadline applied by [`CtxPrefService::query_state`].
    pub default_deadline: Duration,
    /// Retry policy for storage I/O.
    pub retry: RetryPolicy,
    /// Stripes of the sharded serving core (users are hashed onto
    /// shards; mutations lock only their shard).
    pub shards: usize,
    /// Cap on a whole storage operation including retry backoff: when
    /// the *next* backoff sleep would cross this deadline, the retry
    /// loop gives up with [`ServiceError::DeadlineExceeded`] instead of
    /// sleeping past it.
    pub storage_deadline: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_in_flight: 64,
            default_deadline: Duration::from_millis(250),
            retry: RetryPolicy::default(),
            shards: ctxpref_core::DEFAULT_SHARDS,
            storage_deadline: Duration::from_secs(2),
        }
    }
}

struct Job {
    user: String,
    state: ContextState,
    deadline: Instant,
    requested: Duration,
    cancelled: Arc<AtomicBool>,
    reply: mpsc::SyncSender<Result<ServiceAnswer, ServiceError>>,
}

/// Decrements the in-flight counter when a request leaves the system,
/// whatever the path out.
struct InFlightGuard(Arc<AtomicUsize>);

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The fault-tolerant serving layer over a sharded multi-user core.
///
/// Requests run on a fixed pool of worker threads behind a
/// request/response API:
///
/// * **Deadlines & cancellation** — every query carries a deadline; the
///   caller gets [`ServiceError::DeadlineExceeded`] at the deadline even
///   if the worker is still grinding, and the worker observes the
///   cancellation and stops between ladder rungs.
/// * **Panic isolation** — each query runs under `catch_unwind`; a panic
///   (real or injected) is contained and surfaces as
///   [`ServiceError::QueryPanicked`] or a recorded ladder fallback,
///   never as a crash. The locks are `parking_lot` locks precisely so a
///   contained panic cannot poison shared state.
/// * **Admission control** — at most `max_in_flight` requests are
///   queued or executing; excess load is shed immediately with
///   [`ServiceError::Overloaded`].
/// * **Degradation ladder** — see [`crate::ladder`]: cached → exact →
///   nearest-state → non-contextual default, every fallback recorded.
/// * **Retrying storage** — [`Self::save`] and [`Self::open`] retry
///   transient I/O failures with exponential backoff capped by the
///   configured storage deadline; writes are atomic and checksummed
///   (see `ctxpref-storage`).
/// * **Sharded core** — the database is a [`ShardedMultiUserDb`]: user
///   slots are striped over per-shard `RwLock`s, so one user's profile
///   edit (or a long snapshot) never blocks queries for users on other
///   shards, and a worker acquires exactly the one shard its request
///   needs.
pub struct CtxPrefService {
    db: Arc<ShardedMultiUserDb>,
    cfg: ServiceConfig,
    counters: Arc<Counters>,
    in_flight: Arc<AtomicUsize>,
    shutting_down: Arc<AtomicBool>,
    sender: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for CtxPrefService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CtxPrefService")
            .field("workers", &self.workers.len())
            .field("in_flight", &self.in_flight.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl CtxPrefService {
    /// Serve `db` with `cfg`, sharding it over `cfg.shards` stripes.
    pub fn new(db: MultiUserDb, cfg: ServiceConfig) -> Self {
        Self::new_sharded(ShardedMultiUserDb::from_db(db, cfg.shards), cfg)
    }

    /// Serve an already-sharded core with `cfg` (`cfg.shards` is
    /// ignored; the core keeps its stripe count).
    pub fn new_sharded(db: ShardedMultiUserDb, cfg: ServiceConfig) -> Self {
        let db = Arc::new(db);
        let counters = Arc::new(Counters::default());
        let in_flight = Arc::new(AtomicUsize::new(0));
        let shutting_down = Arc::new(AtomicBool::new(false));
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let db = Arc::clone(&db);
                let counters = Arc::clone(&counters);
                let in_flight = Arc::clone(&in_flight);
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("ctxpref-worker-{i}"))
                    .spawn(move || worker_loop(&db, &counters, &in_flight, &receiver))
                    .expect("spawning a worker thread")
            })
            .collect();
        Self {
            db,
            cfg,
            counters,
            in_flight,
            shutting_down,
            sender: Some(sender),
            workers,
        }
    }

    /// Load a multi-user database from `path` (retrying transient I/O
    /// per the retry policy) and serve it.
    pub fn open(path: impl AsRef<Path>, cfg: ServiceConfig) -> Result<Self, ServiceError> {
        let counters = Counters::default();
        let db = retry_storage(&cfg.retry, cfg.storage_deadline, &counters, || {
            ctxpref_storage::load_multi_user(&path)
        })?;
        let service = Self::new(db, cfg);
        service
            .counters
            .storage_retries
            .fetch_add(counters.storage_retries.load(Ordering::Relaxed), Ordering::Relaxed);
        Ok(service)
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        self.counters.snapshot()
    }

    /// Requests currently queued or executing.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Acquire)
    }

    /// Query `user` under `state` with the default deadline.
    pub fn query_state(
        &self,
        user: &str,
        state: &ContextState,
    ) -> Result<ServiceAnswer, ServiceError> {
        self.query_state_deadline(user, state, self.cfg.default_deadline)
    }

    /// Query `user` under `state`, failing with
    /// [`ServiceError::DeadlineExceeded`] if no answer is produced
    /// within `deadline`.
    pub fn query_state_deadline(
        &self,
        user: &str,
        state: &ContextState,
        deadline: Duration,
    ) -> Result<ServiceAnswer, ServiceError> {
        if self.shutting_down.load(Ordering::Acquire) {
            return Err(ServiceError::ShuttingDown);
        }
        // Admission control: reserve a slot or shed.
        if self.in_flight.fetch_add(1, Ordering::AcqRel) >= self.cfg.max_in_flight {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            self.counters.shed.fetch_add(1, Ordering::Relaxed);
            return Err(ServiceError::Overloaded { limit: self.cfg.max_in_flight });
        }
        let cancelled = Arc::new(AtomicBool::new(false));
        let (reply, response) = mpsc::sync_channel(1);
        let job = Job {
            user: user.to_string(),
            state: state.clone(),
            deadline: Instant::now() + deadline,
            requested: deadline,
            cancelled: Arc::clone(&cancelled),
            reply,
        };
        if let Some(sender) = &self.sender {
            if sender.send(job).is_err() {
                self.in_flight.fetch_sub(1, Ordering::AcqRel);
                return Err(ServiceError::ShuttingDown);
            }
        } else {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            return Err(ServiceError::ShuttingDown);
        }
        match response.recv_timeout(deadline) {
            Ok(result) => {
                self.record(&result);
                result
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Cancel: the worker drops the job (or its result) when
                // it notices; the in-flight slot frees then.
                cancelled.store(true, Ordering::Release);
                self.counters.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                Err(ServiceError::DeadlineExceeded { deadline })
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // The worker vanished mid-request (only possible if a
                // panic escaped the containment, which the chaos suite
                // asserts never happens) — still a typed error.
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
                Err(ServiceError::QueryPanicked {
                    message: "worker disconnected before replying".to_string(),
                })
            }
        }
    }

    fn record(&self, result: &Result<ServiceAnswer, ServiceError>) {
        match result {
            Ok(answer) => {
                let counter = match answer.step {
                    LadderStep::Cached => &self.counters.served_cached,
                    LadderStep::Exact => &self.counters.served_exact,
                    LadderStep::NearestState => &self.counters.served_nearest,
                    LadderStep::DefaultAnswer => &self.counters.served_default,
                };
                counter.fetch_add(1, Ordering::Relaxed);
                let contained_panics = answer
                    .fallbacks
                    .iter()
                    .filter(|fb| fb.reason.starts_with("panic:"))
                    .count() as u64;
                if contained_panics > 0 {
                    self.counters.panics_contained.fetch_add(contained_panics, Ordering::Relaxed);
                }
            }
            Err(ServiceError::DeadlineExceeded { .. }) => {
                self.counters.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            }
            Err(ServiceError::QueryPanicked { .. }) => {
                self.counters.panics_contained.fetch_add(1, Ordering::Relaxed);
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Register a user with an empty profile.
    pub fn add_user(&self, name: &str) -> Result<(), ServiceError> {
        Ok(self.db.add_user(name)?)
    }

    /// Register a user with an initial profile.
    pub fn add_user_with_profile(&self, name: &str, profile: Profile) -> Result<(), ServiceError> {
        Ok(self.db.add_user_with_profile(name, profile)?)
    }

    /// Remove a user, returning their profile.
    pub fn remove_user(&self, name: &str) -> Result<Profile, ServiceError> {
        Ok(self.db.remove_user(name)?)
    }

    /// Insert a preference for one user (write-locks only their shard).
    pub fn insert_preference(
        &self,
        user: &str,
        pref: ContextualPreference,
    ) -> Result<(), ServiceError> {
        Ok(self.db.insert_preference(user, pref)?)
    }

    /// Insert an equality preference for one user from its textual
    /// parts.
    pub fn insert_preference_eq(
        &self,
        user: &str,
        descriptor: &str,
        attr: &str,
        value: ctxpref_relation::Value,
        score: f64,
    ) -> Result<(), ServiceError> {
        Ok(self.db.insert_preference_eq(user, descriptor, attr, value, score)?)
    }

    /// Remove one user's preference by index.
    pub fn remove_preference(
        &self,
        user: &str,
        index: usize,
    ) -> Result<ContextualPreference, ServiceError> {
        Ok(self.db.remove_preference(user, index)?)
    }

    /// Update the score of one user's preference by index.
    pub fn update_preference_score(
        &self,
        user: &str,
        index: usize,
        score: f64,
    ) -> Result<(), ServiceError> {
        Ok(self.db.update_preference_score(user, index, score)?)
    }

    /// One user's query-cache statistics.
    pub fn cache_stats(&self, user: &str) -> Result<Option<CacheStats>, ServiceError> {
        Ok(self.db.cache_stats(user)?)
    }

    /// Replace the query options used by every query on the database.
    pub fn set_query_defaults(&self, options: ctxpref_core::QueryOptions) {
        self.db.set_query_defaults(options);
    }

    /// Read access to the underlying sharded database (for inspection;
    /// queries should go through [`Self::query_state`] to get fault
    /// tolerance). The closure takes no lock itself — accessor methods
    /// on the core lock individual shards as needed.
    pub fn with_db<R>(&self, f: impl FnOnce(&ShardedMultiUserDb) -> R) -> R {
        f(&self.db)
    }

    /// Snapshot the database to `path`: an atomic, checksummed write,
    /// with transient I/O failures retried per the retry policy (capped
    /// by the storage deadline). The snapshot is taken shard by shard
    /// before any I/O starts, so the save never holds a shard lock
    /// across disk writes and queries proceed during the save.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ServiceError> {
        let snapshot = self.db.snapshot();
        retry_storage(&self.cfg.retry, self.cfg.storage_deadline, &self.counters, || {
            ctxpref_storage::save_multi_user(&path, &snapshot)
        })
    }

    /// Stop accepting requests, drain the workers, and return the
    /// database.
    pub fn shutdown(mut self) -> MultiUserDb {
        self.stop();
        let db = Arc::clone(&self.db);
        drop(self);
        match Arc::try_unwrap(db) {
            Ok(sharded) => sharded.into_db(),
            // A caller still holds a clone-derived reference (cannot
            // happen through the public API).
            Err(_arc) => unreachable!("shutdown consumes the only service handle"),
        }
    }

    fn stop(&mut self) {
        self.shutting_down.store(true, Ordering::Release);
        self.sender.take(); // closing the channel stops the workers
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for CtxPrefService {
    fn drop(&mut self) {
        self.stop();
    }
}

fn worker_loop(
    db: &ShardedMultiUserDb,
    counters: &Counters,
    in_flight: &Arc<AtomicUsize>,
    receiver: &Mutex<mpsc::Receiver<Job>>,
) {
    loop {
        // Hold the receiver lock only while picking up a job.
        let job = { receiver.lock().recv() };
        let Ok(job) = job else { return };
        let _slot = InFlightGuard(Arc::clone(in_flight));
        if job.cancelled.load(Ordering::Acquire) {
            counters.cancelled.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        if Instant::now() >= job.deadline {
            counters.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            let _ = job
                .reply
                .try_send(Err(ServiceError::DeadlineExceeded { deadline: job.requested }));
            continue;
        }
        // Outer containment: nothing may unwind out of a request, even
        // a bug outside the per-rung guards.
        let result = catch_unwind(AssertUnwindSafe(|| {
            // Acquire only the user's shard, and account the wait: the
            // time to get the lock is the serving core's contention.
            let lock_started = Instant::now();
            let shard = db.read_user_shard(&job.user);
            let waited = lock_started.elapsed();
            counters
                .lock_wait_micros
                .fetch_add(waited.as_micros() as u64, Ordering::Relaxed);
            // Re-check the deadline now that the lock is held: a
            // contended acquisition may have consumed the whole budget,
            // and running the ladder for a caller that already timed
            // out would only waste the shard's read capacity.
            if Instant::now() >= job.deadline {
                counters.deadline_after_lock.fetch_add(1, Ordering::Relaxed);
                counters.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::DeadlineExceeded { deadline: job.requested });
            }
            run_ladder(&shard, &job.user, &job.state, job.deadline, job.requested)
        }))
        .unwrap_or_else(|payload| {
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Err(ServiceError::QueryPanicked { message })
        });
        let _ = job.reply.try_send(result);
    }
}

/// Run `op` up to `policy.max_attempts` times, sleeping
/// `base_backoff · 2ⁿ⁻¹` between attempts, but never sleeping past
/// `deadline` (measured from entry): when the next backoff would cross
/// it, give up with [`ServiceError::DeadlineExceeded`] instead. Only
/// I/O errors are considered transient; parse/model/corruption errors
/// fail immediately.
fn retry_storage<T>(
    policy: &RetryPolicy,
    deadline: Duration,
    counters: &Counters,
    mut op: impl FnMut() -> Result<T, StorageError>,
) -> Result<T, ServiceError> {
    let started = Instant::now();
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        match op() {
            Ok(v) => return Ok(v),
            Err(StorageError::Io(_)) if attempt < policy.max_attempts => {
                let backoff = policy.base_backoff * 2u32.pow(attempt - 1);
                if started.elapsed() + backoff >= deadline {
                    counters.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                    return Err(ServiceError::DeadlineExceeded { deadline });
                }
                counters.storage_retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(backoff);
            }
            Err(e) => return Err(ServiceError::Storage(e)),
        }
    }
}
