use std::error::Error;
use std::fmt;
use std::time::Duration;

use ctxpref_core::CoreError;
use ctxpref_replication::ReplicationError;
use ctxpref_storage::StorageError;
use ctxpref_wal::{DurableError, WalError};

/// Typed errors of the serving layer. Every request that does not
/// produce a [`crate::ServiceAnswer`] produces exactly one of these —
/// panics inside query execution are caught and reported as
/// [`ServiceError::QueryPanicked`], never propagated to the caller.
#[derive(Debug)]
pub enum ServiceError {
    /// Admission control shed the request: either the hard in-flight
    /// limit was reached, or the sojourn-time controller is shedding
    /// this request's tier. Retryable — wait `retry_after` first.
    Overloaded {
        /// The configured in-flight limit.
        limit: usize,
        /// How long the caller should wait before retrying; derived
        /// from the observed queue sojourn time, so it tracks how
        /// overloaded the service actually is.
        retry_after: Duration,
    },
    /// The request did not complete within its deadline.
    DeadlineExceeded {
        /// The deadline the request carried.
        deadline: Duration,
    },
    /// The request was cancelled before completing.
    Cancelled,
    /// Query execution panicked; the panic was contained at the service
    /// boundary.
    QueryPanicked {
        /// The panic payload, stringified.
        message: String,
    },
    /// A database-level error (unknown user, conflicting preference, …).
    Core(CoreError),
    /// A storage error that survived the retry policy.
    Storage(StorageError),
    /// A write-ahead-log error: the mutation was rolled back and not
    /// applied (see `ctxpref-wal` for the rollback guarantees).
    Wal(WalError),
    /// A durability-only operation (checkpoint, WAL flush, WAL status)
    /// was called on a service running without a durable directory.
    NotDurable,
    /// A replication-only operation (promotion, anti-entropy, status)
    /// was called on a service running without a replicated cluster.
    NotReplicated,
    /// The replication layer refused or failed the operation (no
    /// primary, quorum not reached, fenced epoch, …). The write was
    /// **not** acknowledged.
    Replication(ReplicationError),
    /// The service is shutting down and no longer accepts requests.
    ShuttingDown,
    /// The user is mid-migration (fenced at cut-over, importing on the
    /// destination, or already moved away): the write was refused and
    /// can be retried after the routing table refreshes. Typed and
    /// immediate — a migration never blocks a connection.
    Migrating {
        /// The user whose write was refused.
        user: String,
    },
    /// A migration action carried a routing epoch older than the one
    /// that owns the user's entry: the calling driver was deposed by a
    /// newer migration and must not touch this user again.
    StaleMigration {
        /// The routing epoch that owns the entry (0 = no entry).
        current: u64,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Overloaded { limit, retry_after } => {
                write!(
                    f,
                    "overloaded: {limit} requests already in flight (retry after {retry_after:?})"
                )
            }
            Self::DeadlineExceeded { deadline } => {
                write!(f, "deadline of {deadline:?} exceeded")
            }
            Self::Cancelled => write!(f, "request cancelled"),
            Self::QueryPanicked { message } => {
                write!(f, "query execution panicked (contained): {message}")
            }
            Self::Core(e) => write!(f, "{e}"),
            Self::Storage(e) => write!(f, "{e}"),
            Self::Wal(e) => write!(f, "{e}"),
            Self::NotDurable => {
                write!(
                    f,
                    "service has no durable directory (start it with new_durable/recover)"
                )
            }
            Self::NotReplicated => {
                write!(
                    f,
                    "service has no replicated cluster (start it with new_replicated)"
                )
            }
            Self::Replication(e) => write!(f, "{e}"),
            Self::ShuttingDown => write!(f, "service is shutting down"),
            Self::Migrating { user } => {
                write!(f, "user {user:?} is migrating; retry after a route refresh")
            }
            Self::StaleMigration { current } => {
                write!(
                    f,
                    "migration epoch is stale (entry owned by epoch {current})"
                )
            }
        }
    }
}

impl Error for ServiceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Core(e) => Some(e),
            Self::Storage(e) => Some(e),
            Self::Wal(e) => Some(e),
            Self::Replication(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServiceError {
    fn from(e: CoreError) -> Self {
        Self::Core(e)
    }
}

impl From<StorageError> for ServiceError {
    fn from(e: StorageError) -> Self {
        Self::Storage(e)
    }
}

impl From<WalError> for ServiceError {
    fn from(e: WalError) -> Self {
        Self::Wal(e)
    }
}

impl From<DurableError> for ServiceError {
    fn from(e: DurableError) -> Self {
        match e {
            DurableError::Wal(e) => Self::Wal(e),
            DurableError::Core(e) => Self::Core(e),
        }
    }
}

impl From<ReplicationError> for ServiceError {
    fn from(e: ReplicationError) -> Self {
        // Unwrap the layers the service already has typed errors for;
        // everything control-plane stays a replication error.
        match e {
            ReplicationError::Durable(e) => e.into(),
            ReplicationError::Wal(e) => Self::Wal(e),
            other => Self::Replication(other),
        }
    }
}
