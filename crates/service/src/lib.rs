#![warn(missing_docs)]
//! Fault-tolerant serving layer for the contextual preference database.
//!
//! The paper's system is a library: call [`ctxpref_core::MultiUserDb`]
//! and get an answer or an error. A deployment needs more — queries
//! that *always* terminate, a process that survives a panicking query,
//! bounded memory under overload, and storage that a crash cannot
//! corrupt. [`CtxPrefService`] adds exactly that, without changing the
//! paper's semantics on the healthy path:
//!
//! * per-request **deadlines** and cancellation,
//! * **panic isolation** (`catch_unwind` per query; `parking_lot`-style
//!   locks so contained panics cannot poison shared state),
//! * **admission control** with load shedding,
//! * a four-rung **degradation ladder** (cached → exact → nearest-state
//!   → non-contextual default, Section 4.2 of the paper) with every
//!   fallback recorded on the answer,
//! * **retry-with-backoff** around the atomic, checksummed storage
//!   layer,
//! * opt-in **durability**: built with [`CtxPrefService::new_durable`]
//!   or [`CtxPrefService::recover`], every mutation is appended to a
//!   per-shard write-ahead log before it is applied, a background
//!   checkpointer bounds replay time, and recovery replays the log on
//!   top of the latest checkpoint (`ctxpref-wal`),
//! * opt-in **replication**: built with
//!   [`CtxPrefService::new_replicated`], mutations route through a
//!   primary that ships its WAL to replicas (async or quorum acks),
//!   a background tick detects primary failure and fails over with
//!   epoch fencing, and anti-entropy digests verify convergence
//!   (`ctxpref-replication`).
//!
//! Failure modes are driven deterministically in tests by the
//! `ctxpref-faults` plan (see the chaos suite under `tests/`, and the
//! crash-recovery fuzz matrix in `ctxpref-wal`).
//!
//! ```
//! use ctxpref_context::ContextState;
//! use ctxpref_core::MultiUserDb;
//! use ctxpref_service::{CtxPrefService, LadderStep, ServiceConfig};
//! # use ctxpref_hierarchy::Hierarchy;
//! # use ctxpref_context::ContextEnvironment;
//! # use ctxpref_relation::{AttrType, Relation, Schema};
//! # let env = ContextEnvironment::new(vec![
//! #     Hierarchy::flat("weather", &["cold", "warm"]).unwrap(),
//! # ]).unwrap();
//! # let schema = Schema::new(&[("name", AttrType::Str)]).unwrap();
//! # let mut rel = Relation::new("poi", schema);
//! # rel.insert(vec!["Acropolis".into()]).unwrap();
//! let mut db = MultiUserDb::new(env.clone(), rel, 8);
//! db.add_user("alice").unwrap();
//! let service = CtxPrefService::new(db, ServiceConfig::default());
//! let state = ContextState::parse(&env, &["warm"]).unwrap();
//! let answer = service.query_state("alice", &state).unwrap();
//! assert_eq!(answer.step, LadderStep::Exact);
//! assert!(!answer.is_degraded());
//! ```

mod error;
mod ladder;
mod migrate;
mod service;
mod stats;
mod tier;

pub use error::ServiceError;
pub use ladder::{Fallback, LadderStep, ServiceAnswer};
pub use migrate::{MigrationEntry, MigrationPhase, RouteInfo, UserExport};
pub use service::{
    BulkError, CtxPrefService, DurabilityConfig, ReplicatedConfig, RetryPolicy, ScrubStatus,
    ServiceConfig,
};
pub use stats::ServiceStats;
pub use tier::Priority;

// Durability and replication vocabulary re-exported so service
// consumers need not depend on the lower crates directly.
pub use ctxpref_replication::{
    AckMode, Cluster, ClusterStatus, NodeId, NodeStatus, ReplicationError, RoleHook, TickReport,
};
pub use ctxpref_wal::{
    CheckpointReport, QuarantinedFile, RecoveryReport, ScrubReport, SyncPolicy, WalStatus,
};
