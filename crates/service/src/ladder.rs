//! The degradation ladder: how a query is answered when parts of the
//! system misbehave.
//!
//! Rungs, in order:
//!
//! 1. **Cached** — the user's context query tree had the exact state.
//! 2. **Exact** — full resolution through the profile tree (the cache
//!    missed or is unavailable).
//! 3. **NearestState** — exact resolution failed (panicked, or hit an
//!    injected/internal error); the context state is lifted level by
//!    level toward the root of each hierarchy and the closest ancestor
//!    state that resolves successfully answers instead.
//! 4. **DefaultAnswer** — everything contextual failed; the query
//!    degrades to the paper's non-contextual default (Section 4.2): the
//!    base relation, unranked (every tuple at score 0). This rung is
//!    pure and cannot fail.
//!
//! Every rung that fails is recorded as a [`Fallback`] on the returned
//! [`ServiceAnswer`], so callers can see exactly how degraded an answer
//! is.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ctxpref_context::ContextState;
use ctxpref_core::{CoreError, QueryAnswer, UserShardRead};
use ctxpref_relation::{RankedResults, Relation, ScoreCombiner, ScoredTuple};

use crate::error::ServiceError;

/// Which rung of the degradation ladder produced an answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LadderStep {
    /// Served from a current materialized top-k view (top-k requests
    /// only; sits above `Cached` because the view is maintained
    /// incrementally rather than invalidated on writes).
    View,
    /// Served from the user's context query tree.
    Cached,
    /// Full (uncached) resolution through the profile tree.
    Exact,
    /// Resolution under the nearest ancestor context state that
    /// succeeded.
    NearestState,
    /// The non-contextual default answer: base relation, unranked.
    DefaultAnswer,
}

impl std::fmt::Display for LadderStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::View => write!(f, "view"),
            Self::Cached => write!(f, "cached"),
            Self::Exact => write!(f, "exact"),
            Self::NearestState => write!(f, "nearest-state"),
            Self::DefaultAnswer => write!(f, "default-answer"),
        }
    }
}

/// One recorded fallback: a rung that was tried and failed.
#[derive(Debug, Clone)]
pub struct Fallback {
    /// The rung that failed.
    pub step: LadderStep,
    /// Why it failed (error text or contained panic message).
    pub reason: String,
}

/// A served answer: the core [`QueryAnswer`] plus how it was obtained.
#[derive(Debug, Clone)]
pub struct ServiceAnswer {
    /// The underlying query answer.
    pub answer: QueryAnswer,
    /// The rung that produced the answer.
    pub step: LadderStep,
    /// Every rung that failed before `step` succeeded (empty for a
    /// healthy request).
    pub fallbacks: Vec<Fallback>,
    /// For [`LadderStep::NearestState`]: the lifted state that answered.
    pub resolved_state: Option<ContextState>,
    /// Wall-clock time spent serving the request (inside the worker).
    pub elapsed: Duration,
}

impl ServiceAnswer {
    /// True iff the answer came from a rung below the normal
    /// cached/exact path.
    pub fn is_degraded(&self) -> bool {
        self.step > LadderStep::Exact
    }
}

/// Ancestor states of `state`, nearest first: each round lifts every
/// non-root parameter one hierarchy level; the fully-lifted
/// (`all`, …, `all`) state comes last.
pub(crate) fn lifted_states(shard: &UserShardRead<'_>, state: &ContextState) -> Vec<ContextState> {
    let env = shard.env();
    let mut cur = state.clone();
    let mut out = Vec::new();
    loop {
        let mut progressed = false;
        for (p, h) in env.iter() {
            let v = cur.value(p);
            if v != h.all_value() {
                if let Some(parent) = h.parent(v) {
                    cur = cur.with_value(p, parent);
                    progressed = true;
                }
            }
        }
        if !progressed {
            break;
        }
        out.push(cur.clone());
    }
    out
}

/// The non-contextual default answer (Section 4.2): every tuple of the
/// base relation at score 0, in relation order.
pub(crate) fn default_answer(relation: &Relation) -> QueryAnswer {
    let raw = (0..relation.len()).map(|i| ScoredTuple {
        tuple_index: i,
        score: 0.0,
    });
    QueryAnswer {
        results: Arc::new(RankedResults::from_scores(raw, ScoreCombiner::Max)),
        resolutions: Vec::new(),
        from_cache: false,
    }
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one rung: a fault-site check followed by the query itself, with
/// panics contained and reported as the failure reason.
fn try_rung(
    site: &str,
    run: impl FnOnce() -> Result<QueryAnswer, CoreError>,
) -> Result<QueryAnswer, String> {
    match catch_unwind(AssertUnwindSafe(|| {
        ctxpref_faults::hit(site).map_err(|e| e.to_string())?;
        run().map_err(|e| e.to_string())
    })) {
        Ok(Ok(a)) => Ok(a),
        Ok(Err(reason)) => Err(reason),
        Err(payload) => Err(format!("panic: {}", panic_text(payload))),
    }
}

/// Serve one request by walking the ladder under an already-acquired
/// shard read guard — the worker paid for the lock once; every rung
/// reuses it. Returns a typed error only for conditions that
/// degradation cannot answer (unknown user, deadline exhaustion).
pub(crate) fn run_ladder(
    shard: &UserShardRead<'_>,
    user: &str,
    state: &ContextState,
    deadline: Instant,
    requested_deadline: Duration,
) -> Result<ServiceAnswer, ServiceError> {
    let started = Instant::now();
    // An unknown user is a request error, not a fault to degrade around.
    if !shard.has_user(user) {
        return Err(ServiceError::Core(CoreError::NoSuchUser(user.to_string())));
    }

    let mut fallbacks = Vec::new();

    // Rungs 1+2: the cached/exact path (the cache layer internally
    // degrades its own faults to misses, so one call covers both).
    match try_rung("service.query.primary", || shard.query_state(user, state)) {
        Ok(answer) => {
            let step = if answer.from_cache {
                LadderStep::Cached
            } else {
                LadderStep::Exact
            };
            return Ok(ServiceAnswer {
                answer,
                step,
                fallbacks,
                resolved_state: None,
                elapsed: started.elapsed(),
            });
        }
        Err(reason) => fallbacks.push(Fallback {
            step: LadderStep::Exact,
            reason,
        }),
    }

    // Rung 3: nearest ancestor state that still resolves.
    for lifted in lifted_states(shard, state) {
        if Instant::now() >= deadline {
            return Err(ServiceError::DeadlineExceeded {
                deadline: requested_deadline,
            });
        }
        match try_rung("service.query.nearest", || shard.query_state(user, &lifted)) {
            Ok(answer) => {
                return Ok(ServiceAnswer {
                    answer,
                    step: LadderStep::NearestState,
                    fallbacks,
                    resolved_state: Some(lifted),
                    elapsed: started.elapsed(),
                });
            }
            Err(reason) => {
                fallbacks.push(Fallback {
                    step: LadderStep::NearestState,
                    reason,
                });
            }
        }
    }

    // Rung 4: the pure, non-contextual default. Cannot fail.
    Ok(ServiceAnswer {
        answer: default_answer(shard.relation()),
        step: LadderStep::DefaultAnswer,
        fallbacks,
        resolved_state: None,
        elapsed: started.elapsed(),
    })
}

/// The top-k variant of [`run_ladder`]: the primary rung serves from
/// the user's materialized view when one is current (reported as
/// [`LadderStep::View`]) and falls back to early-terminating
/// `rank_cs_topk` otherwise; lifted states and the non-contextual
/// default degrade exactly like the full ladder.
pub(crate) fn run_ladder_topk(
    shard: &UserShardRead<'_>,
    user: &str,
    state: &ContextState,
    k: usize,
    deadline: Instant,
    requested_deadline: Duration,
) -> Result<ServiceAnswer, ServiceError> {
    let started = Instant::now();
    if !shard.has_user(user) {
        return Err(ServiceError::Core(CoreError::NoSuchUser(user.to_string())));
    }

    let mut fallbacks = Vec::new();

    // Rung 1: view or early-terminating exact evaluation (same fault
    // site as the full ladder's primary rung — faults degrade both).
    let mut from_view = false;
    match try_rung("service.query.primary", || {
        let (answer, view) = shard.query_state_topk(user, state, k)?;
        from_view = view;
        Ok(answer)
    }) {
        Ok(answer) => {
            let step = if from_view {
                LadderStep::View
            } else {
                LadderStep::Exact
            };
            return Ok(ServiceAnswer {
                answer,
                step,
                fallbacks,
                resolved_state: None,
                elapsed: started.elapsed(),
            });
        }
        Err(reason) => fallbacks.push(Fallback {
            step: LadderStep::Exact,
            reason,
        }),
    }

    // Rung 3: nearest ancestor state that still resolves.
    for lifted in lifted_states(shard, state) {
        if Instant::now() >= deadline {
            return Err(ServiceError::DeadlineExceeded {
                deadline: requested_deadline,
            });
        }
        match try_rung("service.query.nearest", || {
            shard.query_state_topk(user, &lifted, k).map(|(a, _)| a)
        }) {
            Ok(answer) => {
                return Ok(ServiceAnswer {
                    answer,
                    step: LadderStep::NearestState,
                    fallbacks,
                    resolved_state: Some(lifted),
                    elapsed: started.elapsed(),
                });
            }
            Err(reason) => {
                fallbacks.push(Fallback {
                    step: LadderStep::NearestState,
                    reason,
                });
            }
        }
    }

    // Rung 4: the pure, non-contextual default (every tuple ties at
    // score 0, so trimming to k would keep everything anyway).
    Ok(ServiceAnswer {
        answer: default_answer(shard.relation()),
        step: LadderStep::DefaultAnswer,
        fallbacks,
        resolved_state: None,
        elapsed: started.elapsed(),
    })
}
