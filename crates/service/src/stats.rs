use std::sync::atomic::{AtomicU64, Ordering};

/// Internal atomic counters of the service.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub served_view: AtomicU64,
    pub served_cached: AtomicU64,
    pub served_exact: AtomicU64,
    pub served_nearest: AtomicU64,
    pub served_default: AtomicU64,
    pub panics_contained: AtomicU64,
    pub deadline_exceeded: AtomicU64,
    pub shed: AtomicU64,
    pub shed_admission: AtomicU64,
    pub shed_sojourn: AtomicU64,
    pub shed_expired: AtomicU64,
    pub shed_interactive: AtomicU64,
    pub shed_bulk: AtomicU64,
    pub shed_maintenance: AtomicU64,
    pub cancelled: AtomicU64,
    pub storage_retries: AtomicU64,
    pub errors: AtomicU64,
    pub lock_wait_micros: AtomicU64,
    pub deadline_after_lock: AtomicU64,
    pub checkpoints: AtomicU64,
    pub scrub_passes: AtomicU64,
    pub scrub_quarantined: AtomicU64,
    pub scrub_read_errors: AtomicU64,
    pub scrub_heals: AtomicU64,
}

impl Counters {
    pub fn snapshot(&self) -> ServiceStats {
        ServiceStats {
            served_view: self.served_view.load(Ordering::Relaxed),
            served_cached: self.served_cached.load(Ordering::Relaxed),
            served_exact: self.served_exact.load(Ordering::Relaxed),
            served_nearest: self.served_nearest.load(Ordering::Relaxed),
            served_default: self.served_default.load(Ordering::Relaxed),
            panics_contained: self.panics_contained.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            shed_admission: self.shed_admission.load(Ordering::Relaxed),
            shed_sojourn: self.shed_sojourn.load(Ordering::Relaxed),
            shed_expired: self.shed_expired.load(Ordering::Relaxed),
            shed_interactive: self.shed_interactive.load(Ordering::Relaxed),
            shed_bulk: self.shed_bulk.load(Ordering::Relaxed),
            shed_maintenance: self.shed_maintenance.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            storage_retries: self.storage_retries.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            lock_wait_micros: self.lock_wait_micros.load(Ordering::Relaxed),
            deadline_after_lock: self.deadline_after_lock.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            scrub_passes: self.scrub_passes.load(Ordering::Relaxed),
            scrub_quarantined: self.scrub_quarantined.load(Ordering::Relaxed),
            scrub_read_errors: self.scrub_read_errors.load(Ordering::Relaxed),
            scrub_heals: self.scrub_heals.load(Ordering::Relaxed),
            // Durability and replication figures live on the WAL and
            // the cluster, not in these atomics; `CtxPrefService::stats`
            // overlays them after this snapshot.
            wal_appends: 0,
            group_commit_batches: 0,
            wal_rotate_failures: 0,
            wal_disk_full_sheds: 0,
            repl_apply_rejects: 0,
            rescued_shards: 0,
            recovered_lsn: 0,
            replication_epoch: 0,
            replication_max_lag: 0,
            failovers: 0,
            // Cache and view figures live in the serving core's
            // per-user structures; `CtxPrefService::stats` overlays
            // aggregated totals after this snapshot.
            cache_hits: 0,
            cache_misses: 0,
            cache_insertions: 0,
            cache_evictions: 0,
            cache_invalidations: 0,
            view_hits: 0,
            view_misses: 0,
            view_patches: 0,
            view_rebuilds: 0,
            materialized_views: 0,
            pinned_views: 0,
            fault_hits: Vec::new(),
        }
    }
}

/// A point-in-time snapshot of service counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Top-k answers served from a current materialized view.
    pub served_view: u64,
    /// Answers served from a user's query cache.
    pub served_cached: u64,
    /// Answers served by exact (uncached) resolution.
    pub served_exact: u64,
    /// Answers served from a lifted (nearest ancestor) state.
    pub served_nearest: u64,
    /// Answers served as the non-contextual default.
    pub served_default: u64,
    /// Panics caught at the service boundary or inside a ladder rung.
    pub panics_contained: u64,
    /// Requests that missed their deadline.
    pub deadline_exceeded: u64,
    /// Requests shed by admission control, all reasons combined
    /// (`shed_admission + shed_sojourn + shed_expired`).
    pub shed: u64,
    /// Requests refused by the hard in-flight backstop (the queue was
    /// already at `max_in_flight`, regardless of tier).
    pub shed_admission: u64,
    /// Requests the sojourn-time controller refused at admission:
    /// queue dwell exceeded the target for a sustained interval, so
    /// the request's tier was shed (lowest tier first; Interactive is
    /// never sojourn-shed).
    pub shed_sojourn: u64,
    /// Jobs dropped at dequeue because their deadline had already
    /// passed while they waited in the queue — counted, never
    /// executed, so the queue does no dead work.
    pub shed_expired: u64,
    /// Shed requests that carried the Interactive tier.
    pub shed_interactive: u64,
    /// Shed requests that carried the Bulk tier.
    pub shed_bulk: u64,
    /// Shed requests that carried the Maintenance tier.
    pub shed_maintenance: u64,
    /// Requests dropped because the caller had already given up.
    pub cancelled: u64,
    /// Storage operations retried after a transient I/O failure.
    pub storage_retries: u64,
    /// Requests that ended in a typed error (other than shed/deadline).
    pub errors: u64,
    /// Total microseconds workers spent waiting to acquire a user's
    /// shard lock — the direct measure of serving-core contention.
    pub lock_wait_micros: u64,
    /// Requests whose deadline expired *while waiting for the shard
    /// lock* (caught by the post-acquisition re-check, so no query ran
    /// against an already-dead request).
    pub deadline_after_lock: u64,
    /// Checkpoints taken (manual and background) since start.
    pub checkpoints: u64,
    /// Scrub passes completed (manual and background) since start.
    pub scrub_passes: u64,
    /// Files those passes quarantined (corrupt sealed segments or
    /// checkpoint snapshots pulled out of service).
    pub scrub_quarantined: u64,
    /// Files a scrub pass skipped on a transient read error (retried
    /// next pass — not corruption, not quarantined).
    pub scrub_read_errors: u64,
    /// Scrub passes that healed damage with a fresh checkpoint.
    pub scrub_heals: u64,
    /// Records appended to the write-ahead log since start (0 when the
    /// service runs without durability).
    pub wal_appends: u64,
    /// Group-commit fsync batches that synced at least one record.
    pub group_commit_batches: u64,
    /// Size-triggered WAL segment rotations that failed (the full
    /// segment stayed the append target; a later rotation retries).
    pub wal_rotate_failures: u64,
    /// Appends shed with a typed retryable disk-full error.
    pub wal_disk_full_sheds: u64,
    /// Replicated applies the local database rejected (logged but
    /// refused identically on every replica — deterministic).
    pub repl_apply_rejects: u64,
    /// WAL shards recovery rescued via quarantine, summed across the
    /// cluster's live nodes (0 without replication; a rescued node
    /// restarted clean-but-behind and repairs through shipping).
    pub rescued_shards: u64,
    /// Sum of per-shard LSNs recovered at startup (0 for a fresh or
    /// non-durable service) — how much log survived the last crash.
    pub recovered_lsn: u64,
    /// The cluster's current fencing epoch (0 when the service runs
    /// without replication).
    pub replication_epoch: u64,
    /// How far the laggiest live replica trails the primary, in
    /// applied records (0 without replication or a live primary).
    pub replication_max_lag: u64,
    /// Promotions after the initial one — how many times the primary
    /// role has moved since the cluster was bootstrapped.
    pub failovers: u64,
    /// Query-cache hits summed over every user (overlay from the
    /// serving core; 0 when caching is disabled).
    pub cache_hits: u64,
    /// Query-cache misses summed over every user.
    pub cache_misses: u64,
    /// Answers inserted into per-user caches.
    pub cache_insertions: u64,
    /// Cache cells evicted by per-user capacity pressure.
    pub cache_evictions: u64,
    /// Cache cells dropped by mutation or options-change invalidation.
    pub cache_invalidations: u64,
    /// Materialized-view hits (view was current and answered) summed
    /// over every user.
    pub view_hits: u64,
    /// Top-k requests that could not be served from a view.
    pub view_misses: u64,
    /// Mutations absorbed by an in-place view patch (no recompute).
    pub view_patches: u64,
    /// Targeted per-view rebuilds (signature change, heap underflow,
    /// or growth bound).
    pub view_rebuilds: u64,
    /// Views currently materialized, over every user.
    pub materialized_views: u64,
    /// Views currently pinned (never evicted), over every user.
    pub pinned_views: u64,
    /// Per-site fault-injection hit counters of the currently
    /// installed [`FaultPlan`](ctxpref_faults::FaultPlan), sorted by
    /// site name; empty when no plan is installed. Chaos tests assert
    /// a fault actually fired from these instead of inferring it from
    /// timing.
    pub fault_hits: Vec<(String, u64)>,
}

impl ServiceStats {
    /// Total answered requests, across all ladder rungs.
    pub fn served(&self) -> u64 {
        self.served_view
            + self.served_cached
            + self.served_exact
            + self.served_nearest
            + self.served_default
    }

    /// Answers that came from a degraded rung.
    pub fn degraded(&self) -> u64 {
        self.served_nearest + self.served_default
    }
}
