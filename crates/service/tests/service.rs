//! Functional tests of the serving layer: ladder rungs, deadlines,
//! admission control, retries — each failure mode driven by a seeded
//! fault plan.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use ctxpref_context::ContextState;
use ctxpref_core::MultiUserDb;
use ctxpref_faults::FaultPlan;
use ctxpref_service::{CtxPrefService, LadderStep, ServiceConfig, ServiceError};
use ctxpref_workload::reference::{poi_env, poi_relation};
use ctxpref_workload::user_study::{all_demographics, default_profile};

fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn study_db(users: usize, cache: usize) -> MultiUserDb {
    let env = poi_env();
    let rel = poi_relation(&env, 7, 4);
    let mut db = MultiUserDb::new(env.clone(), rel, cache);
    for (i, demo) in all_demographics().into_iter().take(users).enumerate() {
        let profile = default_profile(&env, db.relation(), demo);
        db.add_user_with_profile(&format!("user{i}"), profile)
            .unwrap();
    }
    db
}

fn state(db: &CtxPrefService, names: &[&str]) -> ContextState {
    db.with_db(|db| ContextState::parse(db.env(), names).unwrap())
}

#[test]
fn healthy_path_cached_and_exact() {
    let service = CtxPrefService::new(study_db(2, 8), ServiceConfig::default());
    let s = state(&service, &["Plaka", "warm", "friends"]);
    let first = service.query_state("user0", &s).unwrap();
    assert_eq!(first.step, LadderStep::Exact);
    assert!(first.fallbacks.is_empty());
    assert!(!first.is_degraded());
    let second = service.query_state("user0", &s).unwrap();
    assert_eq!(second.step, LadderStep::Cached);
    assert_eq!(
        first.answer.results.entries(),
        second.answer.results.entries()
    );
    let stats = service.stats();
    assert_eq!((stats.served_exact, stats.served_cached), (1, 1));
    assert_eq!(stats.degraded(), 0);
}

#[test]
fn unknown_user_is_a_typed_error_not_a_degradation() {
    let service = CtxPrefService::new(study_db(1, 8), ServiceConfig::default());
    let s = state(&service, &["Plaka", "warm", "friends"]);
    match service.query_state("ghost", &s) {
        Err(ServiceError::Core(e)) => assert!(e.to_string().contains("ghost")),
        other => panic!("expected Core(NoSuchUser), got {other:?}"),
    }
    assert_eq!(service.stats().errors, 1);
}

#[test]
fn primary_failure_degrades_to_nearest_state() {
    let _serial = fault_lock();
    let service = CtxPrefService::new(study_db(1, 8), ServiceConfig::default());
    let s = state(&service, &["Plaka", "warm", "friends"]);
    let plan = FaultPlan::builder(3)
        .fail("service.query.primary", 1.0)
        .build();
    let answer = plan.run(|| service.query_state("user0", &s).unwrap());
    assert_eq!(answer.step, LadderStep::NearestState);
    assert!(answer.is_degraded());
    assert_eq!(answer.fallbacks.len(), 1);
    assert_eq!(answer.fallbacks[0].step, LadderStep::Exact);
    let resolved = answer.resolved_state.expect("lifted state recorded");
    assert_ne!(&resolved, &s);
    assert_eq!(service.stats().served_nearest, 1);
}

#[test]
fn total_failure_degrades_to_default_answer() {
    let _serial = fault_lock();
    let service = CtxPrefService::new(study_db(1, 8), ServiceConfig::default());
    let s = state(&service, &["Plaka", "warm", "friends"]);
    let plan = FaultPlan::builder(4)
        .fail("service.query.primary", 1.0)
        .fail("service.query.nearest", 1.0)
        .build();
    let answer = plan.run(|| service.query_state("user0", &s).unwrap());
    assert_eq!(answer.step, LadderStep::DefaultAnswer);
    // Ladder trace: one exact failure plus one per lifted state.
    assert!(answer.fallbacks.len() >= 2, "{:?}", answer.fallbacks);
    // The default answer is the whole relation, unranked.
    let n = service.with_db(|db| db.relation().len());
    assert_eq!(answer.answer.results.len(), n);
    assert!(answer
        .answer
        .results
        .entries()
        .iter()
        .all(|e| e.score == 0.0));
}

#[test]
fn injected_panics_are_contained_and_recorded() {
    let _serial = fault_lock();
    let service = CtxPrefService::new(study_db(1, 8), ServiceConfig::default());
    let s = state(&service, &["Plaka", "warm", "friends"]);
    let plan = FaultPlan::builder(5)
        .panic_at("service.query.primary", &[1])
        .build();
    let answer = plan.run(|| service.query_state("user0", &s).unwrap());
    assert_eq!(answer.step, LadderStep::NearestState);
    assert!(
        answer.fallbacks[0].reason.starts_with("panic:"),
        "{}",
        answer.fallbacks[0].reason
    );
    assert_eq!(service.stats().panics_contained, 1);
    // The service keeps serving normally afterwards.
    let healthy = service.query_state("user0", &s).unwrap();
    assert!(!healthy.is_degraded());
}

#[test]
fn deadlines_are_enforced_under_injected_delay() {
    let _serial = fault_lock();
    let service = CtxPrefService::new(study_db(1, 8), ServiceConfig::default());
    let s = state(&service, &["Plaka", "warm", "friends"]);
    let plan = FaultPlan::builder(6)
        .delay("service.query.primary", 1.0, Duration::from_millis(200))
        .build();
    let deadline = Duration::from_millis(20);
    let started = Instant::now();
    let result = plan.run(|| service.query_state_deadline("user0", &s, deadline));
    let elapsed = started.elapsed();
    match result {
        Err(ServiceError::DeadlineExceeded { deadline: d }) => assert_eq!(d, deadline),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_millis(150),
        "returned in {elapsed:?}, well before the delay"
    );
    assert!(service.stats().deadline_exceeded >= 1);
}

#[test]
fn admission_control_sheds_excess_load() {
    let _serial = fault_lock();
    let cfg = ServiceConfig {
        workers: 1,
        max_in_flight: 1,
        default_deadline: Duration::from_millis(300),
        ..ServiceConfig::default()
    };
    let service = CtxPrefService::new(study_db(1, 8), cfg);
    let s = state(&service, &["Plaka", "warm", "friends"]);
    let plan = FaultPlan::builder(8)
        .delay("service.query.primary", 1.0, Duration::from_millis(100))
        .build();
    plan.run(|| {
        std::thread::scope(|scope| {
            let slow = scope.spawn(|| service.query_state("user0", &s));
            // Let the slow request occupy the only slot.
            std::thread::sleep(Duration::from_millis(20));
            match service.query_state("user0", &s) {
                Err(ServiceError::Overloaded { limit, .. }) => assert_eq!(limit, 1),
                other => panic!("expected Overloaded, got {other:?}"),
            }
            assert!(slow.join().unwrap().is_ok());
        });
    });
    assert_eq!(service.stats().shed, 1);
    // The worker frees the in-flight slot just after replying; give it
    // a moment to drain.
    for _ in 0..200 {
        if service.in_flight() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(service.in_flight(), 0);
}

#[test]
fn storage_retry_recovers_from_transient_faults() {
    let _serial = fault_lock();
    let dir = std::env::temp_dir();
    let path = dir.join(format!("ctxpref-service-retry-{}.db", std::process::id()));
    let service = CtxPrefService::new(study_db(2, 8), ServiceConfig::default());
    // First two write attempts fail; the third (default max_attempts=3)
    // succeeds.
    let plan = FaultPlan::builder(9)
        .fail_at("storage.save.open", &[1, 2])
        .build();
    plan.run(|| service.save(&path).unwrap());
    assert_eq!(service.stats().storage_retries, 2);

    // Reopen through the service (also with a transient read fault).
    let plan = FaultPlan::builder(10)
        .fail_at("storage.load.open", &[1])
        .build();
    let reopened = plan
        .run(|| CtxPrefService::open(&path, ServiceConfig::default()))
        .unwrap();
    assert_eq!(reopened.with_db(|db| db.user_count()), 2);
    assert_eq!(reopened.stats().storage_retries, 1);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupt_files_are_not_retried() {
    let _serial = fault_lock();
    let dir = std::env::temp_dir();
    let path = dir.join(format!("ctxpref-service-corrupt-{}.db", std::process::id()));
    let service = CtxPrefService::new(study_db(1, 8), ServiceConfig::default());
    service.save(&path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    let target = bytes.len() - 5;
    bytes[target] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    match CtxPrefService::open(&path, ServiceConfig::default()) {
        Err(ServiceError::Storage(e)) => {
            assert!(e.to_string().contains("corrupt"), "{e}")
        }
        other => panic!("expected Storage(Corrupt), got {:?}", other.map(|_| ())),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn mutations_flow_through_the_service() {
    let service = CtxPrefService::new(study_db(1, 8), ServiceConfig::default());
    service.add_user("zoe").unwrap();
    let (pref, s) = service.with_db(|db| {
        let pref = db.profile("user0").unwrap().preferences()[0].clone();
        let s = ContextState::all(db.env());
        (pref, s)
    });
    service.insert_preference("zoe", pref).unwrap();
    assert_eq!(service.with_db(|db| db.profile("zoe").unwrap().len()), 1);
    service.update_preference_score("zoe", 0, 0.33).unwrap();
    assert_eq!(
        service.with_db(|db| db.profile("zoe").unwrap().preferences()[0].score()),
        0.33
    );
    let removed = service.remove_preference("zoe", 0).unwrap();
    assert_eq!(removed.score(), 0.33);
    assert_eq!(service.with_db(|db| db.profile("zoe").unwrap().len()), 0);
    let _ = service.query_state("zoe", &s).unwrap();
    let profile = service.remove_user("zoe").unwrap();
    assert!(profile.is_empty());

    let db = service.shutdown();
    assert_eq!(db.user_count(), 1);
}

#[test]
fn shutdown_rejects_new_requests() {
    let service = CtxPrefService::new(study_db(1, 8), ServiceConfig::default());
    let s = state(&service, &["Plaka", "warm", "friends"]);
    let db = service.shutdown();
    assert_eq!(db.user_count(), 1);
    // A fresh service over the returned database still works.
    let service = CtxPrefService::new(db, ServiceConfig::default());
    assert!(service.query_state("user0", &s).is_ok());
}
