//! The chaos suite: thousands of randomized queries against the service
//! under a seeded plan of mixed faults (I/O errors, forced panics,
//! injected delays, partial writes), asserting the tentpole guarantees:
//!
//! 1. no panic escapes the service boundary,
//! 2. every request terminates with an answer or a typed error within
//!    its deadline (plus scheduling grace),
//! 3. cache statistics stay internally consistent,
//! 4. a profile saved under injected partial-write faults either loads
//!    intact or fails cleanly — never panics, never half-loads.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use ctxpref_context::ContextState;
use ctxpref_core::MultiUserDb;
use ctxpref_faults::FaultPlan;
use ctxpref_hierarchy::LevelId;
use ctxpref_service::{CtxPrefService, LadderStep, ServiceConfig, ServiceError};
use ctxpref_workload::reference::{poi_env, poi_relation};
use ctxpref_workload::user_study::{all_demographics, default_profile};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn study_db(users: usize, cache: usize) -> MultiUserDb {
    let env = poi_env();
    let rel = poi_relation(&env, 9, 5);
    let mut db = MultiUserDb::new(env.clone(), rel, cache);
    for (i, demo) in all_demographics().into_iter().take(users).enumerate() {
        let profile = default_profile(&env, db.relation(), demo);
        db.add_user_with_profile(&format!("user{i}"), profile)
            .unwrap();
    }
    db
}

/// A random context state: leaf values mostly, an interior value now
/// and then (queries at coarser granularity are legal).
fn random_state(db: &ctxpref_core::ShardedMultiUserDb, rng: &mut StdRng) -> ContextState {
    let env = db.env();
    let mut state = ContextState::all(env);
    for (p, h) in env.iter() {
        let level = if rng.random_bool(0.85) {
            0
        } else {
            rng.random_range(0..h.level_count().saturating_sub(1).max(1))
        };
        let domain = h.domain(LevelId(level as u8));
        if !domain.is_empty() {
            state = state.with_value(p, domain[rng.random_range(0..domain.len())]);
        }
    }
    state
}

const USERS: usize = 4;
const CLIENTS: usize = 4;
const QUERIES_PER_CLIENT: usize = 300; // 1200 total — over the ≥1000 bar

#[test]
fn storm_of_mixed_faults_upholds_the_service_guarantees() {
    let _serial = fault_lock();
    // Injected panics unwind through `catch_unwind` hundreds of times;
    // silence the default per-panic backtrace spew for this test.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let deadline = Duration::from_millis(500);
    let grace = Duration::from_millis(300);
    let cfg = ServiceConfig {
        workers: 4,
        max_in_flight: 64,
        default_deadline: deadline,
        ..ServiceConfig::default()
    };
    let service = CtxPrefService::new(study_db(USERS, 16), cfg);
    let save_path = std::env::temp_dir().join(format!("ctxpref-chaos-{}.db", std::process::id()));
    let _ = std::fs::remove_file(&save_path);

    // The seeded plan: every class of fault, at every instrumented
    // layer. Same seed → same storm, run after run.
    let plan = FaultPlan::builder(0x00C0_FFEE)
        .fail("service.query.primary", 0.08)
        .panic("service.query.primary", 0.04)
        .delay("service.query.primary", 0.04, Duration::from_millis(2))
        .fail("service.query.nearest", 0.10)
        .panic("service.query.nearest", 0.03)
        .fail("qcache.get", 0.06)
        .fail("qcache.insert", 0.06)
        .fail("storage.save.open", 0.25)
        .truncate("storage.save.write", 0.25, 0.6)
        .build();

    let ok_count = AtomicU64::new(0);
    let err_count = AtomicU64::new(0);
    let degraded_count = AtomicU64::new(0);
    let saves_succeeded = AtomicU64::new(0);
    let saves_failed = AtomicU64::new(0);

    plan.run(|| {
        std::thread::scope(|scope| {
            for client in 0..CLIENTS {
                let service = &service;
                let ok_count = &ok_count;
                let err_count = &err_count;
                let degraded_count = &degraded_count;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(1000 + client as u64);
                    let states: Vec<ContextState> = (0..32)
                        .map(|_| service.with_db(|db| random_state(db, &mut rng)))
                        .collect();
                    for i in 0..QUERIES_PER_CLIENT {
                        let user = if rng.random_bool(0.05) {
                            "ghost".to_string() // unknown user: typed error
                        } else {
                            format!("user{}", rng.random_range(0..USERS))
                        };
                        let state = &states[rng.random_range(0..states.len())];
                        let started = Instant::now();
                        let result = service.query_state(&user, state);
                        let elapsed = started.elapsed();
                        assert!(
                            elapsed <= deadline + grace,
                            "client {client} query {i} took {elapsed:?} (deadline {deadline:?})"
                        );
                        match result {
                            Ok(answer) => {
                                ok_count.fetch_add(1, Ordering::Relaxed);
                                if answer.is_degraded() {
                                    degraded_count.fetch_add(1, Ordering::Relaxed);
                                    assert!(
                                        !answer.fallbacks.is_empty(),
                                        "degraded answers record their fallbacks"
                                    );
                                }
                                if answer.step == LadderStep::DefaultAnswer {
                                    assert!(answer
                                        .answer
                                        .results
                                        .entries()
                                        .iter()
                                        .all(|e| e.score == 0.0));
                                }
                            }
                            Err(
                                ServiceError::Overloaded { .. }
                                | ServiceError::DeadlineExceeded { .. }
                                | ServiceError::Cancelled
                                | ServiceError::QueryPanicked { .. }
                                | ServiceError::Core(_)
                                | ServiceError::Storage(_)
                                | ServiceError::Wal(_)
                                | ServiceError::NotDurable
                                | ServiceError::ShuttingDown,
                            ) => {
                                err_count.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(
                                e @ (ServiceError::NotReplicated | ServiceError::Replication(_)),
                            ) => {
                                panic!("replication error on the query path: {e}");
                            }
                            Err(
                                e @ (ServiceError::Migrating { .. }
                                | ServiceError::StaleMigration { .. }),
                            ) => {
                                panic!("migration error without any migration: {e}");
                            }
                        }
                    }
                });
            }

            // A mutator thread: profile updates race the query storm and
            // exercise cache invalidation under load.
            let service = &service;
            scope.spawn(move || {
                for round in 0..40u64 {
                    let score = if round % 2 == 0 { 0.31 } else { 0.62 };
                    let _ = service.update_preference_score("user0", 0, score);
                    std::thread::sleep(Duration::from_millis(2));
                }
            });

            // A saver thread: snapshots race the storm while storage
            // faults (including partial writes) fire.
            let saves_succeeded = &saves_succeeded;
            let saves_failed = &saves_failed;
            let save_path = &save_path;
            scope.spawn(move || {
                for _ in 0..30 {
                    match service.save(save_path) {
                        Ok(()) => saves_succeeded.fetch_add(1, Ordering::Relaxed),
                        Err(
                            ServiceError::Storage(_)
                            | ServiceError::Overloaded { .. }
                            | ServiceError::DeadlineExceeded { .. },
                        ) => saves_failed.fetch_add(1, Ordering::Relaxed),
                        Err(other) => panic!("unexpected save error: {other:?}"),
                    };
                    std::thread::sleep(Duration::from_millis(3));
                }
            });
        });
    });
    std::panic::set_hook(prev_hook);

    // Guarantee 2 accounting: every one of the 1200 requests resolved.
    let total = (CLIENTS * QUERIES_PER_CLIENT) as u64;
    let (ok, err) = (
        ok_count.load(Ordering::Relaxed),
        err_count.load(Ordering::Relaxed),
    );
    assert_eq!(
        ok + err,
        total,
        "every request terminates with an answer or a typed error"
    );

    // The storm actually stormed: faults fired, rungs were exercised.
    let injected = plan.stats();
    assert!(
        injected.total() > 100,
        "only {} faults injected",
        injected.total()
    );
    assert!(!injected.panics.is_empty(), "no panics were forced");
    let stats = service.stats();
    assert_eq!(
        stats.served(),
        ok,
        "service accounting matches client accounting"
    );
    assert!(stats.degraded() > 0, "degradation ladder never engaged");
    assert_eq!(stats.degraded(), degraded_count.load(Ordering::Relaxed));
    assert!(
        stats.panics_contained > 0,
        "panic containment never engaged"
    );

    // Guarantee 3: per-user cache statistics remain consistent.
    for i in 0..USERS {
        let user = format!("user{i}");
        let cache = service
            .cache_stats(&user)
            .unwrap()
            .expect("caching enabled");
        assert!(
            cache.evictions <= cache.insertions,
            "{user}: evicted {} > inserted {}",
            cache.evictions,
            cache.insertions
        );
        assert!(
            cache.hits + cache.misses > 0,
            "{user}: the storm never touched this cache"
        );
    }

    // Guarantee 4: whatever the partial-write faults did, the snapshot
    // file either loads intact or fails cleanly — never a panic.
    let load = catch_unwind(AssertUnwindSafe(|| {
        ctxpref_storage::load_multi_user(&save_path)
    }));
    let load = load.expect("loading a chaos-era snapshot must not panic");
    if saves_succeeded.load(Ordering::Relaxed) > 0 {
        // Atomic renames only publish complete files, so the newest
        // successful snapshot must load.
        let db = load.expect("a successfully saved snapshot loads intact");
        assert_eq!(db.user_count(), USERS);
    } else if let Err(e) = load {
        // No save survived: any residue must fail with a typed error.
        let _typed: ctxpref_storage::StorageError = e;
    }
    assert!(
        saves_succeeded.load(Ordering::Relaxed) + saves_failed.load(Ordering::Relaxed) == 30,
        "every save attempt resolved"
    );

    // And after the storm, with no plan installed, the service is
    // healthy again: a clean query and a clean save.
    let state = service.with_db(|db| ContextState::all(db.env()));
    let answer = service.query_state("user1", &state).unwrap();
    assert!(matches!(
        answer.step,
        LadderStep::Cached | LadderStep::Exact
    ));
    service.save(&save_path).unwrap();
    assert_eq!(
        ctxpref_storage::load_multi_user(&save_path)
            .unwrap()
            .user_count(),
        USERS
    );
    let _ = std::fs::remove_file(&save_path);
}

/// Determinism of the storm itself: the same seed injects the same
/// faults in the same order at each site, independent of thread timing.
#[test]
fn fault_plans_are_deterministic_across_runs() {
    let _serial = fault_lock();
    let run = |seed: u64| {
        let plan = FaultPlan::builder(seed)
            .fail("service.query.primary", 0.2)
            .fail("qcache.get", 0.1)
            .build();
        let service = CtxPrefService::new(study_db(2, 8), ServiceConfig::default());
        let state = service.with_db(|db| ContextState::all(db.env()));
        plan.run(|| {
            // Single-threaded driving → per-site hit order is fixed.
            let steps: Vec<LadderStep> = (0..100)
                .map(|_| service.query_state("user0", &state).unwrap().step)
                .collect();
            steps
        })
    };
    assert_eq!(run(42), run(42), "same seed, same degradations");
    assert_ne!(run(42), run(43), "different seed, different storm");
}
