//! End-to-end replication through the service API: a replicated
//! service seeds all nodes, routes mutations through the primary,
//! survives a primary crash by failing over, and converges after the
//! crashed node rejoins — plus the `NotReplicated` contract on plain
//! services and the background control-plane tick.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ctxpref_context::ContextState;
use ctxpref_core::MultiUserDb;
use ctxpref_replication::node_digests;
use ctxpref_service::{CtxPrefService, ReplicatedConfig, ServiceConfig, ServiceError, SyncPolicy};
use ctxpref_workload::reference::{poi_env, poi_relation};

/// A fresh directory under the system temp dir; removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("ctxpref-svc-repl-{}-{tag}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn study_db() -> MultiUserDb {
    let env = poi_env();
    let rel = poi_relation(&env, 7, 3);
    let mut db = MultiUserDb::new(env, rel, 8);
    db.add_user("alice").unwrap();
    db.add_user("bob").unwrap();
    db
}

fn small_cfg() -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        shards: 4,
        ..ServiceConfig::default()
    }
}

/// Manual ticking only: the background thread would make the
/// failure-detection and failover timing nondeterministic.
fn manual_rcfg(dir: &std::path::Path, nodes: usize) -> ReplicatedConfig {
    ReplicatedConfig {
        tick_interval: None,
        ..ReplicatedConfig::new(dir, nodes)
    }
}

/// Every live node's per-shard digests, keyed for assertion messages.
fn all_digests(service: &CtxPrefService) -> Vec<(usize, Vec<u64>)> {
    let cluster = service.cluster().expect("replicated service");
    let nodes = cluster.config().nodes;
    (0..nodes)
        .filter_map(|id| cluster.db_of(id).map(|db| (id, node_digests(&db))))
        .collect()
}

#[test]
fn replicated_service_seeds_serves_and_replicates() {
    let tmp = TempDir::new("basic");
    let service = CtxPrefService::new_replicated(study_db(), small_cfg(), manual_rcfg(&tmp.0, 3))
        .expect("creating the replicated service");
    assert!(service.is_replicated());
    assert!(service.is_durable());

    // The seeded users query from the local node immediately.
    let state =
        service.with_db(|db| ContextState::parse(db.env(), &["Plaka", "warm", "friends"]).unwrap());
    service
        .query_state("alice", &state)
        .expect("seeded user answers");

    // New mutations route through the primary and are quorum-acked.
    service.add_user("carol").unwrap();
    service
        .insert_preference_eq(
            "carol",
            "accompanying_people = friends",
            "type",
            "museum".into(),
            0.7,
        )
        .unwrap();
    service.update_preference_score("carol", 0, 0.9).unwrap();
    service
        .query_state("carol", &state)
        .expect("replicated user answers locally");

    // After a pump the whole cluster is byte-identical.
    service.pump_replication().unwrap();
    let digests = all_digests(&service);
    assert_eq!(digests.len(), 3, "all three nodes live");
    for (id, d) in &digests {
        assert_eq!(d, &digests[0].1, "node {id} diverges from node 0");
    }

    let stats = service.stats();
    assert_eq!(stats.replication_epoch, 1);
    assert_eq!(stats.failovers, 0);
    assert_eq!(stats.replication_max_lag, 0);
    assert!(stats.wal_appends > 0, "mutations reached the primary's WAL");
    assert!(service.replication_status().unwrap().primary.is_some());
}

#[test]
fn primary_crash_fails_over_and_rejoins() {
    let tmp = TempDir::new("failover");
    let service = CtxPrefService::new_replicated(study_db(), small_cfg(), manual_rcfg(&tmp.0, 3))
        .expect("creating the replicated service");
    service.add_user("carol").unwrap();
    service.pump_replication().unwrap();

    // Kill the primary (node 0 — also the local serving node; reads
    // keep working from its detached core, writes move on failover).
    let cluster = Arc::clone(service.cluster().expect("replicated service"));
    cluster.crash_node(0);
    assert!(
        matches!(service.add_user("dave"), Err(ServiceError::Replication(_))),
        "no primary between the crash and the failover"
    );

    // Drive the failure detector until a replica takes over.
    let mut promoted = None;
    for _ in 0..10 {
        let report = service.tick_replication().unwrap();
        if report.promoted.is_some() {
            promoted = report.promoted;
            break;
        }
    }
    let (epoch, new_primary) = promoted.expect("failover within the heartbeat threshold");
    assert!(epoch > 1, "promotion mints a fresh epoch");
    assert_ne!(new_primary, 0, "the dead node cannot be promoted");

    // Writes follow the new primary; the service API is unchanged.
    service.add_user("dave").unwrap();
    let stats = service.stats();
    assert_eq!(stats.failovers, 1);
    assert!(stats.replication_epoch > 1);

    // The crashed node rejoins as a replica and converges.
    cluster.restart_node(0).unwrap();
    service.pump_replication().unwrap();
    service.anti_entropy().unwrap();
    service.pump_replication().unwrap();
    let digests = all_digests(&service);
    assert_eq!(digests.len(), 3, "node 0 is back");
    for (id, d) in &digests {
        assert_eq!(d, &digests[0].1, "node {id} diverges after rejoin");
    }
    let status = service.replication_status().unwrap();
    assert_eq!(status.primary, Some(new_primary));
    let node0 = &status.nodes[0];
    assert!(
        node0.live && !node0.is_primary,
        "node 0 rejoined as a replica"
    );
}

#[test]
fn plain_service_refuses_replication_operations() {
    let service = CtxPrefService::new(study_db(), small_cfg());
    assert!(!service.is_replicated());
    assert!(matches!(
        service.replication_status(),
        Err(ServiceError::NotReplicated)
    ));
    assert!(matches!(
        service.promote(1),
        Err(ServiceError::NotReplicated)
    ));
    assert!(matches!(
        service.anti_entropy(),
        Err(ServiceError::NotReplicated)
    ));
    assert!(matches!(
        service.pump_replication(),
        Err(ServiceError::NotReplicated)
    ));
}

#[test]
fn background_tick_drains_lag_under_async_group_commit() {
    let tmp = TempDir::new("bg-tick");
    let rcfg = ReplicatedConfig {
        tick_interval: Some(Duration::from_millis(5)),
        ..ReplicatedConfig::new(&tmp.0, 3)
    }
    .async_acks()
    .group_commit(Duration::from_millis(2));
    assert!(matches!(rcfg.sync, SyncPolicy::GroupCommit { .. }));
    let service = CtxPrefService::new_replicated(study_db(), small_cfg(), rcfg)
        .expect("creating the replicated service");
    for i in 0..20 {
        service.add_user(&format!("user{i}")).unwrap();
    }
    // Async acks return before replicas hold the writes; the background
    // tick ships them over within a few intervals.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let stats = service.stats();
        if stats.replication_max_lag == 0 && {
            let d = all_digests(&service);
            d.iter().all(|(_, dig)| dig == &d[0].1)
        } {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replicas never caught up: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // A clean shutdown hands back the local database, users included.
    let db = service.shutdown();
    assert!(db.users_sorted().contains(&"user19"));
}

#[test]
fn replicated_scrub_covers_every_live_node() {
    let tmp = TempDir::new("scrub");
    let service =
        CtxPrefService::new_replicated(study_db(), small_cfg(), manual_rcfg(&tmp.0, 3)).unwrap();
    service
        .insert_preference_eq(
            "alice",
            "accompanying_people = friends",
            "type",
            "museum".into(),
            0.8,
        )
        .unwrap();

    // One service-level pass scrubs all three nodes and merges the
    // reports: three checkpoints verified, nothing quarantined.
    let report = service.scrub().unwrap();
    assert!(!report.found_damage(), "fresh cluster must scrub clean");
    assert_eq!(report.checkpoints_verified, 3);
    let status = service.scrub_status().unwrap();
    assert_eq!((status.passes, status.quarantined), (3, 0));

    // A crashed node is skipped, not an error: quarantine-aware
    // recovery covers it when it restarts.
    service.cluster().unwrap().crash_node(2);
    let report = service.scrub().unwrap();
    assert_eq!(report.checkpoints_verified, 2, "dead node skipped");
    assert_eq!(service.scrub_status().unwrap().passes, 5);
}
