//! Overload-behavior tests: a stalled worker pool must never execute
//! work whose deadline has passed (every caller gets the typed
//! deadline error on time), and the sojourn controller must shed the
//! lowest tiers first while Interactive is never sojourn-shed.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use ctxpref_context::ContextState;
use ctxpref_core::MultiUserDb;
use ctxpref_faults::{sites, FaultPlan};
use ctxpref_service::{CtxPrefService, Priority, ServiceConfig, ServiceError};
use ctxpref_workload::reference::{poi_env, poi_relation};
use ctxpref_workload::user_study::{all_demographics, default_profile};

fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn study_db(users: usize, cache: usize) -> MultiUserDb {
    let env = poi_env();
    let rel = poi_relation(&env, 7, 4);
    let mut db = MultiUserDb::new(env.clone(), rel, cache);
    for (i, demo) in all_demographics().into_iter().take(users).enumerate() {
        let profile = default_profile(&env, db.relation(), demo);
        db.add_user_with_profile(&format!("user{i}"), profile)
            .unwrap();
    }
    db
}

fn state(db: &CtxPrefService, names: &[&str]) -> ContextState {
    db.with_db(|db| ContextState::parse(db.env(), names).unwrap())
}

/// A pool stalled by an injected dequeue delay, fed jobs whose
/// deadlines are far shorter than the stall: every caller must get
/// the typed `DeadlineExceeded` at its own deadline (not after the
/// stall), and NO job may execute — expired work is dropped, never
/// run.
#[test]
fn stalled_pool_executes_nothing_past_the_deadline() {
    let _serial = fault_lock();
    const CALLERS: usize = 8;
    let stall = Duration::from_millis(150);
    let deadline = Duration::from_millis(30);

    let service = CtxPrefService::new(
        study_db(1, 8),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    );
    let s = state(&service, &["Plaka", "warm", "friends"]);

    let _stalled = ctxpref_faults::install(
        FaultPlan::builder(17)
            .delay(sites::SVC_WORKER_DEQUEUE, 1.0, stall)
            .build(),
    );

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CALLERS)
            .map(|_| {
                let service = &service;
                let s = &s;
                scope.spawn(move || {
                    let started = Instant::now();
                    let result = service.query_state_deadline("user0", s, deadline);
                    (result, started.elapsed())
                })
            })
            .collect();
        for h in handles {
            let (result, waited) = h.join().expect("caller thread");
            // Typed, and on time: the caller waits its own remaining
            // budget, not the worker's stall.
            match result {
                Err(ServiceError::DeadlineExceeded { .. }) => {}
                other => panic!("expected DeadlineExceeded, got {other:?}"),
            }
            assert!(
                waited < stall,
                "caller waited {waited:?} — past its {deadline:?} budget and \
                 into the {stall:?} stall"
            );
        }
    });

    // Let the stalled worker chew through the queue, then check the
    // ledger: every job was dropped by one of the no-execution paths
    // (cancelled by its caller, expired at dequeue, or expired by the
    // post-lock re-check) and nothing was ever served.
    let drained = Instant::now() + Duration::from_secs(5);
    loop {
        let stats = service.stats();
        let dropped = stats.cancelled + stats.shed_expired + stats.deadline_after_lock;
        if dropped >= CALLERS as u64 {
            break;
        }
        assert!(
            Instant::now() < drained,
            "queue not drained: {} of {CALLERS} jobs accounted for ({stats:?})",
            dropped
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = service.stats();
    assert_eq!(stats.served(), 0, "an expired job was executed: {stats:?}");
    assert!(
        stats.deadline_exceeded >= CALLERS as u64,
        "every caller's miss is counted: {stats:?}"
    );
}

/// Under a standing queue the sojourn controller sheds Maintenance
/// and Bulk with the typed retryable `Overloaded` — and never
/// Interactive, which only the hard in-flight backstop may refuse.
#[test]
fn sojourn_pressure_sheds_lowest_tiers_first_never_interactive() {
    let _serial = fault_lock();
    let stall = Duration::from_millis(50);

    let service = CtxPrefService::new(
        study_db(1, 8),
        ServiceConfig {
            workers: 1,
            // A tight target and an interval shorter than the standing
            // queue we build, so pressure reaches the bulk-shedding
            // level during the test window.
            codel_target: Duration::from_millis(1),
            codel_interval: Duration::from_millis(100),
            ..ServiceConfig::default()
        },
    );
    let s = state(&service, &["Plaka", "warm", "friends"]);

    let _stalled = ctxpref_faults::install(
        FaultPlan::builder(19)
            .delay(sites::SVC_WORKER_DEQUEUE, 1.0, stall)
            .build(),
    );

    std::thread::scope(|scope| {
        // Ten interactive jobs with generous deadlines keep the queue
        // standing (each pays the stall) while the probes run.
        let preload: Vec<_> = (0..10)
            .map(|_| {
                let service = &service;
                let s = &s;
                scope.spawn(move || {
                    service.query_tiered("user0", s, Duration::from_secs(5), Priority::Interactive)
                })
            })
            .collect();

        // Sojourn crosses the target from the second dequeue on and
        // pressure latches after the interval; probe mid-queue.
        std::thread::sleep(Duration::from_millis(250));

        match service.query_tiered(
            "user0",
            &s,
            Duration::from_millis(100),
            Priority::Maintenance,
        ) {
            Err(ServiceError::Overloaded { retry_after, .. }) => {
                assert!(
                    retry_after > Duration::ZERO,
                    "sojourn shed carries the queue-derived retry hint"
                );
            }
            other => panic!("maintenance not sojourn-shed: {other:?}"),
        }
        match service.query_tiered("user0", &s, Duration::from_millis(100), Priority::Bulk) {
            Err(ServiceError::Overloaded { .. }) => {}
            other => panic!("bulk not shed at sustained pressure: {other:?}"),
        }
        // Interactive is admitted even at full pressure: it may miss
        // its (deliberately short) deadline behind the standing queue,
        // but it must never be sojourn-shed.
        match service.query_tiered(
            "user0",
            &s,
            Duration::from_millis(20),
            Priority::Interactive,
        ) {
            Err(ServiceError::DeadlineExceeded { .. }) => {}
            Ok(_) => {}
            other => panic!("interactive must not be sojourn-shed: {other:?}"),
        }

        for h in preload {
            h.join()
                .expect("preload thread")
                .expect("preload queries finish inside their generous deadline");
        }
    });

    let stats = service.stats();
    assert!(stats.shed_sojourn >= 2, "{stats:?}");
    assert!(stats.shed_maintenance >= 1, "{stats:?}");
    assert!(stats.shed_bulk >= 1, "{stats:?}");
    assert_eq!(stats.shed_interactive, 0, "{stats:?}");
}
