//! End-to-end durability through the service API: mutate a durable
//! service, kill it without a checkpoint, recover, and find every
//! acknowledged write — plus the `NotDurable` contract on plain
//! services and the background maintenance threads.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use ctxpref_core::MultiUserDb;
use ctxpref_service::{CtxPrefService, DurabilityConfig, ServiceConfig, ServiceError, SyncPolicy};
use ctxpref_workload::reference::{poi_env, poi_relation};

/// A fresh directory under the system temp dir; removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "ctxpref-svc-durability-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn study_db() -> MultiUserDb {
    let env = poi_env();
    let rel = poi_relation(&env, 7, 3);
    MultiUserDb::new(env, rel, 8)
}

fn small_cfg() -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        shards: 4,
        ..ServiceConfig::default()
    }
}

/// Manual checkpointing only: the background checkpointer would make
/// the WAL/checkpoint split nondeterministic.
fn manual_dcfg(dir: &std::path::Path) -> DurabilityConfig {
    DurabilityConfig {
        checkpoint_interval: None,
        ..DurabilityConfig::new(dir)
    }
}

#[test]
fn durable_service_survives_a_kill_without_checkpoint() {
    let tmp = TempDir::new("kill");
    let service = CtxPrefService::new_durable(study_db(), small_cfg(), manual_dcfg(&tmp.0))
        .expect("creating the durable service");
    assert!(service.is_durable());

    service.add_user("alice").unwrap();
    service
        .insert_preference_eq(
            "alice",
            "accompanying_people = friends",
            "type",
            "museum".into(),
            0.8,
        )
        .unwrap();
    service.add_user("bob").unwrap();
    service
        .insert_preference_eq(
            "bob",
            "accompanying_people = alone",
            "type",
            "cinema".into(),
            0.5,
        )
        .unwrap();
    service.update_preference_score("alice", 0, 0.3).unwrap();
    let removed = service.remove_preference("bob", 0).unwrap();
    assert_eq!(removed.score(), 0.5);

    let stats = service.stats();
    assert_eq!(stats.wal_appends, 6, "six mutations, six log records");
    assert_eq!(stats.recovered_lsn, 0, "fresh directory: nothing recovered");
    let status = service.wal_status().unwrap();
    assert_eq!(status.appends, 6);
    drop(service); // Kill: no checkpoint was ever taken.

    let (recovered, report) =
        CtxPrefService::recover(small_cfg(), manual_dcfg(&tmp.0)).expect("recovering the service");
    assert_eq!(
        report.generation, 0,
        "recovered from the bootstrap checkpoint"
    );
    assert_eq!(report.replayed, 6);
    assert_eq!(recovered.stats().recovered_lsn, 6);
    let (users, alice_score, bob_prefs) = recovered.with_db(|db| {
        let snap = db.snapshot();
        (
            db.users_sorted(),
            snap.profile("alice").unwrap().preferences()[0].score(),
            snap.profile("bob").unwrap().preferences().len(),
        )
    });
    assert_eq!(users, vec!["alice".to_string(), "bob".to_string()]);
    assert_eq!(alice_score, 0.3, "replayed re-score");
    assert_eq!(bob_prefs, 0, "replayed removal");

    // The recovered service keeps logging: a write after recovery is a
    // fresh append on top of the recovered positions.
    recovered.add_user("carol").unwrap();
    assert_eq!(
        recovered.stats().wal_appends,
        1,
        "appends count since this start"
    );
}

#[test]
fn manual_checkpoint_truncates_replay() {
    let tmp = TempDir::new("ckpt");
    let service = CtxPrefService::new_durable(study_db(), small_cfg(), manual_dcfg(&tmp.0))
        .expect("creating the durable service");
    service.add_user("alice").unwrap();
    service.add_user("bob").unwrap();
    let report = service.checkpoint().unwrap();
    assert_eq!(report.generation, 1);
    assert_eq!(service.stats().checkpoints, 1);
    service.add_user("carol").unwrap();
    drop(service);

    let (recovered, report) = CtxPrefService::recover(small_cfg(), manual_dcfg(&tmp.0)).unwrap();
    assert_eq!(report.generation, 1);
    assert_eq!(report.replayed, 1, "only the post-checkpoint write replays");
    assert!(recovered
        .with_db(|db| db.users_sorted())
        .contains(&"carol".to_string()));
}

#[test]
fn group_commit_flush_is_reported() {
    let tmp = TempDir::new("group");
    let dcfg = manual_dcfg(&tmp.0).group_commit(Duration::from_secs(3600));
    // An interval this long never fires during the test: the only
    // flushes are the explicit ones, so the counts are deterministic.
    let service = CtxPrefService::new_durable(study_db(), small_cfg(), dcfg).unwrap();
    service.add_user("alice").unwrap();
    service.add_user("bob").unwrap();
    assert_eq!(
        service.flush_wal().unwrap(),
        2,
        "both pending records flushed"
    );
    assert_eq!(service.flush_wal().unwrap(), 0, "nothing left to flush");
    assert!(service.stats().group_commit_batches >= 1);
}

#[test]
fn background_checkpointer_runs() {
    let tmp = TempDir::new("bg");
    let dcfg = DurabilityConfig {
        checkpoint_interval: Some(Duration::from_millis(10)),
        ..DurabilityConfig::new(&tmp.0)
    };
    let service = CtxPrefService::new_durable(study_db(), small_cfg(), dcfg).unwrap();
    service.add_user("alice").unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.stats().checkpoints == 0 {
        assert!(
            Instant::now() < deadline,
            "background checkpointer never ran"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    drop(service); // Joins the checkpointer; must not hang or panic.

    let (_, report) = CtxPrefService::recover(small_cfg(), manual_dcfg(&tmp.0)).unwrap();
    assert!(
        report.generation >= 1,
        "background checkpoint not published"
    );
}

#[test]
fn plain_service_rejects_durability_operations() {
    let service = CtxPrefService::new(study_db(), small_cfg());
    assert!(!service.is_durable());
    assert!(matches!(
        service.checkpoint(),
        Err(ServiceError::NotDurable)
    ));
    assert!(matches!(service.flush_wal(), Err(ServiceError::NotDurable)));
    assert!(matches!(
        service.wal_status(),
        Err(ServiceError::NotDurable)
    ));
    assert_eq!(service.stats().wal_appends, 0);
}

#[test]
fn durable_shutdown_returns_the_database() {
    let tmp = TempDir::new("shutdown");
    let service =
        CtxPrefService::new_durable(study_db(), small_cfg(), manual_dcfg(&tmp.0)).unwrap();
    service.add_user("alice").unwrap();
    // shutdown() must reclaim the core even though the durable layer
    // held a reference to it until stop().
    let db = service.shutdown();
    assert!(db.users().any(|u| u == "alice"));
}

#[test]
fn sync_policy_is_observable_in_acks() {
    // Per-record: the WAL syncs inside every append, so a clean kill
    // right after the last mutation loses nothing even without the
    // stop()-time flush.
    let tmp = TempDir::new("policy");
    let dcfg = DurabilityConfig {
        sync: SyncPolicy::PerRecord,
        ..manual_dcfg(&tmp.0)
    };
    let service = CtxPrefService::new_durable(study_db(), small_cfg(), dcfg).unwrap();
    service.add_user("alice").unwrap();
    let status = service.wal_status().unwrap();
    assert!(
        status.shards.iter().all(|s| s.pending == 0),
        "per-record leaves nothing pending"
    );
}

/// A shard directory holding at least two segments, and the path of
/// its lowest-numbered (sealed) segment.
fn a_sealed_segment(dir: &std::path::Path) -> PathBuf {
    for entry in std::fs::read_dir(dir).unwrap() {
        let shard_dir = entry.unwrap().path();
        if !shard_dir.is_dir()
            || !shard_dir
                .file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with("shard-"))
        {
            continue;
        }
        let mut segs: Vec<PathBuf> = std::fs::read_dir(&shard_dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "wal"))
            .collect();
        if segs.len() >= 2 {
            // Zero-padded names: lexicographic min == oldest == sealed.
            segs.sort();
            return segs.remove(0);
        }
    }
    panic!("no shard sealed a segment; grow the workload");
}

#[test]
fn manual_scrub_quarantines_and_heals_through_the_service() {
    let tmp = TempDir::new("scrub");
    let dcfg = DurabilityConfig {
        segment_max_bytes: 256, // Seal segments quickly.
        scrub_interval: None,
        ..manual_dcfg(&tmp.0)
    };
    let service = CtxPrefService::new_durable(study_db(), small_cfg(), dcfg).unwrap();
    for i in 0..40 {
        let user = format!("user-{i:03}");
        service.add_user(&user).unwrap();
        service
            .insert_preference_eq(
                &user,
                "accompanying_people = friends",
                "type",
                "museum".into(),
                0.8,
            )
            .unwrap();
    }

    let clean = service.scrub().unwrap();
    assert!(!clean.found_damage(), "fresh log must scrub clean");
    assert!(clean.segments_verified > 0, "workload sealed no segments");
    let status = service.scrub_status().unwrap();
    assert_eq!((status.passes, status.quarantined, status.heals), (1, 0, 0));

    // Rot one sealed segment at rest, past its 24-byte header.
    let victim = a_sealed_segment(&tmp.0);
    let mut bytes = std::fs::read(&victim).unwrap();
    bytes[30] ^= 0x40;
    std::fs::write(&victim, bytes).unwrap();

    let report = service.scrub().unwrap();
    assert_eq!(
        report.quarantined.len(),
        1,
        "one rotten segment: {report:?}"
    );
    assert!(report.healed, "scrub must checkpoint over the loss");
    assert!(!victim.exists(), "quarantine moves the file aside");
    let status = service.scrub_status().unwrap();
    assert_eq!((status.passes, status.quarantined, status.heals), (2, 1, 1));
    let stats = service.stats();
    assert_eq!((stats.scrub_passes, stats.scrub_quarantined), (2, 1));

    // The healed service still serves, and so does its next recovery.
    assert!(service.with_db(|db| db.users_sorted().len()) == 40);
    drop(service);
    let (recovered, report) =
        CtxPrefService::recover(small_cfg(), manual_dcfg(&tmp.0)).expect("healed dir recovers");
    assert_eq!(report.rescued_shards, 0, "heal made quarantine moot");
    assert_eq!(recovered.with_db(|db| db.users_sorted().len()), 40);
}

#[test]
fn background_scrubber_runs_and_stays_quiet_on_a_clean_db() {
    let tmp = TempDir::new("bg-scrub");
    let dcfg = DurabilityConfig {
        checkpoint_interval: None,
        scrub_interval: Some(Duration::from_millis(10)),
        ..DurabilityConfig::new(&tmp.0)
    };
    let service = CtxPrefService::new_durable(study_db(), small_cfg(), dcfg).unwrap();
    service.add_user("alice").unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.stats().scrub_passes < 2 {
        assert!(Instant::now() < deadline, "background scrubber never ran");
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = service.stats();
    assert_eq!(stats.scrub_quarantined, 0, "clean db: nothing quarantined");
    assert_eq!(stats.scrub_heals, 0, "clean db: nothing to heal");
    drop(service); // Joins the scrubber; must not hang or panic.
}

#[test]
fn plain_service_rejects_scrub_operations() {
    let service = CtxPrefService::new(study_db(), small_cfg());
    assert!(matches!(service.scrub(), Err(ServiceError::NotDurable)));
    assert!(matches!(
        service.scrub_status(),
        Err(ServiceError::NotDurable)
    ));
}
