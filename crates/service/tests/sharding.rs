//! Regression tests for the sharded serving core (PR 2):
//!
//! 1. **Shard isolation** — a write-locked (quiesced) shard must not
//!    block queries for users on other shards: no cross-user blocking
//!    beyond genuine shard collisions.
//! 2. **Post-lock deadline re-check** — a request whose deadline
//!    expires *while waiting for its shard lock* must be answered
//!    `DeadlineExceeded` by the re-check after acquisition (counted in
//!    `deadline_after_lock`), not run a pointless query.
//! 3. **Deadline-capped storage backoff** — a persistently failing
//!    save must give up when the next backoff sleep would cross the
//!    storage deadline, instead of sleeping the full exponential
//!    schedule.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use ctxpref_context::ContextState;
use ctxpref_core::MultiUserDb;
use ctxpref_faults::FaultPlan;
use ctxpref_service::{CtxPrefService, RetryPolicy, ServiceConfig, ServiceError};
use ctxpref_workload::reference::{poi_env, poi_relation};

fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn db_with_users(n: usize) -> MultiUserDb {
    let env = poi_env();
    let rel = poi_relation(&env, 9, 5);
    let mut db = MultiUserDb::new(env, rel, 16);
    for i in 0..n {
        db.add_user(&format!("user{i}")).unwrap();
    }
    db
}

/// Two users on provably different shards of the service's core.
fn cross_shard_pair(service: &CtxPrefService, n: usize) -> (String, String) {
    service.with_db(|db| {
        let a = "user0".to_string();
        let b = (1..n)
            .map(|i| format!("user{i}"))
            .find(|u| db.shard_of(u) != db.shard_of(&a))
            .expect("enough users to span two shards");
        (a, b)
    })
}

#[test]
fn quiesced_shard_does_not_block_other_shards() {
    let _serial = fault_lock();
    let n = 32;
    let cfg = ServiceConfig {
        workers: 4,
        default_deadline: Duration::from_millis(500),
        ..ServiceConfig::default()
    };
    let service = CtxPrefService::new(db_with_users(n), cfg);
    let (blocked_user, free_user) = cross_shard_pair(&service, n);
    let state = service.with_db(|db| ContextState::all(db.env()));

    service.with_db(|db| {
        let _quiesce = db.quiesce_user(&blocked_user);
        // Users on every *other* shard keep answering well inside the
        // deadline while one shard is held for writing.
        for _ in 0..20 {
            let started = Instant::now();
            service
                .query_state(&free_user, &state)
                .expect("other-shard query must succeed during quiesce");
            assert!(
                started.elapsed() < Duration::from_millis(500),
                "other-shard query must not wait on the quiesced shard"
            );
        }
        // The quiesced user's own shard is genuinely blocked: a short
        // deadline expires while the worker waits on the shard lock.
        let err = service
            .query_state_deadline(&blocked_user, &state, Duration::from_millis(50))
            .unwrap_err();
        assert!(
            matches!(err, ServiceError::DeadlineExceeded { .. }),
            "got {err:?}"
        );
    });

    // Released: the blocked user's shard serves again.
    let answer = service.query_state(&blocked_user, &state).unwrap();
    assert!(!answer.is_degraded());

    // The blocked worker observed lock contention; once the shard was
    // released it re-checked the deadline after acquisition.
    let deadline = Duration::from_millis(250);
    let wait_for = Instant::now() + Duration::from_secs(5);
    loop {
        let s = service.stats();
        if s.deadline_after_lock >= 1 && s.lock_wait_micros > 0 {
            break;
        }
        assert!(
            Instant::now() < wait_for,
            "post-lock deadline re-check never fired: {s:?}"
        );
        std::thread::sleep(deadline / 10);
    }
}

#[test]
fn deadline_expiring_during_lock_wait_is_counted_post_lock() {
    let _serial = fault_lock();
    let n = 8;
    let cfg = ServiceConfig {
        workers: 2,
        default_deadline: Duration::from_millis(200),
        ..ServiceConfig::default()
    };
    let service = CtxPrefService::new(db_with_users(n), cfg);
    let state = service.with_db(|db| ContextState::all(db.env()));
    let user = "user0".to_string();

    let before = service.stats();
    service.with_db(|db| {
        let quiesce = db.quiesce_user(&user);
        // The caller gives up at 40ms; the worker is still parked on
        // the shard lock at that point.
        let err = service
            .query_state_deadline(&user, &state, Duration::from_millis(40))
            .unwrap_err();
        assert!(matches!(err, ServiceError::DeadlineExceeded { .. }));
        // Hold the shard a little longer so the deadline is long past
        // when the worker finally acquires it.
        std::thread::sleep(Duration::from_millis(60));
        drop(quiesce);
    });

    // The worker wakes, acquires the shard, re-checks the deadline, and
    // books the miss as post-lock — without running the ladder.
    let wait_for = Instant::now() + Duration::from_secs(5);
    loop {
        let s = service.stats();
        if s.deadline_after_lock > before.deadline_after_lock {
            assert!(s.lock_wait_micros > before.lock_wait_micros);
            // No rung was run for the doomed request: it produced no
            // served answer.
            assert_eq!(s.served(), before.served());
            break;
        }
        assert!(
            Instant::now() < wait_for,
            "deadline_after_lock never incremented: {s:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn storage_backoff_is_capped_by_the_storage_deadline() {
    let _serial = fault_lock();
    let cfg = ServiceConfig {
        workers: 1,
        // Without the cap this schedule sleeps 50 + 100 + ... + 3200 ms
        // ≈ 6.3 s; the deadline cuts it off after the first sleep.
        retry: RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(50),
        },
        storage_deadline: Duration::from_millis(120),
        ..ServiceConfig::default()
    };
    let service = CtxPrefService::new(db_with_users(2), cfg);
    let path = std::env::temp_dir().join(format!("ctxpref-shard-retry-{}.db", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // Every save attempt fails with a (retryable) injected I/O error.
    let plan = FaultPlan::builder(7).fail("storage.save.open", 1.0).build();
    let started = Instant::now();
    let result = plan.run(|| service.save(&path));
    let elapsed = started.elapsed();

    let err = result.unwrap_err();
    assert!(
        matches!(err, ServiceError::DeadlineExceeded { deadline } if deadline == Duration::from_millis(120)),
        "expected the capped retry to surface DeadlineExceeded, got {err:?}"
    );
    assert!(
        elapsed < Duration::from_secs(2),
        "retry loop slept past the storage deadline: {elapsed:?}"
    );
    // It did retry before giving up (the first backoff fits the cap).
    assert!(service.stats().storage_retries >= 1);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn saves_do_not_block_queries() {
    let _serial = fault_lock();
    let n = 16;
    let cfg = ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    };
    let service = CtxPrefService::new(db_with_users(n), cfg);
    let state = service.with_db(|db| ContextState::all(db.env()));
    let path = std::env::temp_dir().join(format!("ctxpref-shard-save-{}.db", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // A save that retries with real sleeps (fault fails the first two
    // openings) while queries keep flowing: the snapshot is taken up
    // front, so no shard lock is held across the I/O and retries.
    let plan = FaultPlan::builder(11)
        .fail_at("storage.save.open", &[0, 1])
        .build();
    plan.run(|| {
        std::thread::scope(|scope| {
            let service = &service;
            let save_path = &path;
            let saver = scope.spawn(move || service.save(save_path));
            for i in 0..50 {
                let user = format!("user{}", i % n);
                service
                    .query_state(&user, &state)
                    .expect("queries proceed during save");
            }
            saver.join().unwrap().expect("save succeeds after retries");
        });
    });
    assert!(path.exists());
    let reopened = ctxpref_storage::load_multi_user(&path).unwrap();
    assert_eq!(reopened.user_count(), n);
    let _ = std::fs::remove_file(&path);
}
