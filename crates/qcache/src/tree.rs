use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ctxpref_context::{ContextEnvironment, ContextState, CtxValue, ParamId};
use ctxpref_relation::RankedResults;
use parking_lot::RwLock;

use crate::stats::CacheStats;

#[derive(Debug, Clone, Copy)]
struct Cell {
    key: CtxValue,
    child: u32,
}

#[derive(Debug, Default)]
struct Node {
    cells: Vec<Cell>,
}

#[derive(Debug)]
struct Leaf {
    state: ContextState,
    results: Arc<RankedResults>,
    /// LRU stamp, bumped atomically so cache *hits* need only the
    /// shared read lock.
    last_used: AtomicU64,
}

/// Statistics counters, atomic so the hit path can update them under
/// the read lock.
#[derive(Debug, Default)]
struct AtomicStats {
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    cells_accessed: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            cells_accessed: self.cells_accessed.load(Ordering::Relaxed),
        }
    }
}

#[derive(Debug)]
struct Inner {
    nodes: Vec<Node>,
    free_nodes: Vec<u32>,
    leaves: Vec<Option<Leaf>>,
    free_leaves: Vec<u32>,
    live: usize,
    /// Lazy eviction heap: `(stamp, leaf index)` min-first. A popped
    /// entry whose stamp no longer matches the leaf's `last_used` is
    /// stale (the leaf was touched since) and is re-pushed with the
    /// current stamp — O(log n) amortized eviction instead of an
    /// O(live) scan.
    evict_heap: BinaryHeap<Reverse<(u64, u32)>>,
}

/// The context query tree: a capacity-bounded, LRU-evicting trie from
/// context states to cached [`RankedResults`]. See the crate docs.
///
/// Concurrency: lookups (including LRU bookkeeping and statistics) take
/// only the shared read lock — concurrent hits do not serialize. Only
/// `insert`, `remove`, and `invalidate_all` take the write lock.
#[derive(Debug)]
pub struct ContextQueryTree {
    env: ContextEnvironment,
    capacity: usize,
    clock: AtomicU64,
    stats: AtomicStats,
    inner: RwLock<Inner>,
}

impl ContextQueryTree {
    /// A cache over `env` holding at most `capacity` context states
    /// (`capacity` ≥ 1 is enforced by clamping).
    pub fn new(env: ContextEnvironment, capacity: usize) -> Self {
        Self {
            env,
            capacity: capacity.max(1),
            clock: AtomicU64::new(0),
            stats: AtomicStats::default(),
            inner: RwLock::new(Inner {
                nodes: vec![Node::default()],
                free_nodes: Vec::new(),
                leaves: Vec::new(),
                free_leaves: Vec::new(),
                live: 0,
                evict_heap: BinaryHeap::new(),
            }),
        }
    }

    /// The context environment the cache is keyed over.
    pub fn env(&self) -> &ContextEnvironment {
        &self.env
    }

    /// Maximum number of cached states.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached context states.
    pub fn len(&self) -> usize {
        self.inner.read().live
    }

    /// True iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }

    /// Look up the cached results for `state`, refreshing its LRU stamp
    /// on a hit. Takes only the shared read lock: concurrent hits
    /// proceed in parallel, with the LRU clock bumped atomically.
    pub fn get(&self, state: &ContextState) -> Option<Arc<RankedResults>> {
        debug_assert_eq!(state.len(), self.env.len());
        // Fault site: an injected fault means "cache unavailable" — the
        // lookup degrades to a miss and the caller recomputes.
        if ctxpref_faults::hit("qcache.get").is_err() {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let inner = self.inner.read();
        let depth = self.env.len();
        let mut node = 0usize;
        let mut cells = 0u64;
        for level in 0..depth {
            let key = state.value(ParamId(level as u16));
            let nc = &inner.nodes[node].cells;
            let mut found = None;
            for (i, c) in nc.iter().enumerate() {
                if c.key == key {
                    cells += i as u64 + 1;
                    found = Some(c.child);
                    break;
                }
            }
            let Some(child) = found else {
                cells += nc.len() as u64;
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .cells_accessed
                    .fetch_add(cells, Ordering::Relaxed);
                return None;
            };
            if level + 1 == depth {
                let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
                let leaf = inner.leaves[child as usize]
                    .as_ref()
                    .expect("cache cells never point to freed leaves");
                // `fetch_max`, not `store`: racing hits must leave the
                // newest stamp, whatever order they land in.
                leaf.last_used.fetch_max(stamp, Ordering::Relaxed);
                let results = Arc::clone(&leaf.results);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .cells_accessed
                    .fetch_add(cells, Ordering::Relaxed);
                return Some(results);
            }
            node = child as usize;
        }
        unreachable!("environments have ≥ 1 parameter")
    }

    /// Cache `results` for `state`, evicting the least-recently-used
    /// state if the capacity bound would be exceeded. Replaces any
    /// previous entry for the same state.
    pub fn insert(&self, state: &ContextState, results: Arc<RankedResults>) {
        debug_assert_eq!(state.len(), self.env.len());
        // Fault site: an injected fault drops the insertion (the cache
        // stays consistent, merely colder).
        if ctxpref_faults::hit("qcache.insert").is_err() {
            return;
        }
        let mut inner = self.inner.write();
        let clock = self.clock.fetch_add(1, Ordering::Relaxed) + 1;

        // Walk/create the path.
        let depth = self.env.len();
        let mut node = 0usize;
        for level in 0..depth {
            let key = state.value(ParamId(level as u16));
            let bottom = level + 1 == depth;
            let existing = inner.nodes[node]
                .cells
                .iter()
                .find(|c| c.key == key)
                .map(|c| c.child);
            let child = match existing {
                Some(c) => c,
                None => {
                    let c = if bottom {
                        match inner.free_leaves.pop() {
                            Some(i) => i,
                            None => {
                                inner.leaves.push(None);
                                (inner.leaves.len() - 1) as u32
                            }
                        }
                    } else {
                        match inner.free_nodes.pop() {
                            Some(i) => {
                                inner.nodes[i as usize].cells.clear();
                                i
                            }
                            None => {
                                inner.nodes.push(Node::default());
                                (inner.nodes.len() - 1) as u32
                            }
                        }
                    };
                    inner.nodes[node].cells.push(Cell { key, child: c });
                    c
                }
            };
            if bottom {
                if inner.leaves[child as usize].is_none() {
                    inner.live += 1;
                }
                inner.leaves[child as usize] = Some(Leaf {
                    state: state.clone(),
                    results,
                    last_used: AtomicU64::new(clock),
                });
                inner.evict_heap.push(Reverse((clock, child)));
                self.stats.insertions.fetch_add(1, Ordering::Relaxed);
                break;
            }
            node = child as usize;
        }

        // Enforce capacity via the lazy heap. Under the write lock no
        // hit can race the stamp comparison.
        while inner.live > self.capacity {
            let Reverse((stamp, idx)) = inner
                .evict_heap
                .pop()
                .expect("every live leaf has at least one heap entry with stamp ≤ its last_used");
            let Some(leaf) = inner.leaves[idx as usize].as_ref() else {
                continue; // stale entry for a removed/freed leaf
            };
            let current = leaf.last_used.load(Ordering::Relaxed);
            if current != stamp {
                // Touched since this entry was pushed: re-queue at its
                // current recency and keep looking.
                inner.evict_heap.push(Reverse((current, idx)));
                continue;
            }
            let victim = leaf.state.clone();
            Self::remove_locked(&self.env, &mut inner, &victim);
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        }

        // Replacement-heavy workloads accumulate stale heap entries
        // without triggering evictions; compact before the heap dwarfs
        // the live set.
        if inner.evict_heap.len() > 4 * inner.live.max(self.capacity) + 8 {
            let rebuilt: BinaryHeap<Reverse<(u64, u32)>> = inner
                .leaves
                .iter()
                .enumerate()
                .filter_map(|(i, l)| {
                    l.as_ref()
                        .map(|l| Reverse((l.last_used.load(Ordering::Relaxed), i as u32)))
                })
                .collect();
            inner.evict_heap = rebuilt;
        }
    }

    /// Convenience: return the cached results for `state`, computing and
    /// caching them on a miss.
    pub fn get_or_compute(
        &self,
        state: &ContextState,
        compute: impl FnOnce() -> RankedResults,
    ) -> Arc<RankedResults> {
        if let Some(hit) = self.get(state) {
            return hit;
        }
        let results = Arc::new(compute());
        self.insert(state, Arc::clone(&results));
        results
    }

    /// Remove one cached state, if present. Returns whether it existed.
    pub fn remove(&self, state: &ContextState) -> bool {
        let mut inner = self.inner.write();
        Self::remove_locked(&self.env, &mut inner, state)
    }

    /// Drop every cached result (a profile change invalidates all
    /// cached rankings).
    pub fn invalidate_all(&self) {
        let mut inner = self.inner.write();
        inner.nodes.clear();
        inner.nodes.push(Node::default());
        inner.free_nodes.clear();
        inner.leaves.clear();
        inner.free_leaves.clear();
        inner.live = 0;
        inner.evict_heap.clear();
        self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    fn remove_locked(env: &ContextEnvironment, inner: &mut Inner, state: &ContextState) -> bool {
        let depth = env.len();
        // Record the path (node index, cell position) root → bottom.
        let mut path: Vec<(usize, usize)> = Vec::with_capacity(depth);
        let mut node = 0usize;
        for level in 0..depth {
            let key = state.value(ParamId(level as u16));
            let Some(pos) = inner.nodes[node].cells.iter().position(|c| c.key == key) else {
                return false;
            };
            let child = inner.nodes[node].cells[pos].child;
            path.push((node, pos));
            if level + 1 == depth {
                if inner.leaves[child as usize].take().is_none() {
                    return false;
                }
                inner.free_leaves.push(child);
                inner.live -= 1;
            } else {
                node = child as usize;
            }
        }
        // Prune now-empty nodes bottom-up.
        for level in (0..depth).rev() {
            let (node, pos) = path[level];
            let child = inner.nodes[node].cells[pos].child;
            let child_empty = level + 1 == depth || inner.nodes[child as usize].cells.is_empty();
            if child_empty {
                inner.nodes[node].cells.swap_remove(pos);
                if level + 1 < depth {
                    inner.free_nodes.push(child);
                }
            } else {
                break;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxpref_hierarchy::Hierarchy;
    use ctxpref_relation::{ScoreCombiner, ScoredTuple};

    fn env() -> ContextEnvironment {
        ContextEnvironment::new(vec![
            Hierarchy::flat("weather", &["cold", "warm", "hot"]).unwrap(),
            Hierarchy::flat("company", &["friends", "family"]).unwrap(),
        ])
        .unwrap()
    }

    fn results(score: f64) -> RankedResults {
        RankedResults::from_scores(
            vec![ScoredTuple {
                tuple_index: 0,
                score,
            }],
            ScoreCombiner::Max,
        )
    }

    fn st(env: &ContextEnvironment, names: &[&str]) -> ContextState {
        ContextState::parse(env, names).unwrap()
    }

    #[test]
    fn miss_then_hit() {
        let env = env();
        let cache = ContextQueryTree::new(env.clone(), 8);
        let s = st(&env, &["warm", "friends"]);
        assert!(cache.get(&s).is_none());
        cache.insert(&s, Arc::new(results(0.5)));
        let hit = cache.get(&s).unwrap();
        assert_eq!(hit.entries()[0].score, 0.5);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert!(stats.cells_accessed > 0);
        assert!((stats.hit_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn distinct_states_do_not_collide() {
        let env = env();
        let cache = ContextQueryTree::new(env.clone(), 8);
        cache.insert(&st(&env, &["warm", "friends"]), Arc::new(results(0.1)));
        cache.insert(&st(&env, &["warm", "family"]), Arc::new(results(0.2)));
        cache.insert(&st(&env, &["cold", "friends"]), Arc::new(results(0.3)));
        assert_eq!(cache.len(), 3);
        assert_eq!(
            cache.get(&st(&env, &["warm", "family"])).unwrap().entries()[0].score,
            0.2
        );
        assert!(cache.get(&st(&env, &["hot", "family"])).is_none());
    }

    #[test]
    fn reinsert_replaces() {
        let env = env();
        let cache = ContextQueryTree::new(env.clone(), 8);
        let s = st(&env, &["warm", "friends"]);
        cache.insert(&s, Arc::new(results(0.1)));
        cache.insert(&s, Arc::new(results(0.9)));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&s).unwrap().entries()[0].score, 0.9);
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        let env = env();
        let cache = ContextQueryTree::new(env.clone(), 2);
        let a = st(&env, &["cold", "friends"]);
        let b = st(&env, &["warm", "friends"]);
        let c = st(&env, &["hot", "friends"]);
        cache.insert(&a, Arc::new(results(0.1)));
        cache.insert(&b, Arc::new(results(0.2)));
        // Touch `a` so `b` becomes the LRU victim.
        cache.get(&a).unwrap();
        cache.insert(&c, Arc::new(results(0.3)));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&a).is_some());
        assert!(cache.get(&b).is_none());
        assert!(cache.get(&c).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn remove_and_prune() {
        let env = env();
        let cache = ContextQueryTree::new(env.clone(), 8);
        let a = st(&env, &["cold", "friends"]);
        let b = st(&env, &["cold", "family"]);
        cache.insert(&a, Arc::new(results(0.1)));
        cache.insert(&b, Arc::new(results(0.2)));
        assert!(cache.remove(&a));
        assert!(!cache.remove(&a));
        assert!(cache.get(&a).is_none());
        assert!(cache.get(&b).is_some());
        // Re-inserting after pruning reuses freed slots.
        cache.insert(&a, Arc::new(results(0.4)));
        assert_eq!(cache.get(&a).unwrap().entries()[0].score, 0.4);
    }

    #[test]
    fn invalidate_all_clears() {
        let env = env();
        let cache = ContextQueryTree::new(env.clone(), 8);
        cache.insert(&st(&env, &["cold", "friends"]), Arc::new(results(0.1)));
        cache.insert(&st(&env, &["warm", "family"]), Arc::new(results(0.2)));
        cache.invalidate_all();
        assert!(cache.is_empty());
        assert!(cache.get(&st(&env, &["cold", "friends"])).is_none());
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn get_or_compute_computes_once() {
        let env = env();
        let cache = ContextQueryTree::new(env.clone(), 8);
        let s = st(&env, &["warm", "friends"]);
        let mut calls = 0;
        let r1 = cache.get_or_compute(&s, || {
            calls += 1;
            results(0.7)
        });
        let r2 = cache.get_or_compute(&s, || {
            calls += 1;
            results(0.0)
        });
        assert_eq!(calls, 1);
        assert!(Arc::ptr_eq(&r1, &r2));
    }

    #[test]
    fn capacity_is_clamped() {
        let env = env();
        let cache = ContextQueryTree::new(env.clone(), 0);
        assert_eq!(cache.capacity(), 1);
        cache.insert(&st(&env, &["cold", "friends"]), Arc::new(results(0.1)));
        cache.insert(&st(&env, &["warm", "friends"]), Arc::new(results(0.2)));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.env().len(), 2);
    }

    /// Regression (PR 2): cache hits must not serialize on the write
    /// lock. A reader-held *read* lock cannot block other hits, so
    /// hits issued while a read guard is held elsewhere still complete
    /// and still bump LRU recency.
    #[test]
    fn hits_proceed_under_shared_read_lock() {
        let env = env();
        let cache = Arc::new(ContextQueryTree::new(env.clone(), 4));
        let a = st(&env, &["cold", "friends"]);
        let b = st(&env, &["warm", "friends"]);
        cache.insert(&a, Arc::new(results(0.1)));
        cache.insert(&b, Arc::new(results(0.2)));
        // Hold a shared read lock for the duration of the probe hits.
        let guard = cache.inner.read();
        crossbeam::scope(|scope| {
            let cache = Arc::clone(&cache);
            let a = a.clone();
            let handle = scope.spawn(move |_| {
                for _ in 0..100 {
                    assert!(cache.get(&a).is_some());
                }
            });
            handle.join().unwrap();
        })
        .unwrap();
        drop(guard);
        assert_eq!(cache.stats().hits, 100);
        // The hits under the read lock refreshed `a`'s recency: insert
        // two more states and `b` (not `a`) must be evicted first.
        let c = st(&env, &["hot", "friends"]);
        let d = st(&env, &["cold", "family"]);
        let e = st(&env, &["warm", "family"]);
        cache.insert(&c, Arc::new(results(0.3)));
        cache.insert(&d, Arc::new(results(0.4)));
        cache.insert(&e, Arc::new(results(0.5)));
        assert!(
            cache.get(&a).is_some(),
            "recently-hit state survived eviction"
        );
        assert!(cache.get(&b).is_none(), "stale state was the LRU victim");
    }

    #[test]
    fn concurrent_access_is_safe() {
        let env = env();
        let cache = Arc::new(ContextQueryTree::new(env.clone(), 4));
        let states: Vec<ContextState> = [
            ["cold", "friends"],
            ["warm", "friends"],
            ["hot", "friends"],
            ["cold", "family"],
            ["warm", "family"],
            ["hot", "family"],
        ]
        .iter()
        .map(|n| st(&env, n))
        .collect();
        crossbeam::scope(|scope| {
            for t in 0..4 {
                let cache = Arc::clone(&cache);
                let states = states.clone();
                scope.spawn(move |_| {
                    for i in 0..200 {
                        let s = &states[(i + t) % states.len()];
                        let _ = cache.get_or_compute(s, || results(i as f64 / 200.0));
                        if i % 7 == 0 {
                            cache.remove(s);
                        }
                    }
                });
            }
        })
        .unwrap();
        assert!(cache.len() <= 4);
        let stats = cache.stats();
        assert!(stats.hits + stats.misses >= 800 - 200);
    }
}
