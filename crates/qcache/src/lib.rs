#![warn(missing_docs)]
//! The **context query tree**: caching contextual query results keyed
//! by their context state.
//!
//! The paper's summary lists two context-aware index structures: the
//! profile tree "for (a) storing preferences" and a second tree for
//! "(b) caching the results of queries based on their context". This
//! crate implements that second structure.
//!
//! A [`ContextQueryTree`] is a trie with one level per context
//! parameter — the same shape as the profile tree — whose leaves hold
//! the ranked results previously computed for that exact context state.
//! Repeated queries under the same context (the common case: a user's
//! context changes slowly relative to their query rate) are answered
//! from the cache without touching the profile or the database.
//!
//! * Capacity-bounded with LRU eviction.
//! * Invalidated wholesale when the profile changes (any preference
//!   insert/delete/update can change any cached ranking).
//! * Thread-safe: readers of cached results share `Arc`s; the structure
//!   itself is guarded by a `parking_lot::RwLock`.

mod stats;
mod tree;

pub use stats::CacheStats;
pub use tree::ContextQueryTree;
