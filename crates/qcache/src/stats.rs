/// Hit/miss statistics of a [`crate::ContextQueryTree`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found no cached result.
    pub misses: u64,
    /// Results inserted.
    pub insertions: u64,
    /// Cached states evicted to respect the capacity bound.
    pub evictions: u64,
    /// Wholesale invalidations (profile changes).
    pub invalidations: u64,
    /// Trie cells examined across all lookups (comparable to the
    /// profile tree's cell-access metric).
    pub cells_accessed: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache, `0.0` when none
    /// have been made.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio() {
        let mut s = CacheStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        s.hits = 3;
        s.misses = 1;
        assert_eq!(s.hit_ratio(), 0.75);
    }
}
