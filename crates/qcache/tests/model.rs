//! Model-based testing: the context query tree must behave exactly like
//! a reference model (a hash map with LRU bookkeeping) under arbitrary
//! operation sequences.

use std::collections::HashMap;
use std::sync::Arc;

use ctxpref_context::{ContextEnvironment, ContextState};
use ctxpref_hierarchy::Hierarchy;
use ctxpref_qcache::ContextQueryTree;
use ctxpref_relation::{RankedResults, ScoreCombiner, ScoredTuple};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Get(usize),
    Insert(usize, u8),
    Remove(usize),
    InvalidateAll,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0usize..24).prop_map(Op::Get),
        4 => ((0usize..24), any::<u8>()).prop_map(|(s, v)| Op::Insert(s, v)),
        1 => (0usize..24).prop_map(Op::Remove),
        1 => Just(Op::InvalidateAll),
    ]
}

/// Reference model: map + monotone clock for LRU.
#[derive(Default)]
struct Model {
    entries: HashMap<usize, (u8, u64)>,
    clock: u64,
    capacity: usize,
}

impl Model {
    fn get(&mut self, k: usize) -> Option<u8> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(&k).map(|(v, used)| {
            *used = clock;
            *v
        })
    }

    fn insert(&mut self, k: usize, v: u8) {
        self.clock += 1;
        let clock = self.clock;
        self.entries.insert(k, (v, clock));
        while self.entries.len() > self.capacity {
            let victim = *self
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k)
                .unwrap();
            self.entries.remove(&victim);
        }
    }

    fn remove(&mut self, k: usize) -> bool {
        self.entries.remove(&k).is_some()
    }
}

fn env() -> ContextEnvironment {
    ContextEnvironment::new(vec![
        Hierarchy::balanced("a", &[6]).unwrap(),
        Hierarchy::balanced("b", &[4]).unwrap(),
    ])
    .unwrap()
}

fn state(env: &ContextEnvironment, k: usize) -> ContextState {
    let ha = env.hierarchy(ctxpref_context::ParamId(0));
    let hb = env.hierarchy(ctxpref_context::ParamId(1));
    let da = ha.domain(ha.detailed_level());
    let db = hb.domain(hb.detailed_level());
    ContextState::from_values_unchecked(vec![da[k % da.len()], db[(k / da.len()) % db.len()]])
}

fn results(v: u8) -> Arc<RankedResults> {
    Arc::new(RankedResults::from_scores(
        vec![ScoredTuple {
            tuple_index: v as usize,
            score: v as f64 / 255.0,
        }],
        ScoreCombiner::Max,
    ))
}

fn value_of(r: &RankedResults) -> u8 {
    r.entries()[0].tuple_index as u8
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_matches_reference_model(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        capacity in 1usize..12,
    ) {
        let env = env();
        let cache = ContextQueryTree::new(env.clone(), capacity);
        let mut model = Model { capacity, ..Model::default() };

        for op in ops {
            match op {
                Op::Get(k) => {
                    let got = cache.get(&state(&env, k)).map(|r| value_of(&r));
                    let expected = model.get(k);
                    prop_assert_eq!(got, expected, "get diverged at key {}", k);
                }
                Op::Insert(k, v) => {
                    cache.insert(&state(&env, k), results(v));
                    model.insert(k, v);
                }
                Op::Remove(k) => {
                    let removed = cache.remove(&state(&env, k));
                    let expected = model.remove(k);
                    prop_assert_eq!(removed, expected, "remove diverged at key {}", k);
                }
                Op::InvalidateAll => {
                    cache.invalidate_all();
                    model.entries.clear();
                }
            }
            prop_assert_eq!(cache.len(), model.entries.len(), "sizes diverged");
            prop_assert!(cache.len() <= capacity);
        }

        // Final sweep: every model entry is retrievable with its value.
        let keys: Vec<usize> = model.entries.keys().copied().collect();
        for k in keys {
            let got = cache.get(&state(&env, k)).map(|r| value_of(&r));
            prop_assert_eq!(got, model.get(k));
        }
    }
}
