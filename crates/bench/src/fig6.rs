//! Figure 6: profile-tree size over synthetic profiles.
//!
//! * **Left**: total cells vs. number of preferences (500–10000),
//!   uniform value distribution, six orderings of domains 50/100/1000
//!   plus serial.
//! * **Center**: the same with Zipf(1.5) values.
//! * **Right**: 5000 preferences over domains 50/100/200 with the
//!   200-value parameter Zipf(a), a ∈ {0, 0.5, …, 3.5}; three orderings
//!   (50,100,200), (50,200,100), (200,50,100) — under high skew it pays
//!   to move the skewed large domain *up* the tree.

use ctxpref_context::ContextEnvironment;
use ctxpref_profile::{ParamOrder, ProfileTree, SerialStore};
use ctxpref_workload::synthetic::{SyntheticSpec, ValueDist};

use crate::tablefmt::render;
use crate::{render_checks, ShapeCheck};

/// Profile sizes of the left/center panels.
pub const PROFILE_SIZES: [usize; 4] = [500, 1000, 5000, 10000];

/// The six orderings of the (50, 100, 1000)-domain parameters, by the
/// paper's numbering (values name the domain sizes, root level first).
pub const ORDERINGS: [(&str, [usize; 3]); 6] = [
    ("order 1", [0, 1, 2]), // (50, 100, 1000)
    ("order 2", [0, 2, 1]), // (50, 1000, 100)
    ("order 3", [1, 0, 2]), // (100, 50, 1000)
    ("order 4", [1, 2, 0]), // (100, 1000, 50)
    ("order 5", [2, 0, 1]), // (1000, 50, 100)
    ("order 6", [2, 1, 0]), // (1000, 100, 50)
];

/// One (profile size → cells) series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Ordering (or "serial") label.
    pub label: String,
    /// `(num_prefs, total_cells)` points.
    pub points: Vec<(usize, usize)>,
}

/// Left or center panel.
#[derive(Debug, Clone)]
pub struct Fig6Panel {
    /// "uniform" or "zipf a=…".
    pub dist_label: String,
    /// One series per ordering plus the serial baseline.
    pub series: Vec<Series>,
}

/// Right panel: cells vs. Zipf exponent for three orderings.
#[derive(Debug, Clone)]
pub struct Fig6Skew {
    /// `a` values swept.
    pub a_values: Vec<f64>,
    /// Per-ordering series of cells, same length as `a_values`.
    pub series: Vec<(String, Vec<usize>)>,
}

fn order_of(env: &ContextEnvironment, perm: &[usize]) -> ParamOrder {
    ParamOrder::new(
        env,
        perm.iter()
            .map(|&i| ctxpref_context::ParamId(i as u16))
            .collect(),
    )
    .expect("permutations are valid orders")
}

/// Run the left (uniform) or center (zipf) panel.
pub fn run_panel(dist: ValueDist, seed: u64) -> Fig6Panel {
    let dist_label = match dist {
        ValueDist::Uniform => "uniform".to_string(),
        ValueDist::Zipf(a) => format!("zipf a={a}"),
    };
    let mut series: Vec<Series> = ORDERINGS
        .iter()
        .map(|(label, _)| Series {
            label: (*label).to_string(),
            points: Vec::new(),
        })
        .collect();
    series.push(Series {
        label: "serial".to_string(),
        points: Vec::new(),
    });

    for &n in &PROFILE_SIZES {
        let spec = SyntheticSpec::paper_standard(n, dist, seed);
        let env = spec.build_env();
        let profile = spec.build_profile(&env);
        for (i, (_, perm)) in ORDERINGS.iter().enumerate() {
            let tree = ProfileTree::from_profile(&profile, order_of(&env, perm))
                .expect("synthetic profiles are conflict-free");
            series[i].points.push((n, tree.stats().total_cells()));
        }
        let serial = SerialStore::from_profile(&profile).unwrap();
        series
            .last_mut()
            .unwrap()
            .points
            .push((n, serial.total_cells()));
    }
    Fig6Panel { dist_label, series }
}

/// Run the right panel: sweep the Zipf exponent of the 200-value
/// parameter.
pub fn run_skew_sweep(seed: u64) -> Fig6Skew {
    let a_values: Vec<f64> = (0..8).map(|i| i as f64 * 0.5).collect();
    // Orderings of the (50, 100, 200) domains: the paper's order 1 =
    // (50, 100, 200), order 2 = (50, 200, 100), order 3 = (200, 50, 100).
    let orderings: [(&str, [usize; 3]); 3] = [
        ("order 1", [0, 1, 2]),
        ("order 2", [0, 2, 1]),
        ("order 3", [2, 0, 1]),
    ];
    let mut series: Vec<(String, Vec<usize>)> = orderings
        .iter()
        .map(|(l, _)| ((*l).to_string(), Vec::new()))
        .collect();
    for &a in &a_values {
        let spec = SyntheticSpec {
            domains: vec![vec![50], vec![100, 10], vec![200, 20]],
            dists: vec![ValueDist::Uniform, ValueDist::Uniform, ValueDist::Zipf(a)],
            num_prefs: 5000,
            clause_values: 100,
            seed,
        };
        let env = spec.build_env();
        let profile = spec.build_profile(&env);
        for (i, (_, perm)) in orderings.iter().enumerate() {
            let tree = ProfileTree::from_profile(&profile, order_of(&env, perm)).unwrap();
            series[i].1.push(tree.stats().total_cells());
        }
    }
    Fig6Skew { a_values, series }
}

impl Fig6Panel {
    /// The qualitative claims of the left/center panels.
    pub fn shape_checks(&self) -> Vec<ShapeCheck> {
        let mut checks = Vec::new();
        let at = |label: &str, n: usize| -> usize {
            self.series
                .iter()
                .find(|s| s.label == label)
                .and_then(|s| s.points.iter().find(|(x, _)| *x == n))
                .map(|(_, c)| *c)
                .unwrap_or(0)
        };
        let n = *PROFILE_SIZES.last().unwrap();
        // Ascending-domain order (order 1) beats descending (order 6).
        checks.push(ShapeCheck::new(
            format!("{}: order 1 ≤ order 6 at {n} prefs", self.dist_label),
            at("order 1", n) <= at("order 6", n),
            format!("{} vs {}", at("order 1", n), at("order 6", n)),
        ));
        // Every ordering beats serial at every size.
        let serial = self.series.iter().find(|s| s.label == "serial").unwrap();
        let all_beat = self.series.iter().filter(|s| s.label != "serial").all(|s| {
            s.points
                .iter()
                .zip(&serial.points)
                .all(|((_, c), (_, sc))| c <= sc)
        });
        checks.push(ShapeCheck::new(
            format!("{}: every ordering ≤ serial", self.dist_label),
            all_beat,
            format!("serial at {n}: {}", at("serial", n)),
        ));
        // Cells grow with profile size.
        let monotone = self
            .series
            .iter()
            .all(|s| s.points.windows(2).all(|w| w[0].1 <= w[1].1));
        checks.push(ShapeCheck::new(
            format!("{}: cells grow with profile size", self.dist_label),
            monotone,
            "all series monotone non-decreasing".to_string(),
        ));
        checks
    }

    /// Render the panel as a table.
    pub fn render(&self) -> String {
        let mut rows = vec![{
            let mut h = vec!["ordering".to_string()];
            h.extend(PROFILE_SIZES.iter().map(|n| format!("{n} prefs")));
            h
        }];
        for s in &self.series {
            let mut r = vec![s.label.clone()];
            r.extend(s.points.iter().map(|(_, c)| c.to_string()));
            rows.push(r);
        }
        let mut out = format!(
            "Figure 6 ({}) — total cells vs profile size, domains 50/100/1000\n",
            self.dist_label
        );
        out.push_str(&render(&rows));
        out.push_str(&render_checks(&self.shape_checks()));
        out
    }
}

impl Fig6Skew {
    /// The qualitative claims of the skew sweep.
    pub fn shape_checks(&self) -> Vec<ShapeCheck> {
        let find = |label: &str| self.series.iter().find(|(l, _)| l == label).unwrap();
        let (_, o1) = find("order 1");
        let (_, o3) = find("order 3");
        let mut checks = Vec::new();
        // Low skew: the big domain belongs at the bottom (order 1 wins).
        checks.push(ShapeCheck::new(
            "a = 0: big domain at the bottom wins",
            o1.first() <= o3.first(),
            format!(
                "order 1 {} vs order 3 {}",
                o1.first().unwrap(),
                o3.first().unwrap()
            ),
        ));
        // High skew: moving the skewed 200-domain up pays off
        // (order 3 ≤ order 1 at the highest a).
        checks.push(ShapeCheck::new(
            "a = 3.5: skewed domain higher in the tree wins",
            o3.last() <= o1.last(),
            format!(
                "order 3 {} vs order 1 {}",
                o3.last().unwrap(),
                o1.last().unwrap()
            ),
        ));
        // Higher skew shrinks every ordering (fewer distinct values).
        let shrinks = self
            .series
            .iter()
            .all(|(_, cells)| cells.first() >= cells.last());
        checks.push(ShapeCheck::new(
            "skew shrinks the tree",
            shrinks,
            "cells(a=3.5) ≤ cells(a=0) for every ordering".to_string(),
        ));
        checks
    }

    /// Render the sweep as a table.
    pub fn render(&self) -> String {
        let mut rows = vec![{
            let mut h = vec!["ordering".to_string()];
            h.extend(self.a_values.iter().map(|a| format!("a={a}")));
            h
        }];
        for (label, cells) in &self.series {
            let mut r = vec![label.clone()];
            r.extend(cells.iter().map(|c| c.to_string()));
            rows.push(r);
        }
        let mut out = String::from(
            "Figure 6 (right) — cells vs zipf exponent, 5000 prefs, domains 50/100/200 (200 skewed)\n",
        );
        out.push_str(&render(&rows));
        out.push_str(&render_checks(&self.shape_checks()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scaled-down panel for fast tests.
    fn mini_panel(dist: ValueDist) -> Fig6Panel {
        let mut series: Vec<Series> = ORDERINGS
            .iter()
            .map(|(label, _)| Series {
                label: (*label).to_string(),
                points: Vec::new(),
            })
            .collect();
        series.push(Series {
            label: "serial".to_string(),
            points: Vec::new(),
        });
        for &n in &PROFILE_SIZES[..2] {
            let spec = SyntheticSpec::paper_standard(n, dist, 7);
            let env = spec.build_env();
            let profile = spec.build_profile(&env);
            for (i, (_, perm)) in ORDERINGS.iter().enumerate() {
                let tree = ProfileTree::from_profile(&profile, order_of(&env, perm)).unwrap();
                series[i].points.push((n, tree.stats().total_cells()));
            }
            let serial = SerialStore::from_profile(&profile).unwrap();
            series
                .last_mut()
                .unwrap()
                .points
                .push((n, serial.total_cells()));
        }
        Fig6Panel {
            dist_label: "test".into(),
            series,
        }
    }

    #[test]
    fn orderings_beat_serial_and_ascending_wins() {
        for dist in [ValueDist::Uniform, ValueDist::Zipf(1.5)] {
            let p = mini_panel(dist);
            let at = |label: &str, idx: usize| {
                p.series.iter().find(|s| s.label == label).unwrap().points[idx].1
            };
            for idx in 0..2 {
                assert!(at("order 1", idx) <= at("order 6", idx));
                for s in &p.series {
                    if s.label != "serial" {
                        assert!(
                            s.points[idx].1 <= at("serial", idx),
                            "{} vs serial",
                            s.label
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn zipf_trees_are_smaller_than_uniform() {
        let u = mini_panel(ValueDist::Uniform);
        let z = mini_panel(ValueDist::Zipf(1.5));
        let at = |p: &Fig6Panel, label: &str, idx: usize| {
            p.series.iter().find(|s| s.label == label).unwrap().points[idx].1
        };
        // "hot" values repeat → fewer cells (paper's center-vs-left claim).
        assert!(at(&z, "order 1", 1) < at(&u, "order 1", 1));
    }

    #[test]
    fn skew_sweep_shape() {
        // Reduced sweep for speed: endpoints only.
        let mk = |a: f64| {
            let spec = SyntheticSpec {
                domains: vec![vec![50], vec![100, 10], vec![200, 20]],
                dists: vec![ValueDist::Uniform, ValueDist::Uniform, ValueDist::Zipf(a)],
                num_prefs: 2000,
                clause_values: 100,
                seed: 5,
            };
            let env = spec.build_env();
            let profile = spec.build_profile(&env);
            let o1 = ProfileTree::from_profile(&profile, order_of(&env, &[0, 1, 2])).unwrap();
            let o3 = ProfileTree::from_profile(&profile, order_of(&env, &[2, 0, 1])).unwrap();
            (o1.stats().total_cells(), o3.stats().total_cells())
        };
        let (o1_lo, o3_lo) = mk(0.0);
        let (o1_hi, o3_hi) = mk(3.5);
        assert!(
            o1_lo <= o3_lo,
            "no skew: big domain at bottom wins ({o1_lo} vs {o3_lo})"
        );
        assert!(
            o3_hi <= o1_hi,
            "high skew: skewed domain up wins ({o3_hi} vs {o1_hi})"
        );
    }
}
