//! DAG-compression ablation: the paper defines the profile tree as a
//! DAG; sharing structurally identical subtrees (hash-consing) trades
//! build time for space. This experiment measures the compression ratio
//! on the real profile and on synthetic profiles of growing size and
//! skew, and verifies that resolution is unaffected.

use ctxpref_context::DistanceKind;
use ctxpref_profile::{AccessCounter, ParamOrder, ProfileTree};
use ctxpref_workload::real_profile::{real_profile, real_profile_env};
use ctxpref_workload::synthetic::{random_query_states, SyntheticSpec, ValueDist};

use crate::tablefmt::render;
use crate::{render_checks, ShapeCheck};

/// One measured workload.
#[derive(Debug, Clone)]
pub struct DagRow {
    /// Workload label.
    pub label: String,
    /// Total cells of the plain profile tree.
    pub tree_cells: usize,
    /// Total cells after DAG compression.
    pub dag_cells: usize,
    /// Bytes of the plain tree under the documented cost model.
    pub tree_bytes: usize,
    /// Bytes after DAG compression.
    pub dag_bytes: usize,
}

impl DagRow {
    /// Compression ratio `dag_cells / tree_cells` (< 1 is a win).
    pub fn ratio(&self) -> f64 {
        self.dag_cells as f64 / self.tree_cells.max(1) as f64
    }
}

/// The experiment result.
#[derive(Debug, Clone)]
pub struct DagExp {
    /// One row per measured workload.
    pub rows: Vec<DagRow>,
}

fn measure(label: &str, tree: &ProfileTree) -> DagRow {
    let dag = tree.compress();
    let t = tree.stats();
    let d = dag.stats();
    DagRow {
        label: label.to_string(),
        tree_cells: t.total_cells(),
        dag_cells: d.total_cells(),
        tree_bytes: t.total_bytes(),
        dag_bytes: d.total_bytes(),
    }
}

/// Run on the real profile and on synthetic uniform/zipf profiles.
pub fn run(seed: u64) -> DagExp {
    let mut rows = Vec::new();

    let env = real_profile_env();
    let profile = real_profile(&env, seed);
    let tree = ProfileTree::from_profile(&profile, ParamOrder::by_ascending_domain(&env))
        .expect("real profile is conflict-free");
    rows.push(measure("real profile (522)", &tree));

    for (label, dist) in [
        ("synthetic uniform", ValueDist::Uniform),
        ("synthetic zipf 1.5", ValueDist::Zipf(1.5)),
        ("synthetic zipf 3.0", ValueDist::Zipf(3.0)),
    ] {
        let spec = SyntheticSpec {
            domains: vec![vec![50], vec![100, 10], vec![200, 20]],
            dists: vec![ValueDist::Uniform, ValueDist::Uniform, dist],
            num_prefs: 5000,
            clause_values: 20,
            seed,
        };
        let senv = spec.build_env();
        let sprofile = spec.build_profile(&senv);
        let stree =
            ProfileTree::from_profile(&sprofile, ParamOrder::by_ascending_domain(&senv)).unwrap();
        rows.push(measure(&format!("{label} (5000)"), &stree));
    }
    DagExp { rows }
}

/// Resolution equivalence: the DAG answers exactly like the tree.
pub fn verify_equivalence(seed: u64) -> bool {
    let spec = SyntheticSpec::paper_standard(1000, ValueDist::Zipf(1.5), seed);
    let env = spec.build_env();
    let profile = spec.build_profile(&env);
    let tree = ProfileTree::from_profile(&profile, ParamOrder::by_ascending_domain(&env)).unwrap();
    let dag = tree.compress();
    for q in random_query_states(&env, 50, 0.5, seed ^ 5) {
        let mut c1 = AccessCounter::new();
        let mut c2 = AccessCounter::new();
        let mut a: Vec<String> = tree
            .search_cs(&q, DistanceKind::Hierarchy, &mut c1)
            .into_iter()
            .map(|c| format!("{}@{:.9}", c.state.display(&env), c.distance))
            .collect();
        let mut b: Vec<String> = dag
            .search_cs(&q, DistanceKind::Hierarchy, &mut c2)
            .into_iter()
            .map(|c| format!("{}@{:.9}", c.state.display(&env), c.distance))
            .collect();
        a.sort();
        b.sort();
        if a != b {
            return false;
        }
    }
    true
}

impl DagExp {
    /// The qualitative claims of the ablation.
    pub fn shape_checks(&self) -> Vec<ShapeCheck> {
        let mut checks = Vec::new();
        checks.push(ShapeCheck::new(
            "DAG never larger than the tree",
            self.rows.iter().all(|r| r.dag_cells <= r.tree_cells),
            "dag cells ≤ tree cells on every workload",
        ));
        checks.push(ShapeCheck::new(
            "compression is effective on every workload",
            self.rows.iter().all(|r| r.ratio() < 1.0),
            "dag/tree ratio < 1 everywhere",
        ));
        // Wide (uniform) trees contain the most structurally identical
        // sparse subtrees, so they save the most absolute cells; skew
        // already deduplicates values at the *tree* level, leaving less
        // for hash-consing to reclaim.
        let uniform = self
            .rows
            .iter()
            .find(|r| r.label.contains("uniform"))
            .unwrap();
        let skewed = self.rows.iter().find(|r| r.label.contains("3.0")).unwrap();
        checks.push(ShapeCheck::new(
            "widest tree saves the most absolute cells",
            uniform.tree_cells - uniform.dag_cells >= skewed.tree_cells - skewed.dag_cells,
            format!(
                "saved {} (uniform) vs {} (zipf 3.0)",
                uniform.tree_cells - uniform.dag_cells,
                skewed.tree_cells - skewed.dag_cells
            ),
        ));
        checks
    }

    /// Render the compression table.
    pub fn render(&self) -> String {
        let mut rows = vec![crate::row![
            "workload",
            "tree cells",
            "dag cells",
            "tree bytes",
            "dag bytes",
            "dag/tree"
        ]];
        for r in &self.rows {
            rows.push(crate::row![
                r.label,
                r.tree_cells,
                r.dag_cells,
                r.tree_bytes,
                r.dag_bytes,
                format!("{:.2}", r.ratio())
            ]);
        }
        let mut out =
            String::from("DAG compression ablation — shared-subtree profile tree (§3.3 'DAG')\n");
        out.push_str(&render(&rows));
        out.push_str(&render_checks(&self.shape_checks()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dag_compresses_and_answers_identically() {
        let exp = run(9);
        for c in exp.shape_checks() {
            assert!(c.pass, "{}: {}", c.name, c.detail);
        }
        assert!(verify_equivalence(9));
        assert!(exp.render().contains("dag/tree"));
    }
}
