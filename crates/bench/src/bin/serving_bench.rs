//! Serving-core benchmark driver: global-lock vs sharded core (PR 2),
//! WAL fsync policies (PR 3), replication ack modes (PR 4), the
//! loopback network path (PR 5), and the routing tier with live
//! migration (PR 6).
//!
//! ```text
//! cargo run -p ctxpref-bench --release --bin serving_bench               # serving run → BENCH_PR2.json
//! cargo run -p ctxpref-bench --release --bin serving_bench -- --durability # fsync policies → BENCH_PR3.json
//! cargo run -p ctxpref-bench --release --bin serving_bench -- --replication # ack modes + failover → BENCH_PR4.json
//! cargo run -p ctxpref-bench --release --bin serving_bench -- --net      # pipelined loopback vs in-process → BENCH_PR7.json
//! cargo run -p ctxpref-bench --release --bin serving_bench -- --router   # routing tier + migration → BENCH_PR6.json
//! cargo run -p ctxpref-bench --release --bin serving_bench -- --scrub    # scrub overhead on the append path → BENCH_PR8.json
//! cargo run -p ctxpref-bench --release --bin serving_bench -- --storm    # open-loop overload storm with fault timeline → BENCH_PR9.json
//! cargo run -p ctxpref-bench --release --bin serving_bench -- --views    # materialized top-k views vs qcache → BENCH_PR10.json
//! cargo run -p ctxpref-bench --release --bin serving_bench -- --quick    # CI smoke (short window, no hard gate)
//! cargo run -p ctxpref-bench --release --bin serving_bench -- --out path.json
//! ```
//!
//! In a full run a failed check exits non-zero, so regressions in the
//! serving core's concurrency story (or the log's group-commit
//! amortization) fail loudly. `--quick` shrinks the measurement window
//! and reports without gating (short windows on loaded CI machines are
//! too noisy to gate on).

use std::time::Duration;

use ctxpref_bench::durability::{self, DurabilityBenchConfig};
use ctxpref_bench::net::{self, NetBenchConfig};
use ctxpref_bench::replication::{self, ReplicationBenchConfig};
use ctxpref_bench::router::{self, RouterBenchConfig};
use ctxpref_bench::scrub::{self, ScrubBenchConfig};
use ctxpref_bench::serving::{self, ServingBenchConfig};
use ctxpref_bench::storm::{self, StormBenchConfig};
use ctxpref_bench::views::{self, ViewsBenchConfig};
use ctxpref_bench::ShapeCheck;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let durability_mode = args.iter().any(|a| a == "--durability");
    let replication_mode = args.iter().any(|a| a == "--replication");
    let net_mode = args.iter().any(|a| a == "--net");
    let router_mode = args.iter().any(|a| a == "--router");
    let scrub_mode = args.iter().any(|a| a == "--scrub");
    let storm_mode = args.iter().any(|a| a == "--storm");
    let views_mode = args.iter().any(|a| a == "--views");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            if views_mode {
                "BENCH_PR10.json"
            } else if storm_mode {
                "BENCH_PR9.json"
            } else if scrub_mode {
                "BENCH_PR8.json"
            } else if router_mode {
                "BENCH_PR6.json"
            } else if net_mode {
                "BENCH_PR7.json"
            } else if replication_mode {
                "BENCH_PR4.json"
            } else if durability_mode {
                "BENCH_PR3.json"
            } else {
                "BENCH_PR2.json"
            }
            .to_string()
        });

    let (rendered, json, checks): (String, String, Vec<ShapeCheck>) = if views_mode {
        let mut cfg = ViewsBenchConfig::default();
        if quick {
            cfg.window = Duration::from_millis(250);
        }
        let report = views::run(cfg);
        (report.render(), report.to_json(), report.checks)
    } else if storm_mode {
        let mut cfg = StormBenchConfig::default();
        if quick {
            cfg = cfg.quick();
        }
        let report = storm::run(cfg);
        (report.render(), report.to_json(), report.checks)
    } else if scrub_mode {
        let mut cfg = ScrubBenchConfig::default();
        if quick {
            cfg.window = Duration::from_millis(250);
        }
        let report = scrub::run(cfg);
        (report.render(), report.to_json(), report.checks)
    } else if router_mode {
        let mut cfg = RouterBenchConfig::default();
        if quick {
            cfg.window = Duration::from_millis(250);
            cfg.write_load = Duration::from_millis(300);
        }
        let report = router::run(cfg);
        (report.render(), report.to_json(), report.checks)
    } else if net_mode {
        let mut cfg = NetBenchConfig::default();
        if quick {
            cfg.window = Duration::from_millis(250);
        }
        let report = net::run(cfg);
        (report.render(), report.to_json(), report.checks)
    } else if replication_mode {
        let mut cfg = ReplicationBenchConfig::default();
        if quick {
            cfg.window = Duration::from_millis(250);
        }
        let report = replication::run(cfg);
        (report.render(), report.to_json(), report.checks)
    } else if durability_mode {
        let mut cfg = DurabilityBenchConfig::default();
        if quick {
            cfg.window = Duration::from_millis(250);
        }
        let report = durability::run(cfg);
        (report.render(), report.to_json(), report.checks)
    } else {
        let mut cfg = ServingBenchConfig::default();
        if quick {
            cfg.window = Duration::from_millis(250);
        }
        let report = serving::run(cfg);
        (report.render(), report.to_json(), report.checks)
    };
    print!("{rendered}");

    std::fs::write(&out_path, json).expect("writing the benchmark JSON");
    println!("wrote {out_path}");

    if !quick && checks.iter().any(|c| !c.pass) {
        eprintln!("benchmark checks failed");
        std::process::exit(1);
    }
}
