//! Serving-core benchmark driver (PR 2): global-lock vs sharded core.
//!
//! ```text
//! cargo run -p ctxpref-bench --release --bin serving_bench            # full run → BENCH_PR2.json
//! cargo run -p ctxpref-bench --release --bin serving_bench -- --quick # CI smoke (short window, no hard gate)
//! cargo run -p ctxpref-bench --release --bin serving_bench -- --out path.json
//! ```
//!
//! In a full run a failed check exits non-zero, so regressions in the
//! sharded core's concurrency story fail loudly. `--quick` shrinks the
//! measurement window and reports without gating (short windows on
//! loaded CI machines are too noisy to gate on).

use std::time::Duration;

use ctxpref_bench::serving::{self, ServingBenchConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR2.json".to_string());

    let mut cfg = ServingBenchConfig::default();
    if quick {
        cfg.window = Duration::from_millis(250);
    }

    let report = serving::run(cfg);
    print!("{}", report.render());

    std::fs::write(&out_path, report.to_json()).expect("writing the benchmark JSON");
    println!("wrote {out_path}");

    if !quick && report.checks.iter().any(|c| !c.pass) {
        eprintln!("benchmark checks failed");
        std::process::exit(1);
    }
}
