//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p ctxpref-bench --bin repro --release -- all
//! cargo run -p ctxpref-bench --bin repro --release -- table1 fig5 fig6 fig7 complexity qcache
//! ```

use ctxpref_bench::{complexity, dag_exp, fig5, fig6, fig7, qcache_exp, table1, ties_exp};
use ctxpref_workload::synthetic::ValueDist;

const SEED: u64 = 2007; // ICDE 2007

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let targets: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "table1",
            "fig5",
            "fig6",
            "fig7",
            "complexity",
            "qcache",
            "dag",
            "ties",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };

    for target in targets {
        match target {
            "table1" => {
                let report = table1::run(SEED);
                println!("{}", table1::render_report(&report));
            }
            "fig5" => {
                println!("{}", fig5::run(SEED).render());
            }
            "fig6" => {
                println!("{}", fig6::run_panel(ValueDist::Uniform, SEED).render());
                println!("{}", fig6::run_panel(ValueDist::Zipf(1.5), SEED).render());
                println!("{}", fig6::run_skew_sweep(SEED).render());
            }
            "fig7" => {
                println!("{}", fig7::run_real(SEED).render());
                println!("{}", fig7::run_synthetic(true, SEED).render());
                println!("{}", fig7::run_synthetic(false, SEED).render());
            }
            "complexity" => {
                println!("{}", complexity::run(5000, SEED).render());
            }
            "qcache" => {
                println!("{}", qcache_exp::run(SEED).render());
                println!("{}", qcache_exp::render_walk(&qcache_exp::run_walk(SEED)));
            }
            "ties" => {
                println!("{}", ties_exp::run(SEED).render());
            }
            "dag" => {
                let exp = dag_exp::run(SEED);
                println!("{}", exp.render());
                println!(
                    "  [{}] DAG resolution equivalence — identical Search_CS results on 50 queries\n",
                    if dag_exp::verify_equivalence(SEED) { "PASS" } else { "FAIL" }
                );
            }
            other => {
                eprintln!(
                    "unknown target {other:?} — expected all, table1, fig5, fig6, fig7, \
                     complexity, qcache, dag, or ties"
                );
                std::process::exit(2);
            }
        }
    }
}
