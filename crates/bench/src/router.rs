//! Router benchmark (PR 6): the routing tier's forwarding overhead,
//! live migration under write load, and recovery when a primary dies
//! mid-migration.
//!
//! Three measurements:
//!
//! 1. **Routed vs direct** — the same users queried through a plain
//!    `NetClient` pinned to each owning cluster, then through the
//!    router (table lookup, breaker gate, retry wrapper). Both paths
//!    cross the same loopback sockets, so the gap is the router layer
//!    itself; the gate is a sanity factor, not parity.
//! 2. **Migration under load** — a writer hammers one user through a
//!    cloned router while the user live-migrates between clusters. The
//!    report carries the acked-write count, the cut-over fence window,
//!    and the proof that every acked write survived the move.
//! 3. **Kill during migration** — the source is a replicated cluster
//!    whose primary is crashed while the copy runs; the driver must
//!    ride through the failover and land the user intact.
//!
//! Run via `cargo run -p ctxpref-bench --release --bin serving_bench --
//! --router`, which emits `BENCH_PR6.json`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ctxpref_core::MultiUserDb;
use ctxpref_net::{NetClient, NetClientConfig, NetServer, NetServerConfig};
use ctxpref_router::{Router, RouterConfig, RouterError};
use ctxpref_service::{CtxPrefService, DurabilityConfig, ReplicatedConfig, ServiceConfig};
use ctxpref_wal::{tiny_env, tiny_relation};

use crate::ShapeCheck;

/// Workload knobs for the router benchmark.
#[derive(Debug, Clone, Copy)]
pub struct RouterBenchConfig {
    /// Registered users spread over the two clusters.
    pub users: usize,
    /// Result size per query.
    pub k: usize,
    /// Per-request deadline on both paths.
    pub deadline: Duration,
    /// Measurement window per path.
    pub window: Duration,
    /// Preferences seeded onto the migrating user before the move.
    pub seed_prefs: usize,
    /// How long the concurrent writer keeps hammering the migrating
    /// user.
    pub write_load: Duration,
}

impl Default for RouterBenchConfig {
    fn default() -> Self {
        Self {
            users: 8,
            k: 3,
            deadline: Duration::from_millis(250),
            window: Duration::from_millis(1500),
            seed_prefs: 64,
            write_load: Duration::from_millis(600),
        }
    }
}

/// Throughput and latency of one query path.
#[derive(Debug, Clone, Copy)]
pub struct PathThroughput {
    /// Completed queries in the window.
    pub queries: u64,
    /// Queries per second.
    pub qps: f64,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
}

/// What one live migration under write load looked like.
#[derive(Debug, Clone, Copy)]
pub struct MigrationUnderLoad {
    /// Writes the router acked while the migration ran.
    pub acked_writes: u64,
    /// Writes refused past the retry budget (never applied, never
    /// counted).
    pub refused_writes: u64,
    /// The cut-over fence window — how long the user's writes were
    /// fenced, microseconds.
    pub fence_us: u64,
    /// Catch-up pages replayed.
    pub pages: u64,
    /// Wall-clock of the whole migration, microseconds.
    pub total_us: u64,
    /// Whether every acked write (plus the seed) was on the
    /// destination afterwards.
    pub all_writes_survived: bool,
}

/// Recovery from a primary kill in the middle of a migration.
#[derive(Debug, Clone, Copy)]
pub struct KillRecovery {
    /// Whether the migration completed despite the kill.
    pub completed: bool,
    /// Snapshot restarts the driver needed.
    pub restarts: u32,
    /// Wall-clock from kill issue to migration completion,
    /// microseconds.
    pub total_us: u64,
    /// Whether the user (with every seeded preference) was intact on
    /// the destination.
    pub user_intact: bool,
}

/// Full router-benchmark report.
#[derive(Debug)]
pub struct RouterBenchReport {
    /// The configuration that produced the numbers.
    pub config: RouterBenchConfig,
    /// Plain `NetClient` pinned to each owning cluster.
    pub direct: PathThroughput,
    /// The same queries through the router.
    pub routed: PathThroughput,
    /// direct/routed throughput ratio (the cost of the routing tier).
    pub routing_overhead: f64,
    /// The migration-under-load measurement.
    pub migration: MigrationUnderLoad,
    /// The kill-during-migration measurement.
    pub kill: KillRecovery,
    /// Pass/fail claims.
    pub checks: Vec<ShapeCheck>,
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

fn throughput(samples_us: &mut [u64], window: Duration) -> PathThroughput {
    samples_us.sort_unstable();
    PathThroughput {
        queries: samples_us.len() as u64,
        qps: samples_us.len() as f64 / window.as_secs_f64(),
        p50_us: percentile(samples_us, 0.50),
        p99_us: percentile(samples_us, 0.99),
    }
}

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("ctxpref-bench-router-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn durable_cluster(dir: &std::path::Path) -> (Arc<CtxPrefService>, NetServer) {
    let db = MultiUserDb::new(tiny_env(), tiny_relation(), 4);
    let mut dcfg = DurabilityConfig::new(dir);
    dcfg.checkpoint_interval = None;
    let service = Arc::new(
        CtxPrefService::new_durable(db, ServiceConfig::default(), dcfg)
            .expect("durable bench cluster"),
    );
    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&service),
        NetServerConfig::default(),
    )
    .expect("bind loopback");
    (service, server)
}

/// Run the full router benchmark.
pub fn run(cfg: RouterBenchConfig) -> RouterBenchReport {
    // --- routed vs direct -------------------------------------------
    let tmp_a = TempDir::new("ovh-a");
    let tmp_b = TempDir::new("ovh-b");
    let (_service_a, server_a) = durable_cluster(&tmp_a.0);
    let (_service_b, server_b) = durable_cluster(&tmp_b.0);
    let addrs = [
        server_a.local_addr().to_string(),
        server_b.local_addr().to_string(),
    ];
    let mut router = Router::new(
        vec![vec![addrs[0].clone()], vec![addrs[1].clone()]],
        RouterConfig::default(),
    );
    for i in 0..cfg.users {
        let user = format!("user{i}");
        router.add_user(&user).expect("seeding a bench user");
        // "alpha" is a live tuple in `tiny_relation`, so the queries
        // below rank (and return) a real row.
        router
            .insert_preference(&user, "*", "name", "alpha", 0.8)
            .expect("seeding a bench preference");
    }
    let owners: Vec<usize> = (0..cfg.users)
        .map(|i| router.cluster_of(&format!("user{i}")))
        .collect();

    // Direct: a plain client pinned to each cluster, user → its owner.
    let mut direct_clients = [
        NetClient::connect(addrs[0].clone(), NetClientConfig::default()),
        NetClient::connect(addrs[1].clone(), NetClientConfig::default()),
    ];
    let state = ["low"];
    let mut samples = Vec::new();
    let deadline = Instant::now() + cfg.window;
    let mut n = 0usize;
    while Instant::now() < deadline {
        let i = n % cfg.users;
        let user = format!("user{i}");
        let started = Instant::now();
        let answer = direct_clients[owners[i]]
            .query(&user, "name", cfg.k, cfg.deadline, &state)
            .expect("direct bench query");
        samples.push(started.elapsed().as_micros() as u64);
        assert!(!answer.rows.is_empty(), "the bench query must produce rows");
        n += 1;
    }
    let direct = throughput(&mut samples, cfg.window);

    // Routed: the same queries through the routing tier.
    let mut samples = Vec::new();
    let deadline = Instant::now() + cfg.window;
    let mut n = 0usize;
    while Instant::now() < deadline {
        let user = format!("user{}", n % cfg.users);
        let started = Instant::now();
        let answer = router
            .query(&user, "name", cfg.k, cfg.deadline, &state)
            .expect("routed bench query");
        samples.push(started.elapsed().as_micros() as u64);
        assert!(
            !answer.rows.is_empty(),
            "the routed query must produce rows"
        );
        n += 1;
    }
    let routed = throughput(&mut samples, cfg.window);
    let routing_overhead = if routed.qps > 0.0 {
        direct.qps / routed.qps
    } else {
        f64::INFINITY
    };

    // --- migration under write load ---------------------------------
    let user = "mover";
    router.add_user(user).expect("the migrating user");
    for i in 0..cfg.seed_prefs {
        router
            .insert_preference(user, "*", "name", &format!("seed-{i}"), 0.5)
            .expect("seeding the migrating user");
    }
    let dest = 1 - router.cluster_of(user);
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let mut router = router.clone();
        let stop = Arc::clone(&stop);
        let load = cfg.write_load;
        std::thread::spawn(move || {
            let started = Instant::now();
            let mut acked = 0u64;
            let mut refused = 0u64;
            let mut i = 0u64;
            while started.elapsed() < load && !stop.load(Ordering::Relaxed) {
                match router.insert_preference("mover", "*", "name", &format!("live-{i}"), 0.5) {
                    Ok(()) => acked += 1,
                    Err(RouterError::UserMigrating { .. }) => refused += 1,
                    Err(e) => panic!("writer hit a non-migration error: {e}"),
                }
                i += 1;
                std::thread::sleep(Duration::from_micros(500));
            }
            (acked, refused)
        })
    };
    std::thread::sleep(Duration::from_millis(20));
    let started = Instant::now();
    let report = router
        .migrate_user(user, dest)
        .expect("migration under load");
    let total_us = started.elapsed().as_micros() as u64;
    let (acked_writes, refused_writes) = writer.join().expect("writer thread");
    stop.store(true, Ordering::Relaxed);
    // Writes issued after the flip landed on the destination too; count
    // what the destination holds vs everything ever acked.
    let services = [&_service_a, &_service_b];
    let final_prefs = services[dest].with_db(|db| {
        db.profile(user)
            .map(|p| p.preferences().len() as u64)
            .unwrap_or(0)
    });
    let migration = MigrationUnderLoad {
        acked_writes,
        refused_writes,
        fence_us: report.fence.as_micros() as u64,
        pages: report.pages,
        total_us,
        all_writes_survived: final_prefs == cfg.seed_prefs as u64 + acked_writes,
    };
    server_a.shutdown();
    server_b.shutdown();

    // --- kill during migration --------------------------------------
    let tmp_src = TempDir::new("kill-src");
    let tmp_dst = TempDir::new("kill-dst");
    let src_db = MultiUserDb::new(tiny_env(), tiny_relation(), 4);
    let mut rcfg = ReplicatedConfig::new(&tmp_src.0, 3);
    rcfg.heartbeat_threshold = 2;
    let src_service = Arc::new(
        CtxPrefService::new_replicated(src_db, ServiceConfig::default(), rcfg)
            .expect("replicated source"),
    );
    let src_server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&src_service),
        NetServerConfig::default(),
    )
    .expect("bind source");
    let (dst_service, dst_server) = durable_cluster(&tmp_dst.0);
    // The driver must ride through the failover (auto-promotion takes a
    // few background ticks), so give it a real retry budget.
    let mut router = Router::new(
        vec![
            vec![src_server.local_addr().to_string()],
            vec![dst_server.local_addr().to_string()],
        ],
        RouterConfig {
            transient_retries: 40,
            transient_backoff: Duration::from_millis(10),
            ..RouterConfig::default()
        },
    );
    // Pin the victim to the replicated cluster regardless of its ring
    // home, then seed it.
    let victim = (0..)
        .map(|i| format!("victim{i}"))
        .find(|u| router.cluster_of(u) == 0)
        .expect("some user homes on cluster 0");
    router.add_user(&victim).expect("the victim user");
    for i in 0..cfg.seed_prefs {
        router
            .insert_preference(&victim, "*", "name", &format!("seed-{i}"), 0.5)
            .expect("seeding the victim");
    }
    // Kill the source primary just as the copy starts.
    let killer = {
        let service = Arc::clone(&src_service);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            service.cluster().expect("replicated").crash_primary();
        })
    };
    let started = Instant::now();
    let outcome = router.migrate_user(&victim, 1);
    let total_us = started.elapsed().as_micros() as u64;
    killer.join().expect("killer thread");
    let (completed, restarts, kill_error) = match &outcome {
        Ok(r) => (r.moved, r.restarts, String::new()),
        Err(e) => (false, 0, format!(" error: {e}")),
    };
    let user_intact = dst_service.with_db(|db| {
        db.profile(&victim)
            .map(|p| p.preferences().len() == cfg.seed_prefs)
            .unwrap_or(false)
    });
    let kill = KillRecovery {
        completed,
        restarts,
        total_us,
        user_intact,
    };
    src_server.shutdown();
    dst_server.shutdown();

    let checks = vec![
        ShapeCheck::new(
            "routed queries within 3× of direct client queries",
            routed.qps > 0.0 && routing_overhead <= 3.0,
            format!(
                "direct {:.0} q/s vs routed {:.0} q/s ({routing_overhead:.2}× routing cost)",
                direct.qps, routed.qps
            ),
        ),
        ShapeCheck::new(
            "no acked write lost across a migration under load",
            migration.all_writes_survived,
            format!(
                "{} acked + {} seed prefs on the destination ({} refused during the fence)",
                migration.acked_writes, cfg.seed_prefs, migration.refused_writes
            ),
        ),
        ShapeCheck::new(
            "cut-over fence stays under 250 ms",
            migration.fence_us < 250_000,
            format!("fence window {} µs", migration.fence_us),
        ),
        ShapeCheck::new(
            "migration completes despite a primary kill mid-copy",
            kill.completed && kill.user_intact,
            format!(
                "completed={} intact={} after {} restarts in {} µs{kill_error}",
                kill.completed, kill.user_intact, kill.restarts, kill.total_us
            ),
        ),
    ];
    RouterBenchReport {
        config: cfg,
        direct,
        routed,
        routing_overhead,
        migration,
        kill,
        checks,
    }
}

impl RouterBenchReport {
    /// Human-readable summary.
    pub fn render(&self) -> String {
        let path = |name: &str, p: &PathThroughput| {
            format!(
                "  {name:<12} {:>7.0} q/s  (p50 {} µs, p99 {} µs, {} queries)\n",
                p.qps, p.p50_us, p.p99_us, p.queries
            )
        };
        let mut out = String::new();
        out.push_str(&format!(
            "router tier: {} users, k={}, {:?} deadline, {:?} window per path\n",
            self.config.users, self.config.k, self.config.deadline, self.config.window
        ));
        out.push_str(&path("direct:", &self.direct));
        out.push_str(&path("routed:", &self.routed));
        out.push_str(&format!(
            "  routing cost: {:.2}× over a pinned client\n",
            self.routing_overhead
        ));
        out.push_str(&format!(
            "  migration under load: {} acked / {} refused writes, fence {} µs, \
             {} catch-up pages, {} µs total, survived={}\n",
            self.migration.acked_writes,
            self.migration.refused_writes,
            self.migration.fence_us,
            self.migration.pages,
            self.migration.total_us,
            self.migration.all_writes_survived,
        ));
        out.push_str(&format!(
            "  kill during migration: completed={} intact={} ({} restarts, {} µs)\n",
            self.kill.completed, self.kill.user_intact, self.kill.restarts, self.kill.total_us
        ));
        out.push_str(&crate::render_checks(&self.checks));
        out
    }

    /// Serialize as a small JSON document (hand-rolled; the workspace
    /// has no serde).
    pub fn to_json(&self) -> String {
        let path = |p: &PathThroughput| {
            format!(
                "{{\"queries\": {}, \"qps\": {:.1}, \"p50_us\": {}, \"p99_us\": {}}}",
                p.queries, p.qps, p.p50_us, p.p99_us
            )
        };
        let checks: Vec<String> = self
            .checks
            .iter()
            .map(|c| {
                format!(
                    "    {{\"name\": {:?}, \"pass\": {}, \"detail\": {:?}}}",
                    c.name, c.pass, c.detail
                )
            })
            .collect();
        format!(
            "{{\n  \"benchmark\": \"router_pr6\",\n  \"config\": {{\"users\": {}, \"k\": {}, \
             \"deadline_ms\": {}, \"window_ms\": {}, \"seed_prefs\": {}, \"write_load_ms\": {}}},\n  \
             \"direct\": {},\n  \"routed\": {},\n  \"routing_overhead\": {:.2},\n  \
             \"migration_under_load\": {{\"acked_writes\": {}, \"refused_writes\": {}, \
             \"fence_us\": {}, \"pages\": {}, \"total_us\": {}, \"all_writes_survived\": {}}},\n  \
             \"kill_during_migration\": {{\"completed\": {}, \"restarts\": {}, \"total_us\": {}, \
             \"user_intact\": {}}},\n  \"checks\": [\n{}\n  ]\n}}\n",
            self.config.users,
            self.config.k,
            self.config.deadline.as_millis(),
            self.config.window.as_millis(),
            self.config.seed_prefs,
            self.config.write_load.as_millis(),
            path(&self.direct),
            path(&self.routed),
            self.routing_overhead,
            self.migration.acked_writes,
            self.migration.refused_writes,
            self.migration.fence_us,
            self.migration.pages,
            self.migration.total_us,
            self.migration.all_writes_survived,
            self.kill.completed,
            self.kill.restarts,
            self.kill.total_us,
            self.kill.user_intact,
            checks.join(",\n")
        )
    }
}
