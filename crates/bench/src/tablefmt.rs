//! Minimal aligned text-table rendering for the `repro` binary.

/// Render rows as an aligned text table. The first row is the header.
pub fn render(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (r, row) in rows.iter().enumerate() {
        for (i, w) in widths.iter().enumerate() {
            let cell = row.get(i).map(String::as_str).unwrap_or("");
            let pad = w - cell.chars().count();
            out.push_str(cell);
            out.extend(std::iter::repeat_n(' ', pad + 2));
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
        if r == 0 {
            let total: usize = widths.iter().map(|w| w + 2).sum::<usize>() - 2;
            out.extend(std::iter::repeat_n('-', total));
            out.push('\n');
        }
    }
    out
}

/// Shorthand for building a row of strings.
#[macro_export]
macro_rules! row {
    ($($x:expr),* $(,)?) => {
        vec![$($x.to_string()),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let t = render(&[
            vec!["name".into(), "cells".into()],
            vec!["order 1".into(), "12".into()],
            vec!["serial".into(), "2200".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "cells" and the numbers start at the same byte.
        let col = lines[0].find("cells").unwrap();
        assert_eq!(lines[2].find("12").unwrap(), col);
        assert_eq!(lines[3].find("2200").unwrap(), col);
    }

    #[test]
    fn empty_is_empty() {
        assert_eq!(render(&[]), "");
    }
}
