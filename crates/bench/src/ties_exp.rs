//! Distance-function ablation: how often does each state distance tie?
//!
//! Section 5.1 attributes the Jaccard distance's better usability to
//! tie behaviour: "the Jaccard distance produces more accurate results
//! than the Hierarchy distance mainly because the Hierarchy distance
//! produces rankings with many ties". This experiment quantifies that:
//! for non-exact queries over synthetic profiles, count the candidates
//! tied at the minimum distance under each metric.

use ctxpref_context::DistanceKind;
use ctxpref_profile::{ParamOrder, ProfileTree};
use ctxpref_resolve::{ContextResolver, MatchOutcome, TieBreak};
use ctxpref_workload::synthetic::{random_query_states, SyntheticSpec, ValueDist};

use crate::tablefmt::render;
use crate::{render_checks, ShapeCheck};

/// Tie statistics for one metric.
#[derive(Debug, Clone, Copy)]
pub struct TieStats {
    /// Covered (non-exact) resolutions measured.
    pub covered_queries: usize,
    /// Resolutions with > 1 minimum-distance candidate.
    pub tied_queries: usize,
    /// Mean number of minimum-distance candidates.
    pub mean_selected: f64,
}

impl TieStats {
    /// Fraction of covered resolutions that tied.
    pub fn tie_rate(&self) -> f64 {
        if self.covered_queries == 0 {
            0.0
        } else {
            self.tied_queries as f64 / self.covered_queries as f64
        }
    }
}

/// The experiment result: per profile size, stats for both metrics.
#[derive(Debug, Clone)]
pub struct TiesExp {
    /// `(num_prefs, hierarchy stats, jaccard stats)` rows.
    pub rows: Vec<(usize, TieStats, TieStats)>,
}

fn measure(
    tree: &ProfileTree,
    queries: &[ctxpref_context::ContextState],
    kind: DistanceKind,
) -> TieStats {
    let resolver = ContextResolver::new(tree, kind, TieBreak::All);
    let mut covered = 0;
    let mut tied = 0;
    let mut selected_total = 0usize;
    for q in queries {
        let res = resolver.resolve_state(q);
        if res.outcome == MatchOutcome::Covered {
            covered += 1;
            selected_total += res.selected.len();
            if res.selected.len() > 1 {
                tied += 1;
            }
        }
    }
    TieStats {
        covered_queries: covered,
        tied_queries: tied,
        mean_selected: if covered == 0 {
            0.0
        } else {
            selected_total as f64 / covered as f64
        },
    }
}

/// Run over the paper-standard synthetic shape with Zipf(1.5) values
/// (repeating states produce covering candidates at equal hierarchy
/// depths — the tie-prone regime).
pub fn run(seed: u64) -> TiesExp {
    let mut rows = Vec::new();
    for &n in &[500usize, 2000, 5000] {
        let spec = SyntheticSpec::paper_standard(n, ValueDist::Zipf(1.5), seed);
        let env = spec.build_env();
        // Extended (mixed-level) stored states are what covering matches
        // — and hence ties — arise from.
        let profile = spec.build_profile_with_lift(&env, 0.6);
        let tree =
            ProfileTree::from_profile(&profile, ParamOrder::by_ascending_domain(&env)).unwrap();
        let queries = random_query_states(&env, 200, 0.0, seed ^ n as u64);
        rows.push((
            n,
            measure(&tree, &queries, DistanceKind::Hierarchy),
            measure(&tree, &queries, DistanceKind::Jaccard),
        ));
    }
    TiesExp { rows }
}

impl TiesExp {
    /// The qualitative claim behind Table 1's Jaccard advantage.
    pub fn shape_checks(&self) -> Vec<ShapeCheck> {
        let hier_rate: f64 =
            self.rows.iter().map(|(_, h, _)| h.tie_rate()).sum::<f64>() / self.rows.len() as f64;
        let jacc_rate: f64 =
            self.rows.iter().map(|(_, _, j)| j.tie_rate()).sum::<f64>() / self.rows.len() as f64;
        let hier_sel: f64 = self
            .rows
            .iter()
            .map(|(_, h, _)| h.mean_selected)
            .sum::<f64>()
            / self.rows.len() as f64;
        let jacc_sel: f64 = self
            .rows
            .iter()
            .map(|(_, _, j)| j.mean_selected)
            .sum::<f64>()
            / self.rows.len() as f64;
        vec![
            ShapeCheck::new(
                "Hierarchy ties at least as often as Jaccard",
                hier_rate >= jacc_rate,
                format!("tie rate {:.2} vs {:.2}", hier_rate, jacc_rate),
            ),
            ShapeCheck::new(
                "Hierarchy selects more tied candidates on average",
                hier_sel >= jacc_sel,
                format!("mean selected {hier_sel:.2} vs {jacc_sel:.2}"),
            ),
        ]
    }

    /// Render the tie table.
    pub fn render(&self) -> String {
        let mut rows = vec![crate::row![
            "prefs",
            "covered",
            "H tie rate",
            "H mean sel",
            "J tie rate",
            "J mean sel"
        ]];
        for (n, h, j) in &self.rows {
            rows.push(crate::row![
                n,
                h.covered_queries,
                format!("{:.2}", h.tie_rate()),
                format!("{:.2}", h.mean_selected),
                format!("{:.2}", j.tie_rate()),
                format!("{:.2}", j.mean_selected)
            ]);
        }
        let mut out = String::from(
            "Distance ablation — ties at the minimum distance (200 mixed-level queries)\n",
        );
        out.push_str(&render(&rows));
        out.push_str(&render_checks(&self.shape_checks()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_ties_more_than_jaccard() {
        let exp = run(13);
        for c in exp.shape_checks() {
            assert!(c.pass, "{}: {}", c.name, c.detail);
        }
        assert!(exp.render().contains("tie rate"));
        // At least some queries must actually resolve via covering, or
        // the experiment is vacuous.
        assert!(exp.rows.iter().any(|(_, h, _)| h.covered_queries > 20));
    }
}
