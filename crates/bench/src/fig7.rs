//! Figure 7: number of cells accessed during context resolution —
//! profile tree vs. sequential scan.
//!
//! * **Left**: the real profile, exact and non-exact matches.
//! * **Center**: synthetic profiles (500–10000 prefs), exact match,
//!   uniform / zipf / serial.
//! * **Right**: the same for non-exact (covering) matches.
//!
//! 50 queries per point, as in the paper; query context parameters take
//! values from different hierarchy levels.

use ctxpref_context::{ContextEnvironment, ContextState, DistanceKind};
use ctxpref_profile::{AccessCounter, ParamOrder, Profile, ProfileTree, SerialStore};
use ctxpref_workload::real_profile::{real_profile, real_profile_env};
use ctxpref_workload::synthetic::{
    random_query_states, stored_query_states, SyntheticSpec, ValueDist,
};

use crate::tablefmt::render;
use crate::{render_checks, ShapeCheck};

/// Queries per measurement, as in the paper.
pub const NUM_QUERIES: usize = 50;

/// Profile sizes of the center/right panels.
pub const PROFILE_SIZES: [usize; 4] = [500, 1000, 5000, 10000];

/// Average cells accessed per query for one (store, match-kind) pair.
#[derive(Debug, Clone, Copy)]
pub struct AccessPoint {
    /// Mean cells per query on the profile tree.
    pub tree_cells: f64,
    /// Mean cells per query on the serial store.
    pub serial_cells: f64,
}

/// Left panel: real profile.
#[derive(Debug, Clone)]
pub struct Fig7Real {
    /// Exact-match resolution cost.
    pub exact: AccessPoint,
    /// Covering (non-exact) resolution cost.
    pub non_exact: AccessPoint,
}

/// Center/right panels: synthetic, one series per distribution plus
/// serial (the paper plots serial once — the scan cost is distribution
/// independent to first order; we report uniform-profile serial cost).
#[derive(Debug, Clone)]
pub struct Fig7Synthetic {
    /// "exact" or "non-exact".
    pub match_label: &'static str,
    /// `(num_prefs, uniform tree, zipf tree, serial)` rows.
    pub rows: Vec<(usize, f64, f64, f64)>,
}

fn mean_exact_cells(
    tree: &ProfileTree,
    serial: &SerialStore,
    queries: &[ContextState],
) -> AccessPoint {
    let mut t = 0u64;
    let mut s = 0u64;
    for q in queries {
        let mut c = AccessCounter::new();
        let _ = tree.exact_lookup(q, &mut c);
        t += c.cells();
        let mut c = AccessCounter::new();
        let _ = serial.exact_lookup(q, &mut c);
        s += c.cells();
    }
    AccessPoint {
        tree_cells: t as f64 / queries.len() as f64,
        serial_cells: s as f64 / queries.len() as f64,
    }
}

fn mean_covering_cells(
    tree: &ProfileTree,
    serial: &SerialStore,
    queries: &[ContextState],
) -> AccessPoint {
    let mut t = 0u64;
    let mut s = 0u64;
    for q in queries {
        let mut c = AccessCounter::new();
        let _ = tree.search_cs(q, DistanceKind::Hierarchy, &mut c);
        t += c.cells();
        let mut c = AccessCounter::new();
        let _ = serial.search_covering(q, DistanceKind::Hierarchy, &mut c);
        s += c.cells();
    }
    AccessPoint {
        tree_cells: t as f64 / queries.len() as f64,
        serial_cells: s as f64 / queries.len() as f64,
    }
}

fn build_stores(env: &ContextEnvironment, profile: &Profile) -> (ProfileTree, SerialStore) {
    let tree = ProfileTree::from_profile(profile, ParamOrder::by_ascending_domain(env))
        .expect("generated profiles are conflict-free");
    let serial = SerialStore::from_profile(profile).unwrap();
    (tree, serial)
}

/// Left panel.
pub fn run_real(seed: u64) -> Fig7Real {
    let env = real_profile_env();
    let profile = real_profile(&env, seed);
    let (tree, serial) = build_stores(&env, &profile);
    let exact_q = stored_query_states(&env, &profile, NUM_QUERIES, seed ^ 1);
    let cover_q = random_query_states(&env, NUM_QUERIES, 0.5, seed ^ 2);
    Fig7Real {
        exact: mean_exact_cells(&tree, &serial, &exact_q),
        non_exact: mean_covering_cells(&tree, &serial, &cover_q),
    }
}

/// Center (`exact = true`) or right (`exact = false`) panel.
pub fn run_synthetic(exact: bool, seed: u64) -> Fig7Synthetic {
    let mut rows = Vec::with_capacity(PROFILE_SIZES.len());
    for &n in &PROFILE_SIZES {
        let mut cells = [0.0f64; 3];
        for (i, dist) in [ValueDist::Uniform, ValueDist::Zipf(1.5)]
            .into_iter()
            .enumerate()
        {
            let spec = SyntheticSpec::paper_standard(n, dist, seed);
            let env = spec.build_env();
            let profile = spec.build_profile(&env);
            let (tree, serial) = build_stores(&env, &profile);
            let point = if exact {
                let q = stored_query_states(&env, &profile, NUM_QUERIES, seed ^ 7);
                mean_exact_cells(&tree, &serial, &q)
            } else {
                let q = random_query_states(&env, NUM_QUERIES, 0.5, seed ^ 9);
                mean_covering_cells(&tree, &serial, &q)
            };
            cells[i] = point.tree_cells;
            if i == 0 {
                cells[2] = point.serial_cells;
            }
        }
        rows.push((n, cells[0], cells[1], cells[2]));
    }
    Fig7Synthetic {
        match_label: if exact { "exact" } else { "non-exact" },
        rows,
    }
}

impl Fig7Real {
    /// The qualitative claims of the real-profile panel.
    pub fn shape_checks(&self) -> Vec<ShapeCheck> {
        vec![
            ShapeCheck::new(
                "real/exact: tree ≪ serial",
                self.exact.tree_cells * 5.0 < self.exact.serial_cells,
                format!(
                    "{:.0} vs {:.0} cells",
                    self.exact.tree_cells, self.exact.serial_cells
                ),
            ),
            ShapeCheck::new(
                "real/non-exact: tree < serial",
                self.non_exact.tree_cells < self.non_exact.serial_cells,
                format!(
                    "{:.0} vs {:.0} cells",
                    self.non_exact.tree_cells, self.non_exact.serial_cells
                ),
            ),
            ShapeCheck::new(
                "non-exact costs more than exact (tree)",
                self.non_exact.tree_cells > self.exact.tree_cells,
                format!(
                    "{:.0} vs {:.0} cells",
                    self.non_exact.tree_cells, self.exact.tree_cells
                ),
            ),
        ]
    }

    /// Render the real-profile panel.
    pub fn render(&self) -> String {
        let rows = vec![
            crate::row!["match", "profile tree", "serial"],
            crate::row![
                "exact",
                format!("{:.0}", self.exact.tree_cells),
                format!("{:.0}", self.exact.serial_cells)
            ],
            crate::row![
                "non-exact",
                format!("{:.0}", self.non_exact.tree_cells),
                format!("{:.0}", self.non_exact.serial_cells)
            ],
        ];
        let mut out = String::from(
            "Figure 7 (left) — avg cells accessed per query, real profile (50 queries)\n",
        );
        out.push_str(&render(&rows));
        out.push_str(&render_checks(&self.shape_checks()));
        out
    }
}

impl Fig7Synthetic {
    /// The qualitative claims of the synthetic panels.
    pub fn shape_checks(&self) -> Vec<ShapeCheck> {
        let mut checks = Vec::new();
        let last = self.rows.last().unwrap();
        checks.push(ShapeCheck::new(
            format!(
                "synthetic/{}: tree ≪ serial at 10000 prefs",
                self.match_label
            ),
            last.1 * 5.0 < last.3 && last.2 * 5.0 < last.3,
            format!(
                "uniform {:.0}, zipf {:.0} vs serial {:.0}",
                last.1, last.2, last.3
            ),
        ));
        let serial_monotone = self.rows.windows(2).all(|w| w[0].3 <= w[1].3);
        checks.push(ShapeCheck::new(
            format!(
                "synthetic/{}: serial cost grows with profile size",
                self.match_label
            ),
            serial_monotone,
            "serial column monotone",
        ));
        checks
    }

    /// Render the synthetic panel.
    pub fn render(&self) -> String {
        let mut rows = vec![crate::row![
            "prefs",
            "tree (uniform)",
            "tree (zipf)",
            "serial"
        ]];
        for (n, u, z, s) in &self.rows {
            rows.push(crate::row![
                n,
                format!("{u:.0}"),
                format!("{z:.0}"),
                format!("{s:.0}")
            ]);
        }
        let mut out = format!(
            "Figure 7 ({}) — avg cells accessed per query, synthetic profiles (50 queries)\n",
            if self.match_label == "exact" {
                "center: exact match"
            } else {
                "right: non-exact match"
            }
        );
        out.push_str(&render(&rows));
        out.push_str(&render_checks(&self.shape_checks()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_profile_shape_holds() {
        let fig = run_real(1);
        for c in fig.shape_checks() {
            assert!(c.pass, "{}: {}", c.name, c.detail);
        }
    }

    #[test]
    fn synthetic_small_shape_holds() {
        // One small size for test speed.
        for exact in [true, false] {
            let spec = SyntheticSpec::paper_standard(500, ValueDist::Uniform, 3);
            let env = spec.build_env();
            let profile = spec.build_profile(&env);
            let (tree, serial) = build_stores(&env, &profile);
            let point = if exact {
                let q = stored_query_states(&env, &profile, 10, 4);
                mean_exact_cells(&tree, &serial, &q)
            } else {
                let q = random_query_states(&env, 10, 0.5, 5);
                mean_covering_cells(&tree, &serial, &q)
            };
            assert!(
                point.tree_cells < point.serial_cells,
                "exact={exact}: {} vs {}",
                point.tree_cells,
                point.serial_cells
            );
        }
    }
}
