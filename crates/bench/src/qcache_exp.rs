//! Ablation of the context query tree (the paper's second index,
//! Section 7 item (b)): replaying a query stream with context locality
//! — users fire many queries under a slowly-changing context — and
//! measuring the hit ratio and the resolution work saved.

use ctxpref_context::ContextState;
use ctxpref_core::{ContextualDb, QueryOptions};
use ctxpref_relation::Value;
use ctxpref_workload::reference::{poi_env, poi_relation, POI_TYPES};
use ctxpref_workload::streams::{dwell_stream, walk_stream};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tablefmt::render;
use crate::{render_checks, ShapeCheck};

/// One locality setting's measurements.
#[derive(Debug, Clone)]
pub struct LocalityRow {
    /// Mean number of consecutive queries under one context state.
    pub dwell: usize,
    /// Fraction of queries answered from the cache.
    pub hit_ratio: f64,
    /// Total resolution cells without the cache.
    pub cells_uncached: u64,
    /// Total resolution cells with the cache.
    pub cells_cached: u64,
}

/// The experiment result.
#[derive(Debug, Clone)]
pub struct QCacheExp {
    /// Queries per locality setting.
    pub queries: usize,
    /// One row per dwell setting.
    pub rows: Vec<LocalityRow>,
}

fn build_db(seed: u64, cache: usize) -> ContextualDb {
    let env = poi_env();
    let rel = poi_relation(&env, seed, 5);
    let mut db = ContextualDb::builder()
        .env(env.clone())
        .relation(rel)
        .cache_capacity(cache)
        .build()
        .unwrap();
    // A modest profile over weather/company/type.
    let mut rng = StdRng::seed_from_u64(seed);
    for weather in ["bad", "good"] {
        for company in ["friends", "family", "alone"] {
            for ty in POI_TYPES {
                let score = 0.05 + (rng.random_range(0..90) as f64) / 100.0;
                db.insert_preference_eq(
                    &format!("temperature = {weather} and accompanying_people = {company}"),
                    "type",
                    Value::str(ty),
                    score,
                )
                .unwrap();
            }
        }
    }
    db
}

fn replay(db: &ContextualDb, qs: &[ContextState]) -> (f64, u64, u64) {
    let mut cells_cached = 0u64;
    let mut cells_uncached = 0u64;
    for q in qs {
        let cached = db.query_state_with(q, QueryOptions::cached()).unwrap();
        cells_cached += cached.cells();
        let plain = db.query_state_with(q, QueryOptions::default()).unwrap();
        cells_uncached += plain.cells();
    }
    let stats = db.cache_stats().unwrap();
    (stats.hit_ratio(), cells_uncached, cells_cached)
}

/// Run with dwell times 1 (no locality), 5, 20.
pub fn run(seed: u64) -> QCacheExp {
    let queries = 600;
    let mut rows = Vec::new();
    for dwell in [1usize, 5, 20] {
        let db = build_db(seed, 64);
        let qs = dwell_stream(db.env(), queries, dwell, seed ^ dwell as u64);
        let (hit_ratio, cells_uncached, cells_cached) = replay(&db, &qs);
        rows.push(LocalityRow {
            dwell,
            hit_ratio,
            cells_uncached,
            cells_cached,
        });
    }
    QCacheExp { queries, rows }
}

/// One row of the random-walk / capacity study.
#[derive(Debug, Clone)]
pub struct WalkRow {
    /// Probability that the context moves at each step.
    pub move_prob: f64,
    /// Cache capacity used.
    pub capacity: usize,
    /// Fraction of queries answered from the cache.
    pub hit_ratio: f64,
}

/// A second ablation: random-walk context streams (one parameter steps
/// to an adjacent value) across cache capacities — locality in *time*
/// interacts with capacity because a walk revisits recent states.
pub fn run_walk(seed: u64) -> Vec<WalkRow> {
    let queries = 600;
    let mut rows = Vec::new();
    for &move_prob in &[0.1f64, 0.5, 1.0] {
        for &capacity in &[4usize, 16, 64] {
            let db = build_db(seed, capacity);
            let qs = walk_stream(db.env(), queries, move_prob, seed ^ 77);
            let (hit_ratio, _, _) = replay(&db, &qs);
            rows.push(WalkRow {
                move_prob,
                capacity,
                hit_ratio,
            });
        }
    }
    rows
}

/// Render the walk/capacity table with its shape checks.
pub fn render_walk(rows: &[WalkRow]) -> String {
    let mut table = vec![crate::row!["move prob", "capacity", "hit ratio"]];
    for r in rows {
        table.push(crate::row![
            format!("{:.1}", r.move_prob),
            r.capacity,
            format!("{:.2}", r.hit_ratio)
        ]);
    }
    let at = |m: f64, c: usize| {
        rows.iter()
            .find(|r| (r.move_prob - m).abs() < 1e-9 && r.capacity == c)
            .map(|r| r.hit_ratio)
            .unwrap_or(0.0)
    };
    let checks = vec![
        ShapeCheck::new(
            "slower walks hit more (fixed capacity 16)",
            at(0.1, 16) >= at(1.0, 16),
            format!("{:.2} (p=0.1) vs {:.2} (p=1.0)", at(0.1, 16), at(1.0, 16)),
        ),
        ShapeCheck::new(
            "more capacity never hurts (fast walk)",
            at(1.0, 4) <= at(1.0, 16) + 0.02 && at(1.0, 16) <= at(1.0, 64) + 0.02,
            format!(
                "{:.2} ≤ {:.2} ≤ {:.2}",
                at(1.0, 4),
                at(1.0, 16),
                at(1.0, 64)
            ),
        ),
    ];
    let mut out = String::from(
        "Context query tree under random-walk context streams (600 queries per cell)
",
    );
    out.push_str(&render(&table));
    out.push_str(&render_checks(&checks));
    out
}

impl QCacheExp {
    /// The qualitative claims of the ablation.
    pub fn shape_checks(&self) -> Vec<ShapeCheck> {
        let mut checks = Vec::new();
        let by_dwell = |d: usize| self.rows.iter().find(|r| r.dwell == d).unwrap();
        checks.push(ShapeCheck::new(
            "hit ratio grows with context locality",
            by_dwell(1).hit_ratio < by_dwell(5).hit_ratio
                && by_dwell(5).hit_ratio < by_dwell(20).hit_ratio,
            format!(
                "{:.2} < {:.2} < {:.2}",
                by_dwell(1).hit_ratio,
                by_dwell(5).hit_ratio,
                by_dwell(20).hit_ratio
            ),
        ));
        checks.push(ShapeCheck::new(
            "cache saves resolution work under locality",
            by_dwell(20).cells_cached * 2 < by_dwell(20).cells_uncached,
            format!(
                "{} vs {} cells at dwell 20",
                by_dwell(20).cells_cached,
                by_dwell(20).cells_uncached
            ),
        ));
        checks
    }

    /// Render the locality table.
    pub fn render(&self) -> String {
        let mut rows = vec![crate::row![
            "dwell",
            "hit ratio",
            "cells (no cache)",
            "cells (cache)",
            "saved"
        ]];
        for r in &self.rows {
            let saved = 100.0 * (1.0 - r.cells_cached as f64 / r.cells_uncached.max(1) as f64);
            rows.push(crate::row![
                r.dwell,
                format!("{:.2}", r.hit_ratio),
                r.cells_uncached,
                r.cells_cached,
                format!("{saved:.0}%")
            ]);
        }
        let mut out = format!(
            "Context query tree ablation — {} queries per setting, cache capacity 64\n",
            self.queries
        );
        out.push_str(&render(&rows));
        out.push_str(&render_checks(&self.shape_checks()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_increases_hit_ratio() {
        let exp = run(17);
        for c in exp.shape_checks() {
            assert!(c.pass, "{}: {}", c.name, c.detail);
        }
        assert!(exp.render().contains("hit ratio"));
    }

    #[test]
    fn walk_streams_favor_slow_walks_and_capacity() {
        let rows = run_walk(17);
        assert_eq!(rows.len(), 9);
        let out = render_walk(&rows);
        assert!(out.contains("move prob"));
        assert!(!out.contains("[FAIL]"), "{out}");
    }
}
