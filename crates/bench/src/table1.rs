//! Table 1: the usability study, re-run with simulated users (see
//! `ctxpref_workload::user_study` and `DESIGN.md` §4 for the
//! substitution argument).

use ctxpref_workload::user_study::{run_user_study, UserStudyReport};

use crate::tablefmt::render;
use crate::{render_checks, ShapeCheck};

/// Number of users, as in the paper.
pub const NUM_USERS: usize = 10;

/// Queries per resolution class per user.
pub const QUERIES_PER_CLASS: usize = 10;

/// Run the study.
pub fn run(seed: u64) -> UserStudyReport {
    run_user_study(seed, NUM_USERS, QUERIES_PER_CLASS)
}

/// The qualitative claims of Table 1.
pub fn shape_checks(report: &UserStudyReport) -> Vec<ShapeCheck> {
    vec![
        ShapeCheck::new(
            "agreement is generally high (≥ 70% on every mean)",
            report.mean_exact() >= 70.0
                && report.mean_one_cover() >= 70.0
                && report.mean_multi_hierarchy() >= 70.0
                && report.mean_multi_jaccard() >= 70.0,
            format!(
                "exact {:.1}, 1-cover {:.1}, multi-H {:.1}, multi-J {:.1}",
                report.mean_exact(),
                report.mean_one_cover(),
                report.mean_multi_hierarchy(),
                report.mean_multi_jaccard()
            ),
        ),
        ShapeCheck::new(
            "Jaccard beats Hierarchy on multi-cover queries",
            report.mean_multi_jaccard() >= report.mean_multi_hierarchy(),
            format!(
                "{:.1}% vs {:.1}%",
                report.mean_multi_jaccard(),
                report.mean_multi_hierarchy()
            ),
        ),
        ShapeCheck::new(
            "updates within the published range (12–38)",
            report.rows.iter().all(|r| (12..=38).contains(&r.updates)),
            "all users",
        ),
        ShapeCheck::new(
            "even exact matches fall short of 100% (users do not fully conform)",
            report.rows.iter().any(|r| r.exact_pct < 100.0),
            "at least one user deviates from their own preferences",
        ),
    ]
}

/// Render a Table-1-like table (users as columns, as in the paper).
pub fn render_report(report: &UserStudyReport) -> String {
    let mut header = vec!["".to_string()];
    header.extend(report.rows.iter().map(|r| format!("User {}", r.user)));
    let mut rows = vec![header];
    let line = |label: &str, f: &dyn Fn(&ctxpref_workload::user_study::UserRow) -> String| {
        let mut r = vec![label.to_string()];
        r.extend(report.rows.iter().map(f));
        r
    };
    rows.push(line("Num of updates", &|r| r.updates.to_string()));
    rows.push(line("Update time (mins)", &|r| r.minutes.to_string()));
    rows.push(line("Exact match", &|r| format!("{:.0}%", r.exact_pct)));
    rows.push(line("1 cover state", &|r| {
        format!("{:.0}%", r.one_cover_pct)
    }));
    rows.push(line("More: Hierarchy", &|r| {
        format!("{:.0}%", r.multi_hierarchy_pct)
    }));
    rows.push(line("More: Jaccard", &|r| {
        format!("{:.0}%", r.multi_jaccard_pct)
    }));
    let mut out = String::from("Table 1 — simulated user study (10 users)\n");
    out.push_str(&render(&rows));
    out.push_str(&format!(
        "means: exact {:.1}%, 1-cover {:.1}%, multi Hierarchy {:.1}%, multi Jaccard {:.1}%\n",
        report.mean_exact(),
        report.mean_one_cover(),
        report.mean_multi_hierarchy(),
        report.mean_multi_jaccard()
    ));
    out.push_str(&render_checks(&shape_checks(report)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_shape_holds() {
        // Smaller study for test speed; the repro binary runs the full one.
        let report = run_user_study(42, 6, 5);
        for c in shape_checks(&report) {
            assert!(c.pass, "{}: {}", c.name, c.detail);
        }
        let out = render_report(&report);
        assert!(out.contains("User 6"));
        assert!(out.contains("Exact match"));
    }
}
