//! Figure 5: size of the profile tree (cells, bytes) built from the
//! "real" 522-preference profile, for all six parameter orderings and
//! the serial baseline.
//!
//! Paper labels (A = accompanying_people, T = time, L = location with
//! active domains 4, 17, 100): order 1 = (A, T, L), order 2 = (A, L, T),
//! order 3 = (T, A, L), order 4 = (T, L, A), order 5 = (L, A, T),
//! order 6 = (L, T, A).

use ctxpref_profile::{ParamOrder, ProfileTree, SerialStore};
use ctxpref_workload::real_profile::{real_profile, real_profile_env};

use crate::tablefmt::render;
use crate::{render_checks, ShapeCheck};

/// One measured ordering.
#[derive(Debug, Clone)]
pub struct OrderSize {
    /// The paper's ordering label ("order 1" … "order 6").
    pub label: String,
    /// Parameter names, root level first.
    pub order_names: Vec<&'static str>,
    /// Total cells of the tree under this ordering.
    pub cells: usize,
    /// Total bytes under the documented cost model.
    pub bytes: usize,
}

/// The full Figure 5 result.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// All six orderings, in the paper's numbering.
    pub orders: Vec<OrderSize>,
    /// Cells of the serial baseline.
    pub serial_cells: usize,
    /// Bytes of the serial baseline.
    pub serial_bytes: usize,
}

/// The paper's six orderings of (A, T, L), root level first.
pub const ORDERINGS: [(&str, [&str; 3]); 6] = [
    ("order 1", ["accompanying_people", "time", "location"]),
    ("order 2", ["accompanying_people", "location", "time"]),
    ("order 3", ["time", "accompanying_people", "location"]),
    ("order 4", ["time", "location", "accompanying_people"]),
    ("order 5", ["location", "accompanying_people", "time"]),
    ("order 6", ["location", "time", "accompanying_people"]),
];

/// Run the experiment.
pub fn run(seed: u64) -> Fig5 {
    let env = real_profile_env();
    let profile = real_profile(&env, seed);
    let mut orders = Vec::with_capacity(ORDERINGS.len());
    for (label, names) in ORDERINGS {
        let order = ParamOrder::by_names(&env, &names).expect("orderings use valid names");
        let tree =
            ProfileTree::from_profile(&profile, order).expect("real profile is conflict-free");
        let stats = tree.stats();
        orders.push(OrderSize {
            label: label.to_string(),
            order_names: names.to_vec(),
            cells: stats.total_cells(),
            bytes: stats.total_bytes(),
        });
    }
    let serial = SerialStore::from_profile(&profile).expect("real profile is conflict-free");
    Fig5 {
        orders,
        serial_cells: serial.total_cells(),
        serial_bytes: serial.total_bytes(),
    }
}

impl Fig5 {
    /// The qualitative claims of Figure 5.
    pub fn shape_checks(&self) -> Vec<ShapeCheck> {
        let mut checks = Vec::new();
        // 1. Every tree ordering occupies fewer cells than serial storage.
        let worst = self.orders.iter().map(|o| o.cells).max().unwrap_or(0);
        checks.push(ShapeCheck::new(
            "every tree ordering beats serial storage",
            worst < self.serial_cells,
            format!(
                "worst tree {worst} cells vs serial {} cells",
                self.serial_cells
            ),
        ));
        // 2. Orderings that put the large domain (location) lower are
        //    smaller: order 1 (A, T, L) must beat order 6 (L, T, A).
        let o1 = self.orders[0].cells;
        let o6 = self.orders[5].cells;
        checks.push(ShapeCheck::new(
            "large domains lower in the tree → smaller tree",
            o1 < o6,
            format!("order 1 (A,T,L) {o1} cells vs order 6 (L,T,A) {o6} cells"),
        ));
        // 3. The smallest ordering keeps location at the bottom level.
        let best = self.orders.iter().min_by_key(|o| o.cells).unwrap();
        checks.push(ShapeCheck::new(
            "best ordering has the largest domain at the bottom",
            best.order_names.last() == Some(&"location"),
            format!("best is {} {:?}", best.label, best.order_names),
        ));
        checks
    }

    /// Render the two panels of Figure 5 as one table.
    pub fn render(&self) -> String {
        let mut rows = vec![crate::row![
            "ordering",
            "levels (root→bottom)",
            "cells",
            "bytes"
        ]];
        rows.push(crate::row![
            "serial",
            "—",
            self.serial_cells,
            self.serial_bytes
        ]);
        for o in &self.orders {
            rows.push(crate::row![
                o.label,
                o.order_names.join(" → "),
                o.cells,
                o.bytes
            ]);
        }
        let mut out = String::from(
            "Figure 5 — profile tree size, real profile (522 preferences, domains 4/17/100)\n",
        );
        out.push_str(&render(&rows));
        out.push_str(&render_checks(&self.shape_checks()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_5_shape_holds() {
        let fig = run(1);
        assert_eq!(fig.orders.len(), 6);
        for c in fig.shape_checks() {
            assert!(c.pass, "{}: {}", c.name, c.detail);
        }
        // Serial cells ≈ 522 × 4 (the paper's ~2200).
        assert_eq!(fig.serial_cells, 522 * 4);
    }

    #[test]
    fn render_mentions_every_order() {
        let fig = run(2);
        let out = fig.render();
        for (label, _) in ORDERINGS {
            assert!(out.contains(label));
        }
        assert!(out.contains("serial"));
    }
}
