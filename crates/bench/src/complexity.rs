//! The analytical complexity claims of Sections 3.3 and 4.4, measured:
//!
//! * Tree size is bounded by `m1·(1 + m2·(1 + … (1 + mn)))` and the
//!   bound is minimized by ascending-domain ordering.
//! * An exact-match lookup visits at most `Σ |edom(Ci)|` cells; a
//!   sequential scan may visit `Π`-scale numbers of cells.
//! * A covering search visits at most
//!   `|edom(C1)| + |edom(C2)|·h1 + |edom(C3)|·h2·h1 + …` cells.

use ctxpref_profile::{AccessCounter, ParamOrder, ProfileTree, SerialStore};
use ctxpref_workload::synthetic::{
    random_query_states, stored_query_states, SyntheticSpec, ValueDist,
};

use crate::tablefmt::render;
use crate::{render_checks, ShapeCheck};

/// Measured vs. analytical numbers.
#[derive(Debug, Clone)]
pub struct Complexity {
    /// `Σ |edom(Ci)|` — the paper's exact-lookup cell bound.
    pub edom_sum: usize,
    /// `Π |edom(Ci)|` — the paper's sequential-scan worst case.
    pub edom_product: u128,
    /// Minimum of the §3.3 max-cells bound over all orderings.
    pub max_cells_bound_best: u128,
    /// Maximum of the §3.3 max-cells bound over all orderings.
    pub max_cells_bound_worst: u128,
    /// Cells actually occupied by the built tree.
    pub measured_cells: usize,
    /// Worst measured exact-lookup cost on the tree (50 queries).
    pub max_exact_cells: u64,
    /// The covering-search bound `Σ |edom(Ci)|·Π h_j`.
    pub covering_bound: u64,
    /// Worst measured covering-search cost on the tree (50 queries).
    pub max_covering_cells: u64,
    /// Worst measured exact-lookup cost on the serial store.
    pub max_serial_exact_cells: u64,
}

/// Run on a paper-standard synthetic profile.
pub fn run(num_prefs: usize, seed: u64) -> Complexity {
    let spec = SyntheticSpec::paper_standard(num_prefs, ValueDist::Uniform, seed);
    let env = spec.build_env();
    let profile = spec.build_profile(&env);
    let order = ParamOrder::by_ascending_domain(&env);
    let tree = ProfileTree::from_profile(&profile, order.clone()).unwrap();
    let serial = SerialStore::from_profile(&profile).unwrap();

    let edom_sum: usize = env.iter().map(|(_, h)| h.edom_size()).sum();
    let edom_product: u128 = env.extended_world_size();
    let bounds: Vec<u128> = ParamOrder::all_orders(&env)
        .iter()
        .map(|o| o.max_cells(&env))
        .collect();

    // Covering-search bound: Σ_i |edom(Ci)| · Π_{j<i} h_j, with h_j the
    // number of hierarchy levels of the parameter at tree level j.
    let mut covering_bound: u64 = 0;
    let mut level_product: u64 = 1;
    for k in 0..order.len() {
        let h = env.hierarchy(order.param_at(k));
        covering_bound += h.edom_size() as u64 * level_product;
        level_product *= h.level_count() as u64;
    }

    let exact_q = stored_query_states(&env, &profile, 50, seed ^ 3);
    let mut max_exact_cells = 0;
    let mut max_serial_exact_cells = 0;
    for q in &exact_q {
        let mut c = AccessCounter::new();
        let _ = tree.exact_lookup(q, &mut c);
        max_exact_cells = max_exact_cells.max(c.cells());
        let mut c = AccessCounter::new();
        let _ = serial.exact_lookup(q, &mut c);
        max_serial_exact_cells = max_serial_exact_cells.max(c.cells());
    }
    let cover_q = random_query_states(&env, 50, 0.5, seed ^ 4);
    let mut max_covering_cells = 0;
    for q in &cover_q {
        let mut c = AccessCounter::new();
        let _ = tree.search_cs(q, ctxpref_context::DistanceKind::Hierarchy, &mut c);
        max_covering_cells = max_covering_cells.max(c.cells());
    }

    Complexity {
        edom_sum,
        edom_product,
        max_cells_bound_best: *bounds.iter().min().unwrap(),
        max_cells_bound_worst: *bounds.iter().max().unwrap(),
        measured_cells: tree.stats().total_cells(),
        max_exact_cells,
        covering_bound,
        max_covering_cells,
        max_serial_exact_cells,
    }
}

impl Complexity {
    /// The five complexity claims, each as a measured check.
    pub fn shape_checks(&self) -> Vec<ShapeCheck> {
        vec![
            ShapeCheck::new(
                "exact lookup ≤ Σ|edom(Ci)| cells",
                self.max_exact_cells <= self.edom_sum as u64,
                format!("max {} vs bound {}", self.max_exact_cells, self.edom_sum),
            ),
            ShapeCheck::new(
                "covering search ≤ Σ|edom(Ci)|·Πh cells",
                self.max_covering_cells <= self.covering_bound,
                format!(
                    "max {} vs bound {}",
                    self.max_covering_cells, self.covering_bound
                ),
            ),
            ShapeCheck::new(
                "tree size ≤ worst-case bound",
                (self.measured_cells as u128) <= self.max_cells_bound_worst,
                format!("{} vs {}", self.measured_cells, self.max_cells_bound_worst),
            ),
            ShapeCheck::new(
                "ascending-domain bound is the minimum over orderings",
                self.max_cells_bound_best <= self.max_cells_bound_worst,
                format!(
                    "{} ≤ {}",
                    self.max_cells_bound_best, self.max_cells_bound_worst
                ),
            ),
            ShapeCheck::new(
                "serial exact scan costs far more than the tree lookup",
                self.max_serial_exact_cells > self.max_exact_cells * 3,
                format!(
                    "serial max {} vs tree max {}",
                    self.max_serial_exact_cells, self.max_exact_cells
                ),
            ),
        ]
    }

    /// Render the measured-vs-analytical table.
    pub fn render(&self) -> String {
        let rows = vec![
            crate::row!["quantity", "value"],
            crate::row!["Σ|edom(Ci)| (exact-lookup bound)", self.edom_sum],
            crate::row!["Π|edom(Ci)| (serial worst case)", self.edom_product],
            crate::row!["max-cells bound, best ordering", self.max_cells_bound_best],
            crate::row![
                "max-cells bound, worst ordering",
                self.max_cells_bound_worst
            ],
            crate::row!["measured tree cells", self.measured_cells],
            crate::row!["max exact-lookup cells (tree)", self.max_exact_cells],
            crate::row![
                "max exact-lookup cells (serial)",
                self.max_serial_exact_cells
            ],
            crate::row!["covering-search bound", self.covering_bound],
            crate::row!["max covering-search cells (tree)", self.max_covering_cells],
        ];
        let mut out = String::from("Complexity claims (Sections 3.3 / 4.4), measured\n");
        out.push_str(&render(&rows));
        out.push_str(&render_checks(&self.shape_checks()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complexity_claims_hold() {
        let c = run(1000, 11);
        for check in c.shape_checks() {
            assert!(check.pass, "{}: {}", check.name, check.detail);
        }
        assert!(c.render().contains("measured tree cells"));
    }
}
