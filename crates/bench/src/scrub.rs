//! Scrub-overhead benchmark (PR 8): sustained append throughput with
//! and without a background scrubber verifying the same directory.
//!
//! The self-healing story only holds if verification is close to free
//! for the write path: the scrubber takes the checkpoint lock (which
//! blocks garbage collection, not appends) and reads sealed segments —
//! files the appenders never touch again. So the same mutation storm
//! as the durability benchmark runs twice over small segments (so
//! sealed segments actually accumulate), once bare and once with a
//! thread looping full scrub passes, and the gate is that the scrubbed
//! run keeps ≥90% of the bare run's acknowledged throughput.
//!
//! Run via `cargo run -p ctxpref-bench --release --bin serving_bench --
//! --scrub`, which emits `BENCH_PR8.json`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use ctxpref_core::{MultiUserDb, ShardedMultiUserDb};
use ctxpref_wal::{DurableDb, SyncPolicy, WalOptions};
use ctxpref_workload::reference::{poi_env, poi_relation};
use ctxpref_workload::user_study::{all_demographics, default_profile};

use crate::ShapeCheck;

/// Workload knobs for the scrub-overhead benchmark.
#[derive(Debug, Clone, Copy)]
pub struct ScrubBenchConfig {
    /// Registered users (writers rotate their edits over all of them).
    pub users: usize,
    /// Threads issuing durable mutations back-to-back.
    pub writer_threads: usize,
    /// Stripes of the sharded core — and therefore independent logs.
    pub shards: usize,
    /// Segment rotation threshold — small, so sealed segments pile up
    /// and the scrubber has real files to verify mid-storm.
    pub segment_max_bytes: u64,
    /// Group-commit flush interval.
    pub flush_interval: Duration,
    /// Background checkpoint cadence — runs in **both** storms (it is
    /// part of the deployed durable topology and is what keeps the
    /// sealed-segment set, and therefore a scrub pass, bounded).
    pub checkpoint_interval: Duration,
    /// Pause between scrub passes (a deployed scrubber runs on an
    /// interval; a hot loop would just benchmark CPU contention).
    pub scrub_interval: Duration,
    /// Measurement window per run.
    pub window: Duration,
}

impl Default for ScrubBenchConfig {
    fn default() -> Self {
        Self {
            users: 8,
            writer_threads: 4,
            shards: 4,
            segment_max_bytes: 32 << 10,
            flush_interval: Duration::from_millis(5),
            checkpoint_interval: Duration::from_millis(250),
            scrub_interval: Duration::from_millis(100),
            window: Duration::from_millis(1500),
        }
    }
}

/// One measured run of the mutation storm.
#[derive(Debug, Clone, Copy)]
pub struct StormThroughput {
    /// Records appended (= acknowledged mutations) in the window.
    pub appends: u64,
    /// Acknowledged mutations per second.
    pub appends_per_sec: f64,
    /// Scrub passes completed during the window (0 on the bare run).
    pub scrub_passes: u64,
    /// Sealed segments verified across those passes.
    pub segments_verified: u64,
    /// Files quarantined (must be 0 — the storm writes a healthy log).
    pub quarantined: u64,
    /// Transient read errors (contended reads retried next pass).
    pub read_errors: u64,
}

/// Full scrub-overhead report.
#[derive(Debug)]
pub struct ScrubBenchReport {
    /// The configuration that produced the numbers.
    pub config: ScrubBenchConfig,
    /// The storm with no scrubber.
    pub baseline: StormThroughput,
    /// The same storm with a thread looping full scrub passes.
    pub with_scrub: StormThroughput,
    /// `with_scrub / baseline` acked-throughput ratio (the headline).
    pub throughput_ratio: f64,
    /// Pass/fail claims.
    pub checks: Vec<ShapeCheck>,
}

/// The study database: `users` demographic default profiles over the
/// POI reference workload, sharded.
fn study_db(cfg: &ScrubBenchConfig) -> Arc<ShardedMultiUserDb> {
    let env = poi_env();
    let rel = poi_relation(&env, 9, 4);
    let mut db = MultiUserDb::new(env.clone(), rel, 16);
    let demos = all_demographics();
    for i in 0..cfg.users {
        let profile = default_profile(&env, db.relation(), demos[i % demos.len()]);
        db.add_user_with_profile(&format!("user{i}"), profile)
            .unwrap();
    }
    Arc::new(ShardedMultiUserDb::from_db(db, cfg.shards))
}

fn bench_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ctxpref-scrub-{tag}-{}", std::process::id()))
}

/// Drive the mutation storm, optionally with a concurrent scrub loop.
fn run_storm(cfg: &ScrubBenchConfig, tag: &str, scrub: bool) -> StormThroughput {
    let dir = bench_dir(tag);
    let _ = std::fs::remove_dir_all(&dir);
    let opts = WalOptions {
        sync: SyncPolicy::GroupCommit {
            flush_interval: cfg.flush_interval,
        },
        segment_max_bytes: cfg.segment_max_bytes,
    };
    let durable =
        Arc::new(DurableDb::create(&dir, study_db(cfg), opts).expect("creating the bench WAL"));

    let stop = AtomicBool::new(false);
    let barrier = Barrier::new(cfg.writer_threads + 1);
    let scrub_passes = AtomicU64::new(0);
    let segments_verified = AtomicU64::new(0);
    let quarantined = AtomicU64::new(0);
    let read_errors = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..cfg.writer_threads {
            let (stop, barrier, durable) = (&stop, &barrier, &durable);
            scope.spawn(move || {
                barrier.wait();
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Rotate victims so the appends spread over the
                    // per-shard logs; toggle by round so every edit is
                    // a real re-score, never a same-value no-op.
                    let victim = format!("user{}", (t * 3 + n as usize) % cfg.users);
                    let round = t as u64 + n / cfg.users as u64;
                    let score = if round.is_multiple_of(2) { 0.35 } else { 0.65 };
                    durable
                        .update_preference_score(&victim, 0, score)
                        .expect("benchmark mutation must be conflict-free");
                    n += 1;
                }
            });
        }
        {
            let (stop, durable) = (&stop, &durable);
            let interval = cfg.flush_interval;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    durable.flush().expect("benchmark group-commit flush");
                }
            });
        }
        {
            let (stop, durable) = (&stop, &durable);
            let interval = cfg.checkpoint_interval;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    durable.checkpoint().expect("benchmark checkpoint");
                }
            });
        }
        if scrub {
            let (stop, durable) = (&stop, &durable);
            let (passes, segs, quar, errs) = (
                &scrub_passes,
                &segments_verified,
                &quarantined,
                &read_errors,
            );
            let interval = cfg.scrub_interval;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let report = durable.scrub().expect("benchmark scrub pass");
                    passes.fetch_add(1, Ordering::Relaxed);
                    segs.fetch_add(report.segments_verified, Ordering::Relaxed);
                    quar.fetch_add(report.quarantined.len() as u64, Ordering::Relaxed);
                    errs.fetch_add(report.read_errors, Ordering::Relaxed);
                    std::thread::sleep(interval);
                }
            });
        }
        barrier.wait();
        std::thread::sleep(cfg.window);
        stop.store(true, Ordering::Relaxed);
    });

    let status = durable.wal_status();
    let secs = cfg.window.as_secs_f64();
    let out = StormThroughput {
        appends: status.appends,
        appends_per_sec: status.appends as f64 / secs,
        scrub_passes: scrub_passes.into_inner(),
        segments_verified: segments_verified.into_inner(),
        quarantined: quarantined.into_inner(),
        read_errors: read_errors.into_inner(),
    };
    drop(durable);
    let _ = std::fs::remove_dir_all(&dir);
    out
}

/// Run the full scrub-overhead benchmark.
pub fn run(cfg: ScrubBenchConfig) -> ScrubBenchReport {
    let baseline = run_storm(&cfg, "bare", false);
    let with_scrub = run_storm(&cfg, "scrubbed", true);
    let throughput_ratio = if baseline.appends_per_sec > 0.0 {
        with_scrub.appends_per_sec / baseline.appends_per_sec
    } else {
        f64::INFINITY
    };
    let checks = vec![
        ShapeCheck::new(
            "a concurrent scrubber costs <10% sustained append throughput",
            throughput_ratio >= 0.9,
            format!(
                "bare {:.0} acked/s vs scrubbed {:.0} acked/s ({:.1}% kept)",
                baseline.appends_per_sec,
                with_scrub.appends_per_sec,
                throughput_ratio * 100.0
            ),
        ),
        ShapeCheck::new(
            "the scrubber actually verified sealed segments mid-storm",
            with_scrub.scrub_passes > 0 && with_scrub.segments_verified > 0,
            format!(
                "{} pass(es), {} sealed segment(s) verified",
                with_scrub.scrub_passes, with_scrub.segments_verified
            ),
        ),
        ShapeCheck::new(
            "a healthy log scrubs clean under write pressure (no phantom quarantine)",
            with_scrub.quarantined == 0,
            format!(
                "{} quarantined, {} transient read error(s)",
                with_scrub.quarantined, with_scrub.read_errors
            ),
        ),
    ];
    ScrubBenchReport {
        config: cfg,
        baseline,
        with_scrub,
        throughput_ratio,
        checks,
    }
}

impl ScrubBenchReport {
    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "scrub overhead, mutation storm: {} users over {} shard logs, {} writers, {} B segments, {:?} scrub interval, {:?} window\n",
            self.config.users,
            self.config.shards,
            self.config.writer_threads,
            self.config.segment_max_bytes,
            self.config.scrub_interval,
            self.config.window
        ));
        out.push_str(&format!(
            "  bare storm:     {:>7.0} acked/s\n",
            self.baseline.appends_per_sec
        ));
        out.push_str(&format!(
            "  with scrubber:  {:>7.0} acked/s  ({} passes, {} segments verified)\n",
            self.with_scrub.appends_per_sec,
            self.with_scrub.scrub_passes,
            self.with_scrub.segments_verified
        ));
        out.push_str(&format!(
            "  throughput kept: {:.1}%\n",
            self.throughput_ratio * 100.0
        ));
        out.push_str(&crate::render_checks(&self.checks));
        out
    }

    /// Serialize as a small JSON document (hand-rolled; the workspace
    /// has no serde).
    pub fn to_json(&self) -> String {
        let storm = |s: &StormThroughput| {
            format!(
                "{{\"appends\": {}, \"appends_per_sec\": {:.1}, \"scrub_passes\": {}, \"segments_verified\": {}, \"quarantined\": {}, \"read_errors\": {}}}",
                s.appends, s.appends_per_sec, s.scrub_passes, s.segments_verified, s.quarantined, s.read_errors
            )
        };
        let checks: Vec<String> = self
            .checks
            .iter()
            .map(|c| {
                format!(
                    "    {{\"name\": {:?}, \"pass\": {}, \"detail\": {:?}}}",
                    c.name, c.pass, c.detail
                )
            })
            .collect();
        format!(
            "{{\n  \"benchmark\": \"scrub_pr8\",\n  \"config\": {{\"users\": {}, \"writer_threads\": {}, \"shards\": {}, \"segment_max_bytes\": {}, \"flush_interval_ms\": {}, \"checkpoint_interval_ms\": {}, \"scrub_interval_ms\": {}, \"window_ms\": {}}},\n  \"baseline\": {},\n  \"with_scrub\": {},\n  \"throughput_ratio\": {:.3},\n  \"checks\": [\n{}\n  ]\n}}\n",
            self.config.users,
            self.config.writer_threads,
            self.config.shards,
            self.config.segment_max_bytes,
            self.config.flush_interval.as_millis(),
            self.config.checkpoint_interval.as_millis(),
            self.config.scrub_interval.as_millis(),
            self.config.window.as_millis(),
            storm(&self.baseline),
            storm(&self.with_scrub),
            self.throughput_ratio,
            checks.join(",\n")
        )
    }
}
