#![warn(missing_docs)]
//! Reproduction harness for the evaluation of *"Adding Context to
//! Preferences"* (Section 5).
//!
//! One module per table/figure; each returns a structured result with a
//! `render()` method (the rows/series the paper reports) and
//! `shape_checks()` — the qualitative claims that must hold even though
//! absolute numbers come from a different substrate:
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`table1`] | Table 1 — usability study |
//! | [`fig5`] | Figure 5 — profile-tree size, real profile |
//! | [`fig6`] | Figure 6 — tree size, synthetic profiles + skew sweep |
//! | [`fig7`] | Figure 7 — cell accesses during context resolution |
//! | [`complexity`] | Section 3.3 / 4.4 complexity claims |
//! | [`qcache_exp`] | Context query tree ablation (Section 7 item (b)) |
//! | [`dag_exp`] | DAG-compression ablation (shared subtrees, §3.3) |
//! | [`ties_exp`] | Distance-function tie-rate ablation (§5.1 discussion) |
//!
//! Run everything with `cargo run -p ctxpref-bench --bin repro --release -- all`.

pub mod complexity;
pub mod dag_exp;
pub mod durability;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod net;
pub mod qcache_exp;
pub mod replication;
pub mod router;
pub mod scrub;
pub mod serving;
pub mod storm;
pub mod table1;
pub mod tablefmt;
pub mod ties_exp;
pub mod views;

/// A named boolean shape check ("who wins, by roughly what factor").
#[derive(Debug, Clone)]
pub struct ShapeCheck {
    /// Short name of the claim.
    pub name: String,
    /// Whether the measurement supports the claim.
    pub pass: bool,
    /// The measured numbers backing the verdict.
    pub detail: String,
}

impl ShapeCheck {
    /// Build a check from its parts.
    pub fn new(name: impl Into<String>, pass: bool, detail: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            pass,
            detail: detail.into(),
        }
    }
}

/// Render shape checks as `[PASS]` / `[FAIL]` lines.
pub fn render_checks(checks: &[ShapeCheck]) -> String {
    let mut out = String::new();
    for c in checks {
        out.push_str(&format!(
            "  [{}] {} — {}\n",
            if c.pass { "PASS" } else { "FAIL" },
            c.name,
            c.detail
        ));
    }
    out
}
