//! Network serving benchmark (PR 5, extended in PR 7): the same
//! `CtxPrefService` queried in-process and over a loopback TCP socket,
//! serially and pipelined.
//!
//! All paths hit the *same* service instance — the loopback paths add
//! only the wire: binary `ctxpref2` encode, one frame each way with
//! FNV-1a verification, and the server's dispatch. The measured gap is
//! therefore the cost of the network layer itself (syscalls, framing,
//! protocol encode/decode), not a different database.
//!
//! The serial path pays one loopback round trip per query and is gated
//! only by a sanity factor (100×). The **pipelined** path keeps
//! `pipeline_depth` requests in flight on one connection, amortizing
//! the round trip across the burst — that is the deployment shape, and
//! it is gated hard: within **2×** of in-process throughput (the
//! serial path measured 3.6× in `BENCH_PR5.json`). Batched mutations
//! get the same treatment: N inserts in one `batch` frame versus N
//! serial insert round trips.
//!
//! Run via `cargo run -p ctxpref-bench --release --bin serving_bench --
//! --net`, which emits `BENCH_PR7.json`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ctxpref_context::ContextState;
use ctxpref_core::MultiUserDb;
use ctxpref_net::{
    read_frame, FrameError, NetClient, NetClientConfig, NetServer, NetServerConfig, Request,
};
use ctxpref_service::{CtxPrefService, ServiceConfig};
use ctxpref_workload::reference::{poi_env, poi_relation};

use crate::ShapeCheck;

/// Workload knobs for the network benchmark.
#[derive(Debug, Clone, Copy)]
pub struct NetBenchConfig {
    /// Registered users (queries rotate over all of them).
    pub users: usize,
    /// Result size per query.
    pub k: usize,
    /// Per-request deadline handed to the service on both paths.
    pub deadline: Duration,
    /// Measurement window per path.
    pub window: Duration,
    /// Relation seed.
    pub seed: u64,
    /// Requests in flight per pipelined burst.
    pub pipeline_depth: usize,
    /// Inserts per batched-mutation frame.
    pub batch_size: usize,
}

impl Default for NetBenchConfig {
    fn default() -> Self {
        Self {
            users: 8,
            k: 5,
            deadline: Duration::from_millis(250),
            window: Duration::from_millis(1500),
            seed: 0x5EED_2007,
            pipeline_depth: 64,
            batch_size: 64,
        }
    }
}

/// Throughput and latency of one query path.
#[derive(Debug, Clone, Copy)]
pub struct PathThroughput {
    /// Completed queries in the window.
    pub queries: u64,
    /// Queries per second.
    pub qps: f64,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
}

/// Full network-benchmark report.
#[derive(Debug)]
pub struct NetBenchReport {
    /// The configuration that produced the numbers.
    pub config: NetBenchConfig,
    /// Direct calls on the shared service.
    pub in_process: PathThroughput,
    /// The same queries through `NetClient` → loopback → `NetServer`,
    /// one request in flight at a time.
    pub loopback: PathThroughput,
    /// The same queries pipelined `pipeline_depth` deep on one
    /// connection (per-request latency is the burst latency divided by
    /// the depth — the amortized cost a saturating client sees).
    pub pipelined: PathThroughput,
    /// Serial inserts over the wire, one round trip per item
    /// (items per second).
    pub serial_insert: PathThroughput,
    /// The same inserts shipped `batch_size` per frame
    /// (items per second).
    pub batched_insert: PathThroughput,
    /// In-process/loopback throughput ratio (the cost of the wire,
    /// unamortized).
    pub wire_slowdown: f64,
    /// In-process/pipelined throughput ratio — the gated number.
    pub wire_slowdown_pipelined: f64,
    /// Nanoseconds per rejected hostile (oversized) frame header.
    pub oversized_reject_ns: f64,
    /// Pass/fail claims.
    pub checks: Vec<ShapeCheck>,
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

fn throughput(samples_us: &mut [u64], window: Duration) -> PathThroughput {
    samples_us.sort_unstable();
    PathThroughput {
        queries: samples_us.len() as u64,
        qps: samples_us.len() as f64 / window.as_secs_f64(),
        p50_us: percentile(samples_us, 0.50),
        p99_us: percentile(samples_us, 0.99),
    }
}

/// Seed the shared service: `users` profiles, one inserted preference
/// each, so every query resolves real preference state.
fn make_service(cfg: &NetBenchConfig) -> Arc<CtxPrefService> {
    let env = poi_env();
    let db = MultiUserDb::new(env.clone(), poi_relation(&env, cfg.seed, 4), 16);
    let service = Arc::new(CtxPrefService::new(db, ServiceConfig::default()));
    for i in 0..cfg.users {
        let user = format!("user{i}");
        service.add_user(&user).expect("seeding a bench user");
        service
            .insert_preference_eq(
                &user,
                "accompanying_people = friends",
                "type",
                "museum".into(),
                0.8,
            )
            .expect("seeding a bench preference");
    }
    service
}

fn bench_state(service: &CtxPrefService) -> ContextState {
    service.with_db(|db| {
        ContextState::parse(db.env(), &["Plaka", "warm", "friends"]).expect("the reference state")
    })
}

/// Run the full network benchmark.
pub fn run(cfg: NetBenchConfig) -> NetBenchReport {
    let service = make_service(&cfg);
    let state = bench_state(&service);

    // --- in-process: direct calls on the service ---------------------
    let mut samples = Vec::new();
    let deadline = Instant::now() + cfg.window;
    let mut n = 0u64;
    while Instant::now() < deadline {
        let user = format!("user{}", n as usize % cfg.users);
        let started = Instant::now();
        let answer = service
            .query_state_deadline(&user, &state, cfg.deadline)
            .expect("in-process bench query");
        samples.push(started.elapsed().as_micros() as u64);
        assert!(
            !answer.answer.results.is_empty(),
            "the bench query must produce rows"
        );
        n += 1;
    }
    let in_process = throughput(&mut samples, cfg.window);

    // --- loopback: the same service behind NetServer -----------------
    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&service),
        NetServerConfig::default(),
    )
    .expect("binding the bench server on loopback");
    let mut client =
        NetClient::connect(server.local_addr().to_string(), NetClientConfig::default());
    let wire_state = ["Plaka", "warm", "friends"];

    // Fidelity first: one remote answer must match the direct one.
    let direct = service
        .query_state_deadline("user0", &state, cfg.deadline)
        .expect("direct fidelity query");
    let direct_rows: Vec<(String, f64)> = service.with_db(|db| {
        let attr = db
            .relation()
            .schema()
            .require_attr("name")
            .expect("the reference relation has a name attribute");
        direct
            .answer
            .results
            .top_k_with_ties(cfg.k)
            .iter()
            .map(|e| {
                (
                    db.relation().tuple(e.tuple_index).value(attr).to_string(),
                    e.score,
                )
            })
            .collect()
    });
    let remote = client
        .query("user0", "name", cfg.k, cfg.deadline, &wire_state)
        .expect("remote fidelity query");
    let remote_rows: Vec<(String, f64)> = remote
        .rows
        .iter()
        .map(|r| (r.name.clone(), r.score))
        .collect();
    let fidelity = direct_rows == remote_rows;

    let mut samples = Vec::new();
    let deadline = Instant::now() + cfg.window;
    let mut n = 0u64;
    while Instant::now() < deadline {
        let user = format!("user{}", n as usize % cfg.users);
        let started = Instant::now();
        let answer = client
            .query(&user, "name", cfg.k, cfg.deadline, &wire_state)
            .expect("loopback bench query");
        samples.push(started.elapsed().as_micros() as u64);
        assert!(
            !answer.rows.is_empty(),
            "the remote query must produce rows"
        );
        n += 1;
    }
    let loopback = throughput(&mut samples, cfg.window);

    // --- pipelined loopback: depth × requests in flight --------------
    let depth = cfg.pipeline_depth.max(1);
    let mut samples = Vec::new();
    let deadline = Instant::now() + cfg.window;
    let mut n = 0u64;
    while Instant::now() < deadline {
        let reqs: Vec<Request> = (0..depth)
            .map(|i| Request::Query {
                user: format!("user{}", (n as usize + i) % cfg.users),
                attr: "name".to_string(),
                k: cfg.k,
                deadline_ms: cfg.deadline.as_millis() as u64,
                state: wire_state.iter().map(|s| s.to_string()).collect(),
            })
            .collect();
        let started = Instant::now();
        let resps = client.pipeline(&reqs).expect("pipelined bench burst");
        // Amortized per-request latency: what each request cost the
        // burst, not how long each waited.
        let per_req = (started.elapsed().as_micros() as u64 / depth as u64).max(1);
        assert_eq!(resps.len(), depth, "every pipelined request answered");
        samples.extend(std::iter::repeat_n(per_req, depth));
        n += depth as u64;
    }
    let pipelined = throughput(&mut samples, cfg.window);

    // --- mutations: serial round trips vs one batch frame ------------
    client
        .add_user("bulkbench")
        .expect("seeding the mutation bench user");
    let mut samples = Vec::new();
    let deadline = Instant::now() + cfg.window;
    while Instant::now() < deadline {
        let started = Instant::now();
        client
            .insert_preference(
                "bulkbench",
                "accompanying_people = friends",
                "type",
                "museum",
                0.5,
            )
            .expect("serial bench insert");
        samples.push(started.elapsed().as_micros() as u64);
    }
    let serial_insert = throughput(&mut samples, cfg.window);

    let batch = cfg.batch_size.max(1);
    let items: Vec<(&str, &str, &str, f64)> = (0..batch)
        .map(|_| ("accompanying_people = friends", "type", "museum", 0.5))
        .collect();
    let mut samples = Vec::new();
    let deadline = Instant::now() + cfg.window;
    while Instant::now() < deadline {
        let started = Instant::now();
        let applied = client
            .insert_preferences("bulkbench", &items)
            .expect("batched bench insert");
        assert_eq!(applied, batch, "the whole batch must apply");
        let per_item = (started.elapsed().as_micros() as u64 / batch as u64).max(1);
        samples.extend(std::iter::repeat_n(per_item, batch));
    }
    let batched_insert = throughput(&mut samples, cfg.window);

    drop(client);
    server.shutdown();

    // --- hostile headers: rejection must cost a header parse ---------
    let mut hostile = Vec::new();
    hostile.extend_from_slice(&u32::MAX.to_le_bytes());
    hostile.extend_from_slice(&0u64.to_le_bytes());
    let rounds = 100_000u32;
    let started = Instant::now();
    let mut rejected = true;
    for _ in 0..rounds {
        let mut cur = &hostile[..];
        rejected &= matches!(read_frame(&mut cur), Err(FrameError::Oversized { .. }));
    }
    let oversized_reject_ns = started.elapsed().as_nanos() as f64 / f64::from(rounds);

    let wire_slowdown = if loopback.qps > 0.0 {
        in_process.qps / loopback.qps
    } else {
        f64::INFINITY
    };
    let wire_slowdown_pipelined = if pipelined.qps > 0.0 {
        in_process.qps / pipelined.qps
    } else {
        f64::INFINITY
    };
    let checks = vec![
        ShapeCheck::new(
            "loopback throughput within a sane factor (100×) of in-process",
            loopback.qps > 0.0 && wire_slowdown <= 100.0,
            format!(
                "in-process {:.0} q/s vs loopback {:.0} q/s ({wire_slowdown:.1}× wire cost)",
                in_process.qps, loopback.qps
            ),
        ),
        ShapeCheck::new(
            "pipelined loopback throughput within 2× of in-process",
            pipelined.qps > 0.0 && wire_slowdown_pipelined < 2.0,
            format!(
                "in-process {:.0} q/s vs pipelined {:.0} q/s \
                 ({wire_slowdown_pipelined:.2}× amortized wire cost at depth {depth})",
                in_process.qps, pipelined.qps
            ),
        ),
        ShapeCheck::new(
            "batched mutations beat serial round trips",
            batched_insert.qps > serial_insert.qps,
            format!(
                "serial {:.0} items/s vs batched {:.0} items/s ({batch} per frame)",
                serial_insert.qps, batched_insert.qps
            ),
        ),
        ShapeCheck::new(
            "loopback answers match in-process answers row for row",
            fidelity,
            format!(
                "{} direct rows vs {} remote rows for user0",
                direct_rows.len(),
                remote_rows.len()
            ),
        ),
        ShapeCheck::new(
            "oversized length prefixes rejected from the header alone",
            rejected && oversized_reject_ns < 10_000.0,
            format!("{oversized_reject_ns:.0} ns per rejected 4 GiB claim"),
        ),
    ];
    NetBenchReport {
        config: cfg,
        in_process,
        loopback,
        pipelined,
        serial_insert,
        batched_insert,
        wire_slowdown,
        wire_slowdown_pipelined,
        oversized_reject_ns,
        checks,
    }
}

impl NetBenchReport {
    /// Human-readable summary.
    pub fn render(&self) -> String {
        let path = |name: &str, p: &PathThroughput| {
            format!(
                "  {name:<12} {:>7.0} q/s  (p50 {} µs, p99 {} µs, {} queries)\n",
                p.qps, p.p50_us, p.p99_us, p.queries
            )
        };
        let mut out = String::new();
        out.push_str(&format!(
            "network serving: {} users, k={}, {:?} deadline, {:?} window per path\n",
            self.config.users, self.config.k, self.config.deadline, self.config.window
        ));
        out.push_str(&path("in-process:", &self.in_process));
        out.push_str(&path("loopback:", &self.loopback));
        out.push_str(&path(
            &format!("pipelined×{}:", self.config.pipeline_depth),
            &self.pipelined,
        ));
        out.push_str(&path("ins serial:", &self.serial_insert));
        out.push_str(&path(
            &format!("ins batch×{}:", self.config.batch_size),
            &self.batched_insert,
        ));
        out.push_str(&format!(
            "  wire cost: {:.1}× serial, {:.2}× pipelined; hostile header rejected in {:.0} ns\n",
            self.wire_slowdown, self.wire_slowdown_pipelined, self.oversized_reject_ns
        ));
        out.push_str(&crate::render_checks(&self.checks));
        out
    }

    /// Serialize as a small JSON document (hand-rolled; the workspace
    /// has no serde).
    pub fn to_json(&self) -> String {
        let path = |p: &PathThroughput| {
            format!(
                "{{\"queries\": {}, \"qps\": {:.1}, \"p50_us\": {}, \"p99_us\": {}}}",
                p.queries, p.qps, p.p50_us, p.p99_us
            )
        };
        let checks: Vec<String> = self
            .checks
            .iter()
            .map(|c| {
                format!(
                    "    {{\"name\": {:?}, \"pass\": {}, \"detail\": {:?}}}",
                    c.name, c.pass, c.detail
                )
            })
            .collect();
        format!(
            "{{\n  \"benchmark\": \"net_pr7\",\n  \"config\": {{\"users\": {}, \"k\": {}, \"deadline_ms\": {}, \"window_ms\": {}, \"seed\": {}, \"pipeline_depth\": {}, \"batch_size\": {}}},\n  \"in_process\": {},\n  \"loopback\": {},\n  \"pipelined\": {},\n  \"serial_insert\": {},\n  \"batched_insert\": {},\n  \"wire_slowdown\": {:.2},\n  \"wire_slowdown_pipelined\": {:.2},\n  \"oversized_reject_ns\": {:.0},\n  \"checks\": [\n{}\n  ]\n}}\n",
            self.config.users,
            self.config.k,
            self.config.deadline.as_millis(),
            self.config.window.as_millis(),
            self.config.seed,
            self.config.pipeline_depth,
            self.config.batch_size,
            path(&self.in_process),
            path(&self.loopback),
            path(&self.pipelined),
            path(&self.serial_insert),
            path(&self.batched_insert),
            self.wire_slowdown,
            self.wire_slowdown_pipelined,
            self.oversized_reject_ns,
            checks.join(",\n")
        )
    }
}
