//! Network serving benchmark (PR 5): the same `CtxPrefService`
//! queried in-process and over a loopback TCP socket.
//!
//! Both paths hit the *same* service instance — the loopback path adds
//! only the wire: request encode, one frame each way with FNV-1a
//! verification, and the server's dispatch. The measured gap is
//! therefore the cost of the network layer itself (syscalls, framing,
//! protocol encode/decode), not a different database.
//!
//! A loopback round trip costs tens of microseconds where the
//! in-process call costs a few, so the gate is a *sanity factor*, not
//! parity: the socket path must stay within two orders of magnitude of
//! the in-process path and answer identically, and the frame decoder
//! must reject hostile length claims from the header alone.
//!
//! Run via `cargo run -p ctxpref-bench --release --bin serving_bench --
//! --net`, which emits `BENCH_PR5.json`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ctxpref_context::ContextState;
use ctxpref_core::MultiUserDb;
use ctxpref_net::{read_frame, FrameError, NetClient, NetClientConfig, NetServer, NetServerConfig};
use ctxpref_service::{CtxPrefService, ServiceConfig};
use ctxpref_workload::reference::{poi_env, poi_relation};

use crate::ShapeCheck;

/// Workload knobs for the network benchmark.
#[derive(Debug, Clone, Copy)]
pub struct NetBenchConfig {
    /// Registered users (queries rotate over all of them).
    pub users: usize,
    /// Result size per query.
    pub k: usize,
    /// Per-request deadline handed to the service on both paths.
    pub deadline: Duration,
    /// Measurement window per path.
    pub window: Duration,
    /// Relation seed.
    pub seed: u64,
}

impl Default for NetBenchConfig {
    fn default() -> Self {
        Self {
            users: 8,
            k: 5,
            deadline: Duration::from_millis(250),
            window: Duration::from_millis(1500),
            seed: 0x5EED_2007,
        }
    }
}

/// Throughput and latency of one query path.
#[derive(Debug, Clone, Copy)]
pub struct PathThroughput {
    /// Completed queries in the window.
    pub queries: u64,
    /// Queries per second.
    pub qps: f64,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
}

/// Full network-benchmark report.
#[derive(Debug)]
pub struct NetBenchReport {
    /// The configuration that produced the numbers.
    pub config: NetBenchConfig,
    /// Direct calls on the shared service.
    pub in_process: PathThroughput,
    /// The same queries through `NetClient` → loopback → `NetServer`.
    pub loopback: PathThroughput,
    /// In-process/loopback throughput ratio (the cost of the wire).
    pub wire_slowdown: f64,
    /// Nanoseconds per rejected hostile (oversized) frame header.
    pub oversized_reject_ns: f64,
    /// Pass/fail claims.
    pub checks: Vec<ShapeCheck>,
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

fn throughput(samples_us: &mut [u64], window: Duration) -> PathThroughput {
    samples_us.sort_unstable();
    PathThroughput {
        queries: samples_us.len() as u64,
        qps: samples_us.len() as f64 / window.as_secs_f64(),
        p50_us: percentile(samples_us, 0.50),
        p99_us: percentile(samples_us, 0.99),
    }
}

/// Seed the shared service: `users` profiles, one inserted preference
/// each, so every query resolves real preference state.
fn make_service(cfg: &NetBenchConfig) -> Arc<CtxPrefService> {
    let env = poi_env();
    let db = MultiUserDb::new(env.clone(), poi_relation(&env, cfg.seed, 4), 16);
    let service = Arc::new(CtxPrefService::new(db, ServiceConfig::default()));
    for i in 0..cfg.users {
        let user = format!("user{i}");
        service.add_user(&user).expect("seeding a bench user");
        service
            .insert_preference_eq(
                &user,
                "accompanying_people = friends",
                "type",
                "museum".into(),
                0.8,
            )
            .expect("seeding a bench preference");
    }
    service
}

fn bench_state(service: &CtxPrefService) -> ContextState {
    service.with_db(|db| {
        ContextState::parse(db.env(), &["Plaka", "warm", "friends"]).expect("the reference state")
    })
}

/// Run the full network benchmark.
pub fn run(cfg: NetBenchConfig) -> NetBenchReport {
    let service = make_service(&cfg);
    let state = bench_state(&service);

    // --- in-process: direct calls on the service ---------------------
    let mut samples = Vec::new();
    let deadline = Instant::now() + cfg.window;
    let mut n = 0u64;
    while Instant::now() < deadline {
        let user = format!("user{}", n as usize % cfg.users);
        let started = Instant::now();
        let answer = service
            .query_state_deadline(&user, &state, cfg.deadline)
            .expect("in-process bench query");
        samples.push(started.elapsed().as_micros() as u64);
        assert!(
            !answer.answer.results.is_empty(),
            "the bench query must produce rows"
        );
        n += 1;
    }
    let in_process = throughput(&mut samples, cfg.window);

    // --- loopback: the same service behind NetServer -----------------
    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&service),
        NetServerConfig::default(),
    )
    .expect("binding the bench server on loopback");
    let mut client =
        NetClient::connect(server.local_addr().to_string(), NetClientConfig::default());
    let wire_state = ["Plaka", "warm", "friends"];

    // Fidelity first: one remote answer must match the direct one.
    let direct = service
        .query_state_deadline("user0", &state, cfg.deadline)
        .expect("direct fidelity query");
    let direct_rows: Vec<(String, f64)> = service.with_db(|db| {
        let attr = db
            .relation()
            .schema()
            .require_attr("name")
            .expect("the reference relation has a name attribute");
        direct
            .answer
            .results
            .top_k_with_ties(cfg.k)
            .iter()
            .map(|e| {
                (
                    db.relation().tuple(e.tuple_index).value(attr).to_string(),
                    e.score,
                )
            })
            .collect()
    });
    let remote = client
        .query("user0", "name", cfg.k, cfg.deadline, &wire_state)
        .expect("remote fidelity query");
    let remote_rows: Vec<(String, f64)> = remote
        .rows
        .iter()
        .map(|r| (r.name.clone(), r.score))
        .collect();
    let fidelity = direct_rows == remote_rows;

    let mut samples = Vec::new();
    let deadline = Instant::now() + cfg.window;
    let mut n = 0u64;
    while Instant::now() < deadline {
        let user = format!("user{}", n as usize % cfg.users);
        let started = Instant::now();
        let answer = client
            .query(&user, "name", cfg.k, cfg.deadline, &wire_state)
            .expect("loopback bench query");
        samples.push(started.elapsed().as_micros() as u64);
        assert!(
            !answer.rows.is_empty(),
            "the remote query must produce rows"
        );
        n += 1;
    }
    let loopback = throughput(&mut samples, cfg.window);
    drop(client);
    server.shutdown();

    // --- hostile headers: rejection must cost a header parse ---------
    let mut hostile = Vec::new();
    hostile.extend_from_slice(&u32::MAX.to_le_bytes());
    hostile.extend_from_slice(&0u64.to_le_bytes());
    let rounds = 100_000u32;
    let started = Instant::now();
    let mut rejected = true;
    for _ in 0..rounds {
        let mut cur = &hostile[..];
        rejected &= matches!(read_frame(&mut cur), Err(FrameError::Oversized { .. }));
    }
    let oversized_reject_ns = started.elapsed().as_nanos() as f64 / f64::from(rounds);

    let wire_slowdown = if loopback.qps > 0.0 {
        in_process.qps / loopback.qps
    } else {
        f64::INFINITY
    };
    let checks = vec![
        ShapeCheck::new(
            "loopback throughput within a sane factor (100×) of in-process",
            loopback.qps > 0.0 && wire_slowdown <= 100.0,
            format!(
                "in-process {:.0} q/s vs loopback {:.0} q/s ({wire_slowdown:.1}× wire cost)",
                in_process.qps, loopback.qps
            ),
        ),
        ShapeCheck::new(
            "loopback answers match in-process answers row for row",
            fidelity,
            format!(
                "{} direct rows vs {} remote rows for user0",
                direct_rows.len(),
                remote_rows.len()
            ),
        ),
        ShapeCheck::new(
            "oversized length prefixes rejected from the header alone",
            rejected && oversized_reject_ns < 10_000.0,
            format!("{oversized_reject_ns:.0} ns per rejected 4 GiB claim"),
        ),
    ];
    NetBenchReport {
        config: cfg,
        in_process,
        loopback,
        wire_slowdown,
        oversized_reject_ns,
        checks,
    }
}

impl NetBenchReport {
    /// Human-readable summary.
    pub fn render(&self) -> String {
        let path = |name: &str, p: &PathThroughput| {
            format!(
                "  {name:<12} {:>7.0} q/s  (p50 {} µs, p99 {} µs, {} queries)\n",
                p.qps, p.p50_us, p.p99_us, p.queries
            )
        };
        let mut out = String::new();
        out.push_str(&format!(
            "network serving: {} users, k={}, {:?} deadline, {:?} window per path\n",
            self.config.users, self.config.k, self.config.deadline, self.config.window
        ));
        out.push_str(&path("in-process:", &self.in_process));
        out.push_str(&path("loopback:", &self.loopback));
        out.push_str(&format!(
            "  wire cost: {:.1}× slower than in-process; hostile header rejected in {:.0} ns\n",
            self.wire_slowdown, self.oversized_reject_ns
        ));
        out.push_str(&crate::render_checks(&self.checks));
        out
    }

    /// Serialize as a small JSON document (hand-rolled; the workspace
    /// has no serde).
    pub fn to_json(&self) -> String {
        let path = |p: &PathThroughput| {
            format!(
                "{{\"queries\": {}, \"qps\": {:.1}, \"p50_us\": {}, \"p99_us\": {}}}",
                p.queries, p.qps, p.p50_us, p.p99_us
            )
        };
        let checks: Vec<String> = self
            .checks
            .iter()
            .map(|c| {
                format!(
                    "    {{\"name\": {:?}, \"pass\": {}, \"detail\": {:?}}}",
                    c.name, c.pass, c.detail
                )
            })
            .collect();
        format!(
            "{{\n  \"benchmark\": \"net_pr5\",\n  \"config\": {{\"users\": {}, \"k\": {}, \"deadline_ms\": {}, \"window_ms\": {}, \"seed\": {}}},\n  \"in_process\": {},\n  \"loopback\": {},\n  \"wire_slowdown\": {:.2},\n  \"oversized_reject_ns\": {:.0},\n  \"checks\": [\n{}\n  ]\n}}\n",
            self.config.users,
            self.config.k,
            self.config.deadline.as_millis(),
            self.config.window.as_millis(),
            self.config.seed,
            path(&self.in_process),
            path(&self.loopback),
            self.wire_slowdown,
            self.oversized_reject_ns,
            checks.join(",\n")
        )
    }
}
