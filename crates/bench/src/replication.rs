//! Replication benchmark (PR 4): async vs quorum acks under injected
//! network latency, and the failover-to-first-served-read time.
//!
//! The workload is pure mutation pressure through the cluster's write
//! path. Both ack modes run under the same deterministic per-send
//! latency injected at the `repl.send.delay` fault site — the
//! in-process transport delivers in nanoseconds, which no network
//! does, so the fault framework restores a realistic send cost and the
//! benchmark measures the *ack policy* (who waits for which
//! round-trip), not the build machine's memory bus.
//!
//! * **Async** acks once the primary holds the write; replicas catch
//!   up in the background, so the ack path pays no sends at all.
//! * **Quorum** acks only once a majority holds the write durably, so
//!   every ack pays at least one shipped batch per reachable replica —
//!   and survives failover, which the failover phase then proves: the
//!   primary is killed mid-cluster, the failure detector promotes the
//!   best replica, and every quorum-acked write is still served.
//!
//! Run via `cargo run -p ctxpref-bench --release --bin serving_bench --
//! --replication`, which emits `BENCH_PR4.json`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ctxpref_core::ShardedMultiUserDb;
use ctxpref_replication::{AckMode, Cluster, ClusterConfig, ReplicationError};
use ctxpref_wal::{SyncPolicy, WalOp, WalOptions};
use ctxpref_workload::reference::{poi_env, poi_relation};
use ctxpref_workload::user_study::{all_demographics, default_profile};

use crate::ShapeCheck;

/// Workload knobs for the replication benchmark.
#[derive(Debug, Clone, Copy)]
pub struct ReplicationBenchConfig {
    /// Cluster size (one primary, the rest replicas).
    pub nodes: usize,
    /// Registered users (writes rotate over all of them, spreading the
    /// shipped batches across the per-shard logs).
    pub users: usize,
    /// Stripes of each node's core — and therefore shipped shards.
    pub shards: usize,
    /// Deterministic latency injected at every `repl.send.delay` hit.
    pub send_latency: Duration,
    /// Measurement window per ack mode.
    pub window: Duration,
    /// Heartbeats the failure detector needs before failing over.
    pub heartbeat_threshold: u32,
    /// Fault-plan seed (the injection is unconditional; the seed only
    /// feeds the plan's RNG plumbing).
    pub seed: u64,
}

impl Default for ReplicationBenchConfig {
    fn default() -> Self {
        Self {
            nodes: 3,
            users: 8,
            shards: 4,
            send_latency: Duration::from_micros(500),
            window: Duration::from_millis(1500),
            heartbeat_threshold: 3,
            seed: 0x5EED_2007,
        }
    }
}

/// Throughput of one ack mode under the mutation storm.
#[derive(Debug, Clone, Copy)]
pub struct AckThroughput {
    /// Writes acknowledged in the window.
    pub acked: u64,
    /// Acknowledged writes per second.
    pub acked_per_sec: f64,
    /// Laggiest replica's deficit (in records) when the window closed,
    /// before any pump.
    pub end_lag: u64,
}

/// What the failover phase measured.
#[derive(Debug, Clone, Copy)]
pub struct FailoverResult {
    /// Quorum-acked writes in place when the primary was killed.
    pub acked_before_kill: u64,
    /// Kill → promotion complete (epoch minted, catch-up done).
    pub promote_ms: f64,
    /// Kill → first read served by the new primary.
    pub first_read_ms: f64,
    /// The epoch the promotion minted.
    pub new_epoch: u64,
    /// Acked writes visible on the new primary (must equal
    /// `acked_before_kill`).
    pub survivors: u64,
}

/// Full replication-benchmark report.
#[derive(Debug)]
pub struct ReplicationBenchReport {
    /// The configuration that produced the numbers.
    pub config: ReplicationBenchConfig,
    /// Ack on primary durability only.
    pub async_acks: AckThroughput,
    /// Ack on majority durability.
    pub quorum_acks: AckThroughput,
    /// Async/quorum acked-throughput ratio (the cost of the quorum).
    pub async_speedup: f64,
    /// The failover phase.
    pub failover: FailoverResult,
    /// Pass/fail claims.
    pub checks: Vec<ShapeCheck>,
}

fn bench_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ctxpref-replication-{tag}-{}", std::process::id()))
}

fn make_cluster(cfg: &ReplicationBenchConfig, tag: &str, ack: AckMode) -> Cluster {
    let dir = bench_dir(tag);
    let _ = std::fs::remove_dir_all(&dir);
    let env = poi_env();
    let core_rel = poi_relation(&env, 9, 4);
    let cluster_cfg = ClusterConfig {
        ack_mode: ack,
        shards: cfg.shards,
        heartbeat_threshold: cfg.heartbeat_threshold,
        wal: WalOptions {
            sync: SyncPolicy::PerRecord,
            ..WalOptions::default()
        },
        ..ClusterConfig::new(cfg.nodes)
    };
    let cluster = Cluster::new(&dir, cluster_cfg, || {
        Arc::new(ShardedMultiUserDb::new(
            env.clone(),
            core_rel.clone(),
            16,
            cfg.shards,
        ))
    })
    .expect("creating the bench cluster");
    // Seed the users (and one preference each to re-score) through the
    // replicated write path, before the measured window opens.
    let demos = all_demographics();
    let rel = poi_relation(&env, 9, 4);
    for i in 0..cfg.users {
        let user = format!("user{i}");
        cluster
            .write(&WalOp::AddUser { user: user.clone() })
            .expect("seeding a bench user");
        let profile = default_profile(&env, &rel, demos[i % demos.len()]);
        let pref = profile.preferences()[0].clone();
        cluster
            .write(&WalOp::InsertPreference { user, pref })
            .expect("seeding a bench preference");
    }
    if ack == AckMode::Async {
        cluster.pump().expect("draining the seed backlog");
    }
    cluster
}

/// Drive the mutation storm against one ack mode and count the acks.
fn run_ack_mode(cfg: &ReplicationBenchConfig, tag: &str, ack: AckMode) -> AckThroughput {
    let cluster = make_cluster(cfg, tag, ack);
    let deadline = Instant::now() + cfg.window;
    let mut acked = 0u64;
    let mut n = 0u64;
    while Instant::now() < deadline {
        // Toggle by round so every edit is a real re-score, never a
        // same-value no-op (index 0 is the seeded preference).
        let user = format!("user{}", n as usize % cfg.users);
        let score = if (n / cfg.users as u64).is_multiple_of(2) {
            0.35
        } else {
            0.65
        };
        cluster
            .write(&WalOp::UpdateScore {
                user,
                index: 0,
                score,
            })
            .expect("benchmark mutation must be conflict-free");
        acked += 1;
        n += 1;
    }
    let end_lag = cluster.status().max_lag;
    let secs = cfg.window.as_secs_f64();
    let out = AckThroughput {
        acked,
        acked_per_sec: acked as f64 / secs,
        end_lag,
    };
    let _ = std::fs::remove_dir_all(bench_dir(tag));
    out
}

/// Kill the quorum primary under load and measure how long until a
/// replica is promoted and serves its first read.
fn run_failover(cfg: &ReplicationBenchConfig) -> FailoverResult {
    let cluster = make_cluster(cfg, "failover", AckMode::Quorum);
    let mut acked_users = Vec::new();
    for i in 0..64u64 {
        let user = format!("acked{i}");
        cluster
            .write(&WalOp::AddUser { user: user.clone() })
            .expect("pre-kill quorum write");
        acked_users.push(user);
    }
    let killed_at = Instant::now();
    cluster.crash_primary();
    // The control plane ticks until the failure detector trips and the
    // best replica is promoted (epoch-fenced, catch-up included).
    let (epoch, new_primary) = loop {
        let report = cluster.tick();
        if let Some(p) = report.promoted {
            break p;
        }
        assert!(
            killed_at.elapsed() < Duration::from_secs(30),
            "failover did not complete: {:?}",
            cluster.status()
        );
    };
    let promote_ms = killed_at.elapsed().as_secs_f64() * 1e3;
    // First served read: the new primary answers a profile lookup.
    let db = cluster
        .db_of(new_primary)
        .expect("the promoted node is live");
    db.db()
        .profile(&acked_users[0])
        .expect("the new primary serves reads");
    let first_read_ms = killed_at.elapsed().as_secs_f64() * 1e3;
    let survivors = acked_users
        .iter()
        .filter(|u| db.db().profile(u).is_ok())
        .count() as u64;
    // The deposed node must stay deposed if it ever writes again.
    let fenced = matches!(
        cluster.write_via(
            0,
            &WalOp::AddUser {
                user: "ghost".into()
            }
        ),
        Err(ReplicationError::NodeDown { .. } | ReplicationError::NotPrimary { .. })
    );
    assert!(
        fenced,
        "the killed primary is gone from the membership view"
    );
    let out = FailoverResult {
        acked_before_kill: acked_users.len() as u64,
        promote_ms,
        first_read_ms,
        new_epoch: epoch,
        survivors,
    };
    let _ = std::fs::remove_dir_all(bench_dir("failover"));
    out
}

/// Run the full replication benchmark.
pub fn run(cfg: ReplicationBenchConfig) -> ReplicationBenchReport {
    let plan = ctxpref_faults::FaultPlan::builder(cfg.seed)
        .delay(
            ctxpref_faults::sites::REPL_SEND_DELAY,
            1.0,
            cfg.send_latency,
        )
        .build();
    let (async_acks, quorum_acks) = plan.run(|| {
        (
            run_ack_mode(&cfg, "async", AckMode::Async),
            run_ack_mode(&cfg, "quorum", AckMode::Quorum),
        )
    });
    // The failover phase runs without injected latency: it measures the
    // control plane's reaction time, not the transport's.
    let failover = run_failover(&cfg);
    let async_speedup = if quorum_acks.acked_per_sec > 0.0 {
        async_acks.acked_per_sec / quorum_acks.acked_per_sec
    } else {
        f64::INFINITY
    };
    let checks = vec![
        ShapeCheck::new(
            "async acks outpace quorum acks under injected send latency",
            async_speedup >= 1.5,
            format!(
                "async {:.0} acked/s vs quorum {:.0} acked/s ({async_speedup:.1}×)",
                async_acks.acked_per_sec, quorum_acks.acked_per_sec
            ),
        ),
        ShapeCheck::new(
            "quorum acks leave no replica behind (end-of-window lag 0)",
            quorum_acks.end_lag == 0,
            format!("quorum end lag {} record(s)", quorum_acks.end_lag),
        ),
        ShapeCheck::new(
            "every quorum-acked write survives the primary kill",
            failover.survivors == failover.acked_before_kill && failover.new_epoch > 1,
            format!(
                "{}/{} acked writes on the new primary, epoch {} (promote {:.1} ms, first read {:.1} ms)",
                failover.survivors,
                failover.acked_before_kill,
                failover.new_epoch,
                failover.promote_ms,
                failover.first_read_ms
            ),
        ),
    ];
    ReplicationBenchReport {
        config: cfg,
        async_acks,
        quorum_acks,
        async_speedup,
        failover,
        checks,
    }
}

impl ReplicationBenchReport {
    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "replication, mutation storm: {} nodes, {} users over {} shard logs, {:?} injected send latency, {:?} window\n",
            self.config.nodes,
            self.config.users,
            self.config.shards,
            self.config.send_latency,
            self.config.window
        ));
        out.push_str(&format!(
            "  async acks:   {:>7.0} acked/s  (end lag {})\n",
            self.async_acks.acked_per_sec, self.async_acks.end_lag
        ));
        out.push_str(&format!(
            "  quorum acks:  {:>7.0} acked/s  (end lag {})\n",
            self.quorum_acks.acked_per_sec, self.quorum_acks.end_lag
        ));
        out.push_str(&format!(
            "  async/quorum ack speedup: {:.1}×\n",
            self.async_speedup
        ));
        out.push_str(&format!(
            "  failover: promote {:.1} ms, first served read {:.1} ms, epoch {}, {}/{} acked writes survive\n",
            self.failover.promote_ms,
            self.failover.first_read_ms,
            self.failover.new_epoch,
            self.failover.survivors,
            self.failover.acked_before_kill
        ));
        out.push_str(&crate::render_checks(&self.checks));
        out
    }

    /// Serialize as a small JSON document (hand-rolled; the workspace
    /// has no serde).
    pub fn to_json(&self) -> String {
        let ack = |a: &AckThroughput| {
            format!(
                "{{\"acked\": {}, \"acked_per_sec\": {:.1}, \"end_lag\": {}}}",
                a.acked, a.acked_per_sec, a.end_lag
            )
        };
        let checks: Vec<String> = self
            .checks
            .iter()
            .map(|c| {
                format!(
                    "    {{\"name\": {:?}, \"pass\": {}, \"detail\": {:?}}}",
                    c.name, c.pass, c.detail
                )
            })
            .collect();
        format!(
            "{{\n  \"benchmark\": \"replication_pr4\",\n  \"config\": {{\"nodes\": {}, \"users\": {}, \"shards\": {}, \"send_latency_us\": {}, \"window_ms\": {}, \"heartbeat_threshold\": {}, \"seed\": {}}},\n  \"async\": {},\n  \"quorum\": {},\n  \"async_speedup\": {:.2},\n  \"failover\": {{\"acked_before_kill\": {}, \"promote_ms\": {:.1}, \"first_read_ms\": {:.1}, \"new_epoch\": {}, \"survivors\": {}}},\n  \"checks\": [\n{}\n  ]\n}}\n",
            self.config.nodes,
            self.config.users,
            self.config.shards,
            self.config.send_latency.as_micros(),
            self.config.window.as_millis(),
            self.config.heartbeat_threshold,
            self.config.seed,
            ack(&self.async_acks),
            ack(&self.quorum_acks),
            self.async_speedup,
            self.failover.acked_before_kill,
            self.failover.promote_ms,
            self.failover.first_read_ms,
            self.failover.new_epoch,
            self.failover.survivors,
            checks.join(",\n")
        )
    }
}
