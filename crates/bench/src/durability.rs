//! Durability benchmark (PR 3): per-record fsync vs group commit on the
//! write-ahead log.
//!
//! The workload is pure mutation pressure: writer threads re-score
//! preferences as fast as the log admits them. Both policies run under
//! the same deterministic 20 ms latency injected at the
//! `wal.append.sync` fault site — this container's fsync lands in a
//! warm page cache in microseconds, which no durable device does, so
//! the PR 1 fault framework restores a realistic sync cost and the
//! benchmark measures the *policy* (who waits for which fsync), not the
//! build machine's cache.
//!
//! * **Per-record** pays the full sync inside every append, so a
//!   shard's throughput is bounded by `1 / sync_latency` and the ack is
//!   durable when the call returns.
//! * **Group commit** appends without syncing and lets a background
//!   flusher fsync whole batches on its interval; acks return
//!   non-durable and become durable at the next flush. Throughput
//!   decouples from the sync latency at the cost of a bounded
//!   durability window.
//!
//! Run via `cargo run -p ctxpref-bench --release --bin serving_bench --
//! --durability`, which emits `BENCH_PR3.json`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use ctxpref_core::{MultiUserDb, ShardedMultiUserDb};
use ctxpref_wal::{DurableDb, SyncPolicy, WalOptions};
use ctxpref_workload::reference::{poi_env, poi_relation};
use ctxpref_workload::user_study::{all_demographics, default_profile};

use crate::ShapeCheck;

/// Workload knobs for the durability benchmark.
#[derive(Debug, Clone, Copy)]
pub struct DurabilityBenchConfig {
    /// Registered users (writers rotate their edits over all of them,
    /// so the appends spread across the per-shard logs).
    pub users: usize,
    /// Threads issuing durable mutations back-to-back.
    pub writer_threads: usize,
    /// Stripes of the sharded core — and therefore independent logs.
    pub shards: usize,
    /// Group-commit flush interval.
    pub flush_interval: Duration,
    /// Deterministic latency injected at every `wal.append.sync` hit.
    pub sync_latency: Duration,
    /// Measurement window per policy.
    pub window: Duration,
    /// Fault-plan seed (the injection is unconditional; the seed only
    /// feeds the plan's RNG plumbing).
    pub seed: u64,
}

impl Default for DurabilityBenchConfig {
    fn default() -> Self {
        Self {
            users: 8,
            writer_threads: 4,
            shards: 4,
            flush_interval: Duration::from_millis(5),
            sync_latency: Duration::from_millis(20),
            window: Duration::from_millis(1500),
            seed: 0x5EED_2007,
        }
    }
}

/// Throughput of one fsync policy under the mutation storm.
#[derive(Debug, Clone, Copy)]
pub struct PolicyThroughput {
    /// Records appended (= acknowledged mutations) in the window.
    pub appends: u64,
    /// Records durable (fsync'd) when the window closed.
    pub durable: u64,
    /// Group-commit batches that synced at least one record.
    pub batches: u64,
    /// Acknowledged mutations per second.
    pub appends_per_sec: f64,
    /// Durable mutations per second.
    pub durable_per_sec: f64,
}

/// Full durability-benchmark report.
#[derive(Debug)]
pub struct DurabilityBenchReport {
    /// The configuration that produced the numbers.
    pub config: DurabilityBenchConfig,
    /// Fsync inside every append.
    pub per_record: PolicyThroughput,
    /// Background flusher fsyncs batches.
    pub group_commit: PolicyThroughput,
    /// Group-commit/per-record durable-throughput ratio (the headline).
    pub durable_speedup: f64,
    /// Pass/fail claims.
    pub checks: Vec<ShapeCheck>,
}

/// The study database: `users` demographic default profiles over the
/// POI reference workload, sharded.
fn study_db(cfg: &DurabilityBenchConfig) -> Arc<ShardedMultiUserDb> {
    let env = poi_env();
    let rel = poi_relation(&env, 9, 4);
    let mut db = MultiUserDb::new(env.clone(), rel, 16);
    let demos = all_demographics();
    for i in 0..cfg.users {
        let profile = default_profile(&env, db.relation(), demos[i % demos.len()]);
        db.add_user_with_profile(&format!("user{i}"), profile)
            .unwrap();
    }
    Arc::new(ShardedMultiUserDb::from_db(db, cfg.shards))
}

fn bench_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ctxpref-durability-{tag}-{}", std::process::id()))
}

/// Drive the mutation storm against one policy and read the log's own
/// counters afterwards.
fn run_policy(cfg: &DurabilityBenchConfig, tag: &str, sync: SyncPolicy) -> PolicyThroughput {
    let dir = bench_dir(tag);
    let _ = std::fs::remove_dir_all(&dir);
    let opts = WalOptions {
        sync,
        ..WalOptions::default()
    };
    let durable =
        Arc::new(DurableDb::create(&dir, study_db(cfg), opts).expect("creating the bench WAL"));

    let stop = AtomicBool::new(false);
    let acked = AtomicU64::new(0);
    let barrier = Barrier::new(cfg.writer_threads + 1);
    let group_commit = !matches!(sync, SyncPolicy::PerRecord);
    std::thread::scope(|scope| {
        for t in 0..cfg.writer_threads {
            let (stop, acked, barrier, durable) = (&stop, &acked, &barrier, &durable);
            scope.spawn(move || {
                barrier.wait();
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Rotate victims so the appends spread over the
                    // per-shard logs; toggle by round so every edit is
                    // a real re-score, never a same-value no-op.
                    let victim = format!("user{}", (t * 3 + n as usize) % cfg.users);
                    let round = t as u64 + n / cfg.users as u64;
                    let score = if round.is_multiple_of(2) { 0.35 } else { 0.65 };
                    durable
                        .update_preference_score(&victim, 0, score)
                        .expect("benchmark mutation must be conflict-free");
                    acked.fetch_add(1, Ordering::Relaxed);
                    n += 1;
                }
            });
        }
        if group_commit {
            let (stop, durable) = (&stop, &durable);
            let interval = cfg.flush_interval;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    durable.flush().expect("benchmark group-commit flush");
                }
            });
        }
        barrier.wait();
        std::thread::sleep(cfg.window);
        stop.store(true, Ordering::Relaxed);
    });

    // Read the durable watermark as the window left it: the final
    // flusher pass already ran (or per-record synced inline), but no
    // extra end-of-run flush flatters group commit here.
    let status = durable.wal_status();
    let durable_records: u64 = status.shards.iter().map(|s| s.synced_lsn).sum();
    let secs = cfg.window.as_secs_f64();
    let out = PolicyThroughput {
        appends: status.appends,
        durable: durable_records,
        batches: status.batches,
        appends_per_sec: status.appends as f64 / secs,
        durable_per_sec: durable_records as f64 / secs,
    };
    drop(durable);
    let _ = std::fs::remove_dir_all(&dir);
    debug_assert_eq!(out.appends, acked.into_inner());
    out
}

/// Run the full durability benchmark.
pub fn run(cfg: DurabilityBenchConfig) -> DurabilityBenchReport {
    let plan = ctxpref_faults::FaultPlan::builder(cfg.seed)
        .delay(
            ctxpref_faults::sites::WAL_APPEND_SYNC,
            1.0,
            cfg.sync_latency,
        )
        .build();
    let (per_record, group_commit) = plan.run(|| {
        (
            run_policy(&cfg, "per-record", SyncPolicy::PerRecord),
            run_policy(
                &cfg,
                "group-commit",
                SyncPolicy::GroupCommit {
                    flush_interval: cfg.flush_interval,
                },
            ),
        )
    });
    let durable_speedup = if per_record.durable_per_sec > 0.0 {
        group_commit.durable_per_sec / per_record.durable_per_sec
    } else {
        f64::INFINITY
    };
    let checks = vec![
        ShapeCheck::new(
            "group commit sustains ≥3× durable throughput under realistic fsync latency",
            durable_speedup >= 3.0,
            format!(
                "group-commit {:.0} durable/s vs per-record {:.0} durable/s ({durable_speedup:.1}×)",
                group_commit.durable_per_sec, per_record.durable_per_sec
            ),
        ),
        ShapeCheck::new(
            "per-record acks are durable acks (nothing pending, synced == appended)",
            per_record.durable == per_record.appends && per_record.batches == 0,
            format!(
                "per-record appended {} / durable {} / batches {}",
                per_record.appends, per_record.durable, per_record.batches
            ),
        ),
        ShapeCheck::new(
            "group commit amortizes fsyncs into batches (records ≫ batches > 0)",
            group_commit.batches > 0 && group_commit.durable > group_commit.batches,
            format!(
                "{} durable records over {} batches (~{:.0} records/fsync)",
                group_commit.durable,
                group_commit.batches,
                group_commit.durable as f64 / group_commit.batches.max(1) as f64
            ),
        ),
    ];
    DurabilityBenchReport {
        config: cfg,
        per_record,
        group_commit,
        durable_speedup,
        checks,
    }
}

impl DurabilityBenchReport {
    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "durability, mutation storm: {} users over {} shard logs, {} writers, {:?} injected fsync latency, {:?} group-commit interval, {:?} window\n",
            self.config.users,
            self.config.shards,
            self.config.writer_threads,
            self.config.sync_latency,
            self.config.flush_interval,
            self.config.window
        ));
        out.push_str(&format!(
            "  per-record fsync:  {:>7.0} acked/s  {:>7.0} durable/s\n",
            self.per_record.appends_per_sec, self.per_record.durable_per_sec
        ));
        out.push_str(&format!(
            "  group commit:      {:>7.0} acked/s  {:>7.0} durable/s  ({} batches)\n",
            self.group_commit.appends_per_sec,
            self.group_commit.durable_per_sec,
            self.group_commit.batches
        ));
        out.push_str(&format!(
            "  durable-throughput speedup: {:.1}×\n",
            self.durable_speedup
        ));
        out.push_str(&crate::render_checks(&self.checks));
        out
    }

    /// Serialize as a small JSON document (hand-rolled; the workspace
    /// has no serde).
    pub fn to_json(&self) -> String {
        let policy = |p: &PolicyThroughput| {
            format!(
                "{{\"appends\": {}, \"durable\": {}, \"batches\": {}, \"appends_per_sec\": {:.1}, \"durable_per_sec\": {:.1}}}",
                p.appends, p.durable, p.batches, p.appends_per_sec, p.durable_per_sec
            )
        };
        let checks: Vec<String> = self
            .checks
            .iter()
            .map(|c| {
                format!(
                    "    {{\"name\": {:?}, \"pass\": {}, \"detail\": {:?}}}",
                    c.name, c.pass, c.detail
                )
            })
            .collect();
        format!(
            "{{\n  \"benchmark\": \"durability_pr3\",\n  \"config\": {{\"users\": {}, \"writer_threads\": {}, \"shards\": {}, \"flush_interval_ms\": {}, \"sync_latency_ms\": {}, \"window_ms\": {}, \"seed\": {}}},\n  \"per_record\": {},\n  \"group_commit\": {},\n  \"durable_speedup\": {:.2},\n  \"checks\": [\n{}\n  ]\n}}\n",
            self.config.users,
            self.config.writer_threads,
            self.config.shards,
            self.config.flush_interval.as_millis(),
            self.config.sync_latency.as_millis(),
            self.config.window.as_millis(),
            self.config.seed,
            policy(&self.per_record),
            policy(&self.group_commit),
            self.durable_speedup,
            checks.join(",\n")
        )
    }
}
