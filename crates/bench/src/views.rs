//! Materialized-view benchmark (PR 10): hot-state top-k serving under
//! concurrent writers, views vs the qcache path.
//!
//! The fig-6-style workload: a working set of *hot* (user, state)
//! pairs is queried in a tight loop while writer threads keep
//! re-scoring preferences. Every mutation invalidates the whole
//! qcache, so between writes the baseline must re-resolve the entire
//! hot set from scratch; the hot set is sized so that re-warming
//! costs more than the gap between invalidations, which is exactly
//! the regime where invalidate-everything collapses. The view path
//! absorbs the same mutations incrementally (a patch, one targeted
//! rebuild, or — for non-intersecting descriptors — nothing) and
//! keeps serving from the materialized rankings. The gate is ≥3×
//! single-shard q/s — with *row-identical* answers, checked against
//! fresh resolution after the storm quiesces.
//!
//! Run via `cargo run -p ctxpref-bench --release --bin serving_bench --
//! --views`, which emits `BENCH_PR10.json`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use ctxpref_context::ContextState;
use ctxpref_core::{MultiUserDb, ShardedMultiUserDb};
use ctxpref_workload::reference::{poi_env, poi_relation};
use ctxpref_workload::user_study::{all_demographics, default_profile};

use crate::ShapeCheck;

/// Workload knobs for the materialized-view benchmark.
#[derive(Debug, Clone, Copy)]
pub struct ViewsBenchConfig {
    /// Registered users; readers and writers rotate over all of them.
    pub users: usize,
    /// Threads querying hot states back-to-back.
    pub reader_threads: usize,
    /// Threads re-scoring preferences back-to-back.
    pub writer_threads: usize,
    /// Hot context states per user (the fig-6 hot set).
    pub hot_states: usize,
    /// Rows requested per query.
    pub k: usize,
    /// POI-generator density knob (~`2 × per_region` tuples per
    /// region): sizes the relation scans a cold resolution pays.
    pub per_region: usize,
    /// Measurement window per run.
    pub window: Duration,
}

impl Default for ViewsBenchConfig {
    fn default() -> Self {
        Self {
            users: 4,
            reader_threads: 4,
            writer_threads: 2,
            hot_states: 48,
            k: 10,
            per_region: 120,
            window: Duration::from_millis(1500),
        }
    }
}

/// One measured run of the hot-state storm.
#[derive(Debug, Clone, Copy)]
pub struct HotStateThroughput {
    /// Queries answered in the window.
    pub queries: u64,
    /// Queries per second.
    pub queries_per_sec: f64,
    /// Mutations applied by the writers in the window.
    pub writes: u64,
    /// View hits (0 on the qcache run).
    pub view_hits: u64,
    /// Incremental patches absorbed (0 on the qcache run).
    pub view_patches: u64,
    /// Targeted view rebuilds (0 on the qcache run).
    pub view_rebuilds: u64,
}

/// Full materialized-view report.
#[derive(Debug)]
pub struct ViewsBenchReport {
    /// The configuration that produced the numbers.
    pub config: ViewsBenchConfig,
    /// The storm over the qcache path (`query_state`).
    pub baseline: HotStateThroughput,
    /// The same storm over the view path (`query_state_topk`).
    pub with_views: HotStateThroughput,
    /// `with_views / baseline` q/s ratio (the headline).
    pub speedup: f64,
    /// Whether every hot (user, state) answered row-identically to
    /// fresh resolution once the storm quiesced.
    pub row_identical: bool,
    /// Pass/fail claims.
    pub checks: Vec<ShapeCheck>,
}

/// The study database: demographic default profiles over the POI
/// reference workload, **single-shard** so the gate measures the
/// resolution path, not shard parallelism.
fn study_db(cfg: &ViewsBenchConfig) -> Arc<ShardedMultiUserDb> {
    let env = poi_env();
    let rel = poi_relation(&env, 2007, cfg.per_region);
    // Qcache capacity matches the view catalog's (64): the hot set
    // fits both, so the comparison is invalidation policy, not
    // capacity.
    let mut db = MultiUserDb::new(env.clone(), rel, 64);
    let demos = all_demographics();
    for i in 0..cfg.users {
        let profile = default_profile(&env, db.relation(), demos[i % demos.len()]);
        db.add_user_with_profile(&format!("user{i}"), profile)
            .unwrap();
    }
    Arc::new(ShardedMultiUserDb::from_db(db, 1))
}

/// The hot set: `n` distinct detailed states walked out of the
/// region × temperature × company cross product (distinct for any
/// `n ≤ 240`, the full product).
fn hot_states(db: &ShardedMultiUserDb, n: usize) -> Vec<ContextState> {
    let regions = [
        "Plaka",
        "Kifisia",
        "Monastiraki",
        "Kolonaki",
        "Exarchia",
        "Glyfada",
        "Piraeus",
        "Marousi",
        "Ladadika",
        "Kalamaria",
        "Ano_Poli",
        "Toumba",
        "Pylaia",
        "Panorama",
        "Perama",
        "Kastro",
    ];
    let temps = ["freezing", "cold", "mild", "warm", "hot"];
    let company = ["friends", "family", "alone"];
    (0..n)
        .map(|i| {
            let names = [
                regions[i % regions.len()],
                temps[i % temps.len()],
                company[i % company.len()],
            ];
            ContextState::parse(db.env(), &names).expect("hot state parses")
        })
        .collect()
}

/// Drive the hot-state storm over one of the two read paths.
fn run_storm(
    cfg: &ViewsBenchConfig,
    db: &Arc<ShardedMultiUserDb>,
    views: bool,
) -> HotStateThroughput {
    let states = hot_states(db, cfg.hot_states);
    let stop = AtomicBool::new(false);
    let barrier = Barrier::new(cfg.reader_threads + cfg.writer_threads + 1);
    let queries = AtomicU64::new(0);
    let writes = AtomicU64::new(0);
    // Baseline scores per (user, preference): writers nudge around
    // each preference's own score instead of jumping to a fixed
    // value, so rescores of preferences that overlap others keep
    // the profile's dominance order (a fixed jump would conflict
    // and be skipped — and those overlapping descriptors are
    // exactly the ones that intersect materialized views).
    let base_scores: Vec<Vec<f64>> = (0..cfg.users)
        .map(|i| {
            db.profile(&format!("user{i}"))
                .expect("benchmark user exists")
                .preferences()
                .iter()
                .map(|p| p.score())
                .collect()
        })
        .collect();
    std::thread::scope(|scope| {
        for t in 0..cfg.reader_threads {
            let (stop, barrier, db, states, queries) = (&stop, &barrier, db, &states, &queries);
            scope.spawn(move || {
                barrier.wait();
                let mut n = t as u64;
                while !stop.load(Ordering::Relaxed) {
                    let user = format!("user{}", n as usize % cfg.users);
                    let state = &states[(n as usize / cfg.users) % states.len()];
                    if views {
                        db.query_state_topk(&user, state, cfg.k)
                            .expect("benchmark top-k query");
                    } else {
                        db.query_state(&user, state).expect("benchmark query");
                    }
                    queries.fetch_add(1, Ordering::Relaxed);
                    n += 1;
                }
            });
        }
        const WRITE_SET: usize = 24;
        for t in 0..cfg.writer_threads {
            let (stop, barrier, db, writes, base_scores) =
                (&stop, &barrier, db, &writes, &base_scores);
            scope.spawn(move || {
                barrier.wait();
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Unthrottled rescores over rotating preferences:
                    // this is exactly the regime where the qcache's
                    // invalidate-everything policy hurts — every write
                    // colds the whole cache, while a view absorbs it
                    // as a patch, a targeted rebuild, or (for a
                    // non-intersecting descriptor) nothing at all.
                    let victim = (t * 3 + n as usize) % cfg.users;
                    let index = (n as usize / cfg.users) % WRITE_SET.min(base_scores[victim].len());
                    // The (victim, index) pattern repeats every
                    // `users * WRITE_SET` iterations; alternating
                    // between a dip and the baseline once per full
                    // cycle makes every revisit a real re-score (the
                    // core no-ops same-score updates).
                    let cycle = (cfg.users * WRITE_SET) as u64;
                    let base = base_scores[victim][index];
                    let score = if (n / cycle).is_multiple_of(2) {
                        base * 0.9
                    } else {
                        base
                    };
                    let user = format!("user{victim}");
                    if db.update_preference_score(&user, index, score).is_ok() {
                        writes.fetch_add(1, Ordering::Relaxed);
                    }
                    n += 1;
                }
            });
        }
        barrier.wait();
        std::thread::sleep(cfg.window);
        stop.store(true, Ordering::Relaxed);
    });

    let totals = db.views_totals();
    let secs = cfg.window.as_secs_f64();
    let queries = queries.into_inner();
    HotStateThroughput {
        queries,
        queries_per_sec: queries as f64 / secs,
        writes: writes.into_inner(),
        view_hits: if views { totals.view_hits } else { 0 },
        view_patches: if views { totals.view_patches } else { 0 },
        view_rebuilds: if views { totals.view_rebuilds } else { 0 },
    }
}

/// After the storm quiesces: every hot (user, state, k) must answer
/// row-identically between the view path and fresh resolution.
fn verify_row_identical(cfg: &ViewsBenchConfig, db: &ShardedMultiUserDb) -> bool {
    let states = hot_states(db, cfg.hot_states);
    for i in 0..cfg.users {
        let user = format!("user{i}");
        for state in &states {
            let (topk, _) = db
                .query_state_topk(&user, state, cfg.k)
                .expect("verification top-k query");
            let full = db.query_state(&user, state).expect("verification query");
            if topk.results.entries() != full.results.top_k_with_ties(cfg.k) {
                return false;
            }
        }
    }
    true
}

/// Run the full materialized-view benchmark.
pub fn run(cfg: ViewsBenchConfig) -> ViewsBenchReport {
    // Fresh database per run so one path's caches never warm the other.
    let base_db = study_db(&cfg);
    let baseline = run_storm(&cfg, &base_db, false);
    drop(base_db);

    let view_db = study_db(&cfg);
    let with_views = run_storm(&cfg, &view_db, true);
    let row_identical = verify_row_identical(&cfg, &view_db);

    let speedup = if baseline.queries_per_sec > 0.0 {
        with_views.queries_per_sec / baseline.queries_per_sec
    } else {
        f64::INFINITY
    };
    let checks = vec![
        ShapeCheck::new(
            "materialized views serve hot states ≥3× faster than the qcache path under writers",
            speedup >= 3.0,
            format!(
                "qcache {:.0} q/s vs views {:.0} q/s ({:.1}×), {} + {} writes",
                baseline.queries_per_sec,
                with_views.queries_per_sec,
                speedup,
                baseline.writes,
                with_views.writes
            ),
        ),
        ShapeCheck::new(
            "view answers are row-identical to fresh resolution",
            row_identical,
            format!(
                "{} hot (user, state) pairs checked at k = {}",
                cfg.users * cfg.hot_states,
                cfg.k
            ),
        ),
        ShapeCheck::new(
            "the storm was actually absorbed incrementally, not by rebuild-per-write",
            with_views.view_hits > 0 && with_views.view_patches + with_views.view_rebuilds > 0,
            format!(
                "{} view hits, {} patches, {} targeted rebuilds",
                with_views.view_hits, with_views.view_patches, with_views.view_rebuilds
            ),
        ),
    ];
    ViewsBenchReport {
        config: cfg,
        baseline,
        with_views,
        speedup,
        row_identical,
        checks,
    }
}

impl ViewsBenchReport {
    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "materialized views, hot-state storm: {} users × {} hot states, {} readers, {} writers, k = {}, {:?} window\n",
            self.config.users,
            self.config.hot_states,
            self.config.reader_threads,
            self.config.writer_threads,
            self.config.k,
            self.config.window
        ));
        out.push_str(&format!(
            "  qcache path:  {:>8.0} q/s  ({} writes alongside)\n",
            self.baseline.queries_per_sec, self.baseline.writes
        ));
        out.push_str(&format!(
            "  view path:    {:>8.0} q/s  ({} writes, {} hits, {} patches, {} rebuilds)\n",
            self.with_views.queries_per_sec,
            self.with_views.writes,
            self.with_views.view_hits,
            self.with_views.view_patches,
            self.with_views.view_rebuilds
        ));
        out.push_str(&format!("  speedup: {:.1}×\n", self.speedup));
        out.push_str(&crate::render_checks(&self.checks));
        out
    }

    /// Serialize as a small JSON document (hand-rolled; the workspace
    /// has no serde).
    pub fn to_json(&self) -> String {
        let storm = |s: &HotStateThroughput| {
            format!(
                "{{\"queries\": {}, \"queries_per_sec\": {:.1}, \"writes\": {}, \"view_hits\": {}, \"view_patches\": {}, \"view_rebuilds\": {}}}",
                s.queries, s.queries_per_sec, s.writes, s.view_hits, s.view_patches, s.view_rebuilds
            )
        };
        let checks: Vec<String> = self
            .checks
            .iter()
            .map(|c| {
                format!(
                    "    {{\"name\": {:?}, \"pass\": {}, \"detail\": {:?}}}",
                    c.name, c.pass, c.detail
                )
            })
            .collect();
        format!(
            "{{\n  \"benchmark\": \"views_pr10\",\n  \"config\": {{\"users\": {}, \"reader_threads\": {}, \"writer_threads\": {}, \"hot_states\": {}, \"k\": {}, \"per_region\": {}, \"window_ms\": {}}},\n  \"qcache_path\": {},\n  \"view_path\": {},\n  \"speedup\": {:.3},\n  \"row_identical\": {},\n  \"checks\": [\n{}\n  ]\n}}\n",
            self.config.users,
            self.config.reader_threads,
            self.config.writer_threads,
            self.config.hot_states,
            self.config.k,
            self.config.per_region,
            self.config.window.as_millis(),
            storm(&self.baseline),
            storm(&self.with_views),
            self.speedup,
            self.row_identical,
            checks.join(",\n")
        )
    }
}
