//! Serving-core benchmark (PR 2): global-lock `MultiUserDb` vs the
//! sharded core under a mixed read/write multi-user workload.
//!
//! The scenario is the serving layer's worst case: a few users keep
//! editing their profiles (each edit rebuilds *their* profile tree
//! under a write lock) and a maintenance thread checkpoints the
//! database to disk back-to-back, while many users keep querying.
//! Under one global `RwLock`, every edit excludes every reader and —
//! the expensive part — the pre-PR 2 `save()` held the global read
//! guard across the whole fsync'd file write, so each edit queued
//! behind an in-flight checkpoint gated all new readers out for the
//! duration of the disk I/O. The sharded core write-locks only the
//! editor's stripe per edit and saves from a per-stripe snapshot,
//! holding no lock at all during the I/O.
//!
//! A second measurement isolates the query-cache hot path: concurrent
//! `ContextQueryTree::get` hits through the shared read lock (the PR 2
//! design) against the same hits forced through an exclusive lock (the
//! pre-PR 2 write-lock-on-hit behaviour, emulated by wrapping the tree
//! in an outer `RwLock` and taking its *write* half per hit).
//!
//! Run via `cargo run -p ctxpref-bench --release --bin serving_bench`,
//! which emits `BENCH_PR2.json`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use ctxpref_context::ContextState;
use ctxpref_core::{MultiUserDb, ShardedMultiUserDb};
use ctxpref_hierarchy::LevelId;
use ctxpref_qcache::ContextQueryTree;
use ctxpref_relation::{RankedResults, ScoreCombiner, ScoredTuple};
use ctxpref_workload::reference::{poi_env, poi_relation};
use ctxpref_workload::user_study::{all_demographics, default_profile};
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ShapeCheck;

/// Workload knobs for the serving benchmark.
#[derive(Debug, Clone, Copy)]
pub struct ServingBenchConfig {
    /// Registered users (readers pick targets uniformly).
    pub users: usize,
    /// Threads issuing read queries.
    pub reader_threads: usize,
    /// Threads issuing profile edits (tree rebuild per edit).
    pub writer_threads: usize,
    /// Writers rotate their edits over the first `editor_users` users;
    /// readers query the remaining ones. The split is the scenario the
    /// sharded core exists for — a handful of users editing their
    /// profiles hard must not block everyone else's queries — and it
    /// keeps the reader working set's caches warm in both cores, so
    /// the measured difference is lock blocking, not cache churn.
    pub editor_users: usize,
    /// Editor think time between two edits of the same writer thread
    /// (zero = edit back-to-back).
    pub writer_pause: Duration,
    /// Dedicated maintenance threads checkpointing the database to
    /// disk in a tight loop (0 disables saves). The global baseline
    /// saves the way the pre-PR 2 service did — read guard held across
    /// the whole fsync'd write — while the sharded core saves from a
    /// per-stripe snapshot with no lock held during the I/O.
    pub saver_threads: usize,
    /// Emulated durable-write latency, injected deterministically at
    /// the `storage.save.sync` fault site for *both* cores. This
    /// container's fsync lands in a warm page cache in well under a
    /// millisecond, which no production durable store does; the PR 1
    /// fault-injection framework restores a realistic device latency
    /// so the benchmark measures the serving architecture (who holds
    /// which lock across the I/O) rather than the build machine's
    /// cache. Zero disables the injection.
    pub storage_latency: Duration,
    /// Stripes of the sharded core.
    pub shards: usize,
    /// Measurement window per scenario.
    pub window: Duration,
    /// Workload seed (states, target choice).
    pub seed: u64,
}

impl Default for ServingBenchConfig {
    fn default() -> Self {
        Self {
            users: 32,
            reader_threads: 2,
            writer_threads: 2,
            editor_users: 4,
            writer_pause: Duration::from_micros(500),
            saver_threads: 2,
            storage_latency: Duration::from_millis(20),
            shards: 16,
            window: Duration::from_millis(1500),
            seed: 0x5EED_2007,
        }
    }
}

/// Throughput of one serving core under the mixed workload.
#[derive(Debug, Clone, Copy)]
pub struct CoreThroughput {
    /// Completed read queries in the window.
    pub reads: u64,
    /// Completed profile edits in the window.
    pub writes: u64,
    /// Completed checkpoint saves in the window.
    pub saves: u64,
    /// Reads per second.
    pub read_qps: f64,
    /// Writes per second.
    pub write_qps: f64,
}

/// Concurrent cache-hit throughput: shared-read path vs exclusive-lock
/// emulation of the old write-lock-on-hit behaviour.
#[derive(Debug, Clone, Copy)]
pub struct CacheHitThroughput {
    /// Threads hammering the same tree.
    pub threads: usize,
    /// Hits/sec through the shared read lock (PR 2 path).
    pub shared_hits_per_sec: f64,
    /// Hits/sec with every hit behind an exclusive lock.
    pub exclusive_hits_per_sec: f64,
}

/// Full benchmark report.
#[derive(Debug)]
pub struct ServingBenchReport {
    /// The configuration that produced the numbers.
    pub config: ServingBenchConfig,
    /// Global-lock `RwLock<MultiUserDb>` baseline.
    pub global: CoreThroughput,
    /// Sharded core.
    pub sharded: CoreThroughput,
    /// Sharded/global read-throughput ratio (the headline number).
    pub read_speedup: f64,
    /// Query-cache concurrent-hit measurement.
    pub cache_hits: CacheHitThroughput,
    /// Pass/fail claims.
    pub checks: Vec<ShapeCheck>,
}

/// Build the study database: `users` profiles over the POI reference
/// workload (demographic default profiles, cycled).
fn study_db(cfg: &ServingBenchConfig) -> MultiUserDb {
    let env = poi_env();
    let rel = poi_relation(&env, 9, 5);
    let mut db = MultiUserDb::new(env.clone(), rel, 16);
    let demos = all_demographics();
    for i in 0..cfg.users {
        let profile = default_profile(&env, db.relation(), demos[i % demos.len()]);
        db.add_user_with_profile(&format!("user{i}"), profile)
            .unwrap();
    }
    db
}

/// Pre-draw query targets: (user, context state) pairs over the
/// non-editor users, mostly leaf states with the occasional coarser
/// one.
fn draw_targets(db: &MultiUserDb, cfg: &ServingBenchConfig) -> Vec<(String, ContextState)> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let env = db.env();
    (0..256)
        .map(|_| {
            let user = format!("user{}", rng.random_range(cfg.editor_users..cfg.users));
            let mut state = ContextState::all(env);
            for (p, h) in env.iter() {
                let level = if rng.random_bool(0.85) {
                    0
                } else {
                    rng.random_range(0..h.level_count().saturating_sub(1).max(1))
                };
                let domain = h.domain(LevelId(level as u8));
                if !domain.is_empty() {
                    state = state.with_value(p, domain[rng.random_range(0..domain.len())]);
                }
            }
            (user, state)
        })
        .collect()
}

/// Drive `readers + writers + savers` threads against the
/// `read`/`write`/`save` closures for one window; returns completed
/// op counts.
fn drive(
    cfg: &ServingBenchConfig,
    read: impl Fn(usize, &(String, ContextState)) + Sync,
    write: impl Fn(usize, u64) + Sync,
    save: impl Fn(usize) + Sync,
    targets: &[(String, ContextState)],
) -> (u64, u64, u64) {
    let stop = AtomicBool::new(false);
    let reads = AtomicU64::new(0);
    let writes = AtomicU64::new(0);
    let saves = AtomicU64::new(0);
    let barrier = Barrier::new(cfg.reader_threads + cfg.writer_threads + cfg.saver_threads + 1);
    std::thread::scope(|scope| {
        for t in 0..cfg.reader_threads {
            let (stop, reads, barrier) = (&stop, &reads, &barrier);
            let read = &read;
            scope.spawn(move || {
                barrier.wait();
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    read(t, &targets[i % targets.len()]);
                    reads.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
        for t in 0..cfg.writer_threads {
            let (stop, writes, barrier) = (&stop, &writes, &barrier);
            let write = &write;
            scope.spawn(move || {
                barrier.wait();
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    write(t, n);
                    writes.fetch_add(1, Ordering::Relaxed);
                    n += 1;
                    if !cfg.writer_pause.is_zero() {
                        std::thread::sleep(cfg.writer_pause);
                    }
                }
            });
        }
        for t in 0..cfg.saver_threads {
            let (stop, saves, barrier) = (&stop, &saves, &barrier);
            let save = &save;
            scope.spawn(move || {
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    save(t);
                    saves.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        barrier.wait();
        std::thread::sleep(cfg.window);
        stop.store(true, Ordering::Relaxed);
    });
    (reads.into_inner(), writes.into_inner(), saves.into_inner())
}

fn throughput(reads: u64, writes: u64, saves: u64, window: Duration) -> CoreThroughput {
    let secs = window.as_secs_f64();
    CoreThroughput {
        reads,
        writes,
        saves,
        read_qps: reads as f64 / secs,
        write_qps: writes as f64 / secs,
    }
}

/// Per-writer checkpoint file (two writers must not race on one
/// temp-file path).
fn save_path(core: &str, t: usize) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "ctxpref-serving-{core}-{}-{t}.db",
        std::process::id()
    ))
}

/// Minimal write-preferring `RwLock<T>` for the global-lock baseline.
///
/// The pre-PR 2 service was written against upstream `parking_lot`,
/// whose `RwLock` blocks *new* readers while a writer waits, so writers
/// cannot starve. The vendored offline shim aliases `std::sync`'s lock,
/// which on this platform lets a steady stream of readers overtake
/// waiting writers — under that policy the baseline would "win" the
/// read race simply by starving every profile edit (writes collapse to
/// a few hundred per second), which no serving deployment tolerates.
/// A mutex turnstile in front of the std lock restores the upstream
/// fairness class: a writer holds the turnstile while it waits for and
/// holds the exclusive lock, so incoming readers queue behind it;
/// readers pass through the turnstile empty-handed.
struct WritePreferringRwLock<T> {
    turnstile: std::sync::Mutex<()>,
    inner: RwLock<T>,
}

/// Write guard pairing the exclusive lock with the turnstile. Field
/// order matters: the write lock is released before the turnstile, so
/// queued readers wake into an open lock.
struct FairWriteGuard<'a, T> {
    guard: parking_lot::RwLockWriteGuard<'a, T>,
    _turnstile: std::sync::MutexGuard<'a, ()>,
}

impl<T> std::ops::Deref for FairWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for FairWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> WritePreferringRwLock<T> {
    fn new(value: T) -> Self {
        Self {
            turnstile: std::sync::Mutex::new(()),
            inner: RwLock::new(value),
        }
    }

    /// Shared access: pass through the turnstile (queueing behind any
    /// waiting writer), then take the shared lock.
    fn read(&self) -> parking_lot::RwLockReadGuard<'_, T> {
        drop(self.turnstile.lock().unwrap_or_else(|e| e.into_inner()));
        self.inner.read()
    }

    /// Exclusive access: hold the turnstile for the guard's lifetime so
    /// readers arriving while the writer waits or works queue up.
    fn write(&self) -> FairWriteGuard<'_, T> {
        let t = self.turnstile.lock().unwrap_or_else(|e| e.into_inner());
        FairWriteGuard {
            guard: self.inner.write(),
            _turnstile: t,
        }
    }
}

/// Writers toggle the score of their victim's first preference between
/// two safe values — every edit is a real mutation: conflict-checked,
/// tree rebuilt, cache invalidated. The toggle is keyed on the *round*
/// (`n / users`), not `n` itself: victims rotate with period `users`,
/// so an `n`-parity toggle would hand every revisit of the same victim
/// the score it already has and the edit would no-op on the
/// `old.score() == score` fast path instead of rebuilding the tree.
fn writer_score(round: u64) -> f64 {
    if round.is_multiple_of(2) {
        0.35
    } else {
        0.65
    }
}

/// Measure the global-lock baseline: one `RwLock` over the whole
/// [`MultiUserDb`], the pre-PR 2 serving shape.
fn run_global(cfg: &ServingBenchConfig) -> CoreThroughput {
    let db = study_db(cfg);
    let targets = draw_targets(&db, cfg);
    let db = WritePreferringRwLock::new(db);
    let (reads, writes, saves) = drive(
        cfg,
        |_, (user, state)| {
            db.read().query_state(user, state).unwrap();
        },
        |t, n| {
            let victim = format!("user{}", (t * 7 + n as usize) % cfg.editor_users);
            db.write()
                .update_preference_score(
                    &victim,
                    0,
                    writer_score(t as u64 + n / cfg.editor_users as u64),
                )
                .expect("benchmark edit must be a real, conflict-free mutation");
        },
        |t| {
            // Pre-PR 2 service shape: the read guard stays held across
            // the entire fsync'd file write, so any edit queued behind
            // it gates new readers out for the whole disk I/O.
            let guard = db.read();
            ctxpref_storage::save_multi_user(save_path("global", t), &guard)
                .expect("benchmark checkpoint save");
        },
        &targets,
    );
    for t in 0..cfg.saver_threads {
        let _ = std::fs::remove_file(save_path("global", t));
    }
    throughput(reads, writes, saves, cfg.window)
}

/// Measure the sharded core on the identical workload.
fn run_sharded(cfg: &ServingBenchConfig) -> CoreThroughput {
    let db = study_db(cfg);
    let targets = draw_targets(&db, cfg);
    let db = ShardedMultiUserDb::from_db(db, cfg.shards);
    let (reads, writes, saves) = drive(
        cfg,
        |_, (user, state)| {
            db.query_state(user, state).unwrap();
        },
        |t, n| {
            let victim = format!("user{}", (t * 7 + n as usize) % cfg.editor_users);
            db.update_preference_score(
                &victim,
                0,
                writer_score(t as u64 + n / cfg.editor_users as u64),
            )
            .expect("benchmark edit must be a real, conflict-free mutation");
        },
        |t| {
            // PR 2 service shape: snapshot the stripes (brief
            // per-stripe read locks), then do the disk I/O with no
            // lock held.
            let snapshot = db.snapshot();
            ctxpref_storage::save_multi_user(save_path("sharded", t), &snapshot)
                .expect("benchmark checkpoint save");
        },
        &targets,
    );
    for t in 0..cfg.saver_threads {
        let _ = std::fs::remove_file(save_path("sharded", t));
    }
    throughput(reads, writes, saves, cfg.window)
}

fn tiny_results() -> RankedResults {
    RankedResults::from_scores(
        vec![ScoredTuple {
            tuple_index: 0,
            score: 0.5,
        }],
        ScoreCombiner::Max,
    )
}

/// Concurrent cache-hit throughput: `threads` hammer `get` on one
/// warmed [`ContextQueryTree`]. The shared path uses the tree as-is
/// (hits take only the internal read lock); the exclusive path routes
/// every hit through the *write* half of an outer `RwLock`, emulating
/// the pre-PR 2 write-lock-on-hit behaviour.
fn run_cache_hits(cfg: &ServingBenchConfig) -> CacheHitThroughput {
    let env = poi_env();
    let tree = ContextQueryTree::new(env.clone(), 64);
    let states: Vec<ContextState> = {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xCAC4E);
        (0..16)
            .map(|_| {
                let mut s = ContextState::all(&env);
                for (p, h) in env.iter() {
                    let domain = h.domain(LevelId(0));
                    s = s.with_value(p, domain[rng.random_range(0..domain.len())]);
                }
                s
            })
            .collect()
    };
    for s in &states {
        tree.insert(s, Arc::new(tiny_results()));
    }
    let threads = cfg.reader_threads.max(2);
    let window = cfg.window.min(Duration::from_millis(750));

    let measure = |hit: &(dyn Fn(&ContextState) + Sync)| -> f64 {
        let stop = AtomicBool::new(false);
        let hits = AtomicU64::new(0);
        let barrier = Barrier::new(threads + 1);
        std::thread::scope(|scope| {
            for t in 0..threads {
                let (stop, hits, barrier, states) = (&stop, &hits, &barrier, &states);
                scope.spawn(move || {
                    barrier.wait();
                    let mut i = t;
                    while !stop.load(Ordering::Relaxed) {
                        hit(&states[i % states.len()]);
                        hits.fetch_add(1, Ordering::Relaxed);
                        i += 1;
                    }
                });
            }
            barrier.wait();
            std::thread::sleep(window);
            stop.store(true, Ordering::Relaxed);
        });
        hits.into_inner() as f64 / window.as_secs_f64()
    };

    let shared = measure(&|s: &ContextState| {
        assert!(tree.get(s).is_some());
    });
    let outer = RwLock::new(());
    let exclusive = measure(&|s: &ContextState| {
        let _w = outer.write();
        assert!(tree.get(s).is_some());
    });
    CacheHitThroughput {
        threads,
        shared_hits_per_sec: shared,
        exclusive_hits_per_sec: exclusive,
    }
}

/// Run the full serving benchmark.
pub fn run(cfg: ServingBenchConfig) -> ServingBenchReport {
    // Both cores run under the same deterministic storage-latency
    // injection (see `ServingBenchConfig::storage_latency`); the
    // difference being measured is purely who holds which lock across
    // that latency.
    let plan = ctxpref_faults::FaultPlan::builder(cfg.seed)
        .delay("storage.save.sync", 1.0, cfg.storage_latency)
        .build();
    let (global, sharded) = plan.run(|| (run_global(&cfg), run_sharded(&cfg)));
    let cache_hits = run_cache_hits(&cfg);
    let read_speedup = if global.read_qps > 0.0 {
        sharded.read_qps / global.read_qps
    } else {
        f64::INFINITY
    };
    let cache_ratio = if cache_hits.exclusive_hits_per_sec > 0.0 {
        cache_hits.shared_hits_per_sec / cache_hits.exclusive_hits_per_sec
    } else {
        f64::INFINITY
    };
    let checks = vec![
        ShapeCheck::new(
            "sharded core sustains ≥3× read throughput under concurrent writers",
            read_speedup >= 3.0,
            format!(
                "sharded {:.0} reads/s vs global-lock {:.0} reads/s ({read_speedup:.1}×)",
                sharded.read_qps, global.read_qps
            ),
        ),
        ShapeCheck::new(
            "both cores completed writes and checkpoint saves during the window",
            global.writes > 0 && sharded.writes > 0 && global.saves > 0 && sharded.saves > 0,
            format!(
                "global {} writes / {} saves, sharded {} writes / {} saves",
                global.writes, global.saves, sharded.writes, sharded.saves
            ),
        ),
        ShapeCheck::new(
            "concurrent cache hits beat exclusive-lock (write-lock-on-hit) emulation",
            cache_ratio >= 1.0,
            format!(
                "shared {:.0} hits/s vs exclusive {:.0} hits/s ({cache_ratio:.1}×)",
                cache_hits.shared_hits_per_sec, cache_hits.exclusive_hits_per_sec
            ),
        ),
    ];
    ServingBenchReport {
        config: cfg,
        global,
        sharded,
        read_speedup,
        cache_hits,
        checks,
    }
}

impl ServingBenchReport {
    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "serving core, mixed workload: {} users ({} editors), {} readers, {} writers, {} savers, {:?} injected sync latency, {:?} window\n",
            self.config.users,
            self.config.editor_users,
            self.config.reader_threads,
            self.config.writer_threads,
            self.config.saver_threads,
            self.config.storage_latency,
            self.config.window
        ));
        out.push_str(&format!(
            "  global RwLock<MultiUserDb>: {:>9.0} reads/s  {:>7.0} writes/s  {:>4} saves\n",
            self.global.read_qps, self.global.write_qps, self.global.saves
        ));
        out.push_str(&format!(
            "  sharded ({} stripes):       {:>9.0} reads/s  {:>7.0} writes/s  {:>4} saves\n",
            self.config.shards, self.sharded.read_qps, self.sharded.write_qps, self.sharded.saves
        ));
        out.push_str(&format!(
            "  read-throughput speedup: {:.1}×\n",
            self.read_speedup
        ));
        out.push_str(&format!(
            "qcache hits, {} threads: shared {:.0}/s vs exclusive {:.0}/s\n",
            self.cache_hits.threads,
            self.cache_hits.shared_hits_per_sec,
            self.cache_hits.exclusive_hits_per_sec
        ));
        out.push_str(&crate::render_checks(&self.checks));
        out
    }

    /// Serialize as a small JSON document (hand-rolled; the workspace
    /// has no serde).
    pub fn to_json(&self) -> String {
        let checks: Vec<String> = self
            .checks
            .iter()
            .map(|c| {
                format!(
                    "    {{\"name\": {:?}, \"pass\": {}, \"detail\": {:?}}}",
                    c.name, c.pass, c.detail
                )
            })
            .collect();
        format!(
            "{{\n  \"benchmark\": \"serving_core_pr2\",\n  \"config\": {{\"users\": {}, \"reader_threads\": {}, \"writer_threads\": {}, \"editor_users\": {}, \"writer_pause_us\": {}, \"saver_threads\": {}, \"storage_latency_ms\": {}, \"shards\": {}, \"window_ms\": {}, \"seed\": {}}},\n  \"global_lock\": {{\"reads\": {}, \"writes\": {}, \"saves\": {}, \"read_qps\": {:.1}, \"write_qps\": {:.1}}},\n  \"sharded\": {{\"reads\": {}, \"writes\": {}, \"saves\": {}, \"read_qps\": {:.1}, \"write_qps\": {:.1}}},\n  \"read_speedup\": {:.2},\n  \"qcache_hits\": {{\"threads\": {}, \"shared_hits_per_sec\": {:.1}, \"exclusive_hits_per_sec\": {:.1}}},\n  \"checks\": [\n{}\n  ]\n}}\n",
            self.config.users,
            self.config.reader_threads,
            self.config.writer_threads,
            self.config.editor_users,
            self.config.writer_pause.as_micros(),
            self.config.saver_threads,
            self.config.storage_latency.as_millis(),
            self.config.shards,
            self.config.window.as_millis(),
            self.config.seed,
            self.global.reads,
            self.global.writes,
            self.global.saves,
            self.global.read_qps,
            self.global.write_qps,
            self.sharded.reads,
            self.sharded.writes,
            self.sharded.saves,
            self.sharded.read_qps,
            self.sharded.write_qps,
            self.read_speedup,
            self.cache_hits.threads,
            self.cache_hits.shared_hits_per_sec,
            self.cache_hits.exclusive_hits_per_sec,
            checks.join(",\n")
        )
    }
}
