//! Open-loop overload storm (PR 9): a full TCP cluster driven past
//! capacity while a scheduled fault timeline fires underneath it.
//!
//! Two phases:
//!
//! 1. **Capacity** — a short closed-loop run against the healthy
//!    cluster establishes the single-tier capacity the storm is
//!    measured against.
//! 2. **Storm** — open-loop arrivals at `overload_factor ×` capacity
//!    for the full window: Zipf-distributed users, a ~70/25/5
//!    interactive/bulk/maintenance tier mix, and latency accounted
//!    from each request's **scheduled arrival time** (coordinated
//!    omission counts against the system, not for it). Meanwhile a
//!    driver-clock fault timeline kills the primary, opens a
//!    disk-full window, and injects a network delay burst; a writer
//!    thread keeps inserting preferences so the zero-acked-loss claim
//!    is checked across the failover.
//!
//! The report carries per-tier p50/p99/p999, goodput against the
//! declared SLOs, and the shed counts that show lower tiers absorbing
//! the overload so interactive traffic stays inside its SLO.
//!
//! Run via `cargo run -p ctxpref-bench --release --bin serving_bench --
//! --storm`, which emits `BENCH_PR9.json`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ctxpref_core::MultiUserDb;
use ctxpref_faults::{sites, FaultPlan};
use ctxpref_net::{NetClient, NetClientConfig, NetServer, NetServerConfig, Priority};
use ctxpref_router::{Router, RouterConfig, RouterError};
use ctxpref_service::{CtxPrefService, ReplicatedConfig, ServiceConfig};
use ctxpref_wal::{tiny_env, tiny_relation};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::ShapeCheck;

/// Workload and fault-timeline knobs for the storm.
#[derive(Debug, Clone, Copy)]
pub struct StormBenchConfig {
    /// Registered users, sampled by a Zipf law.
    pub users: usize,
    /// Zipf skew exponent.
    pub zipf_s: f64,
    /// Result size per query.
    pub k: usize,
    /// Closed-loop window establishing the capacity baseline.
    pub capacity_window: Duration,
    /// Closed-loop workers in the capacity phase.
    pub capacity_workers: usize,
    /// Open-loop storm duration.
    pub storm_duration: Duration,
    /// Arrival rate as a multiple of measured capacity (≥ 2 is the
    /// acceptance bar: past saturation, not near it).
    pub overload_factor: f64,
    /// Interactive share of arrivals (the rest splits bulk-heavy).
    pub interactive_share: f64,
    /// Bulk share of arrivals.
    pub bulk_share: f64,
    /// End-to-end budget per interactive request.
    pub interactive_deadline: Duration,
    /// End-to-end budget per bulk request.
    pub bulk_deadline: Duration,
    /// End-to-end budget per maintenance request.
    pub maintenance_deadline: Duration,
    /// Primary kill fires this far into the storm.
    pub kill_at: Duration,
    /// Disk-full window opens this far into the storm …
    pub disk_full_at: Duration,
    /// … and stays open this long.
    pub disk_full_window: Duration,
    /// Network delay burst opens this far into the storm …
    pub net_delay_at: Duration,
    /// … stays open this long …
    pub net_delay_window: Duration,
    /// … delaying this fraction of frame exchanges …
    pub net_delay_p: f64,
    /// … by this much each.
    pub net_delay: Duration,
    /// SLO: interactive p99 (scheduled-arrival accounting) under the
    /// storm.
    pub slo_interactive_p99: Duration,
    /// SLO: total goodput as a fraction of the capacity baseline.
    pub goodput_floor: f64,
    /// Deterministic per-job service-time floor, injected at the
    /// worker-dequeue fault site for the whole run (capacity phase
    /// included). The reference query is microseconds on this
    /// substrate; the floor pins capacity to a known, machine-
    /// independent figure so "2× capacity" is a real overload and not
    /// a race against the load generator.
    pub service_time: Duration,
    /// Sojourn target handed to the service's admission controller.
    pub codel_target: Duration,
    /// Seed for the Zipf/tier/jitter generators.
    pub seed: u64,
}

impl Default for StormBenchConfig {
    fn default() -> Self {
        Self {
            users: 64,
            zipf_s: 1.1,
            k: 3,
            capacity_window: Duration::from_millis(1500),
            capacity_workers: 4,
            storm_duration: Duration::from_secs(8),
            overload_factor: 2.0,
            interactive_share: 0.70,
            bulk_share: 0.25,
            interactive_deadline: Duration::from_millis(250),
            bulk_deadline: Duration::from_millis(1000),
            maintenance_deadline: Duration::from_millis(1000),
            kill_at: Duration::from_secs(2),
            disk_full_at: Duration::from_secs(4),
            disk_full_window: Duration::from_secs(1),
            net_delay_at: Duration::from_secs(6),
            net_delay_window: Duration::from_secs(1),
            net_delay_p: 0.05,
            net_delay: Duration::from_millis(10),
            slo_interactive_p99: Duration::from_millis(750),
            goodput_floor: 0.70,
            service_time: Duration::from_millis(1),
            codel_target: Duration::from_millis(5),
            seed: 9,
        }
    }
}

impl StormBenchConfig {
    /// Shrink every window for a CI smoke run.
    pub fn quick(mut self) -> Self {
        self.capacity_window = Duration::from_millis(300);
        self.storm_duration = Duration::from_millis(2000);
        self.kill_at = Duration::from_millis(500);
        self.disk_full_at = Duration::from_millis(1000);
        self.disk_full_window = Duration::from_millis(250);
        self.net_delay_at = Duration::from_millis(1500);
        self.net_delay_window = Duration::from_millis(250);
        self
    }
}

/// Outcome counters and latency percentiles of one priority tier.
#[derive(Debug, Clone, Copy, Default)]
pub struct TierOutcome {
    /// Arrivals issued at this tier.
    pub issued: u64,
    /// Completed with an answer.
    pub ok: u64,
    /// Shed with a typed busy (admission or sojourn control).
    pub shed: u64,
    /// Budget ran out client-side before another attempt.
    pub budget_exhausted: u64,
    /// Server-side typed deadline failures.
    pub deadline: u64,
    /// Everything else (transport, transient refusals past retry).
    pub other: u64,
    /// Median completion latency from scheduled arrival, microseconds.
    pub p50_us: u64,
    /// p99 completion latency from scheduled arrival, microseconds.
    pub p99_us: u64,
    /// p999 completion latency from scheduled arrival, microseconds.
    pub p999_us: u64,
}

impl TierOutcome {
    /// Fraction of this tier's arrivals shed with a typed busy.
    pub fn shed_fraction(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.shed as f64 / self.issued as f64
        }
    }
}

/// What the acked-write ledger saw across the primary kill.
#[derive(Debug, Clone)]
pub struct WriteLedger {
    /// Writes the router acked.
    pub acked: u64,
    /// Writes refused typed (busy, disk-full, migration fences) —
    /// never counted, never expected to survive.
    pub refused: u64,
    /// Acked writes found on the post-storm primary.
    pub survived: u64,
    /// Every acked write present afterwards.
    pub zero_loss: bool,
}

/// Full storm report.
#[derive(Debug)]
pub struct StormBenchReport {
    /// The configuration that produced the numbers.
    pub config: StormBenchConfig,
    /// Healthy-cluster closed-loop capacity, queries/second.
    pub capacity_qps: f64,
    /// The open-loop arrival rate the storm ran at.
    pub offered_qps: f64,
    /// Per-tier outcomes: `[interactive, bulk, maintenance]`.
    pub tiers: [TierOutcome; 3],
    /// Completed requests per second across every tier during the
    /// storm.
    pub goodput_qps: f64,
    /// The acked-write ledger across the failover.
    pub writes: WriteLedger,
    /// The server's own shed breakdown, rendered from its stats verb.
    pub server_stats: String,
    /// Pass/fail claims.
    pub checks: Vec<ShapeCheck>,
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("ctxpref-bench-storm-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Zipf sampler over `0..n` via an inverse-CDF table.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Per-worker tally, merged by the driver.
#[derive(Default)]
struct WorkerTally {
    counts: [TierOutcome; 3],
    latencies: [Vec<u64>; 3],
}

fn tier_index(t: Priority) -> usize {
    t.wire_tag() as usize
}

/// Run the full storm benchmark.
pub fn run(cfg: StormBenchConfig) -> StormBenchReport {
    let tmp = TempDir::new("cluster");
    let db = MultiUserDb::new(tiny_env(), tiny_relation(), 4);
    let mut rcfg = ReplicatedConfig::new(&tmp.0, 3);
    rcfg.heartbeat_threshold = 2;
    // A tight sojourn target so the admission controller reaches its
    // bulk-shedding pressure level well before the bounded queue's
    // worst-case wait: tier separation has to come from the
    // controller, not from the hard in-flight backstop (which is
    // tier-blind).
    let svc_cfg = ServiceConfig {
        codel_target: cfg.codel_target,
        ..ServiceConfig::default()
    };
    let service = Arc::new(
        CtxPrefService::new_replicated(db, svc_cfg, rcfg).expect("replicated storm cluster"),
    );
    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&service),
        NetServerConfig {
            max_connections: 256,
            // More dispatch threads than the service's in-flight cap:
            // otherwise the net layer's own pool throttles service
            // concurrency and overload queues invisibly in the
            // dispatch channel, where the admission controller can't
            // see (or shed) it. The service must be the authority.
            workers: 128,
            ..NetServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();
    // The load generator surfaces sheds immediately (one busy means
    // shed, honestly counted) but rides transient failover refusals.
    let router_cfg = RouterConfig {
        client: NetClientConfig {
            busy_attempts: 1,
            ..NetClientConfig::default()
        },
        ..RouterConfig::default()
    };
    let mut router = Router::new(vec![vec![addr.clone()]], router_cfg);

    let users: Vec<String> = (0..cfg.users).map(|i| format!("user{i}")).collect();
    for user in &users {
        router.add_user(user).expect("seeding a storm user");
        // "alpha" is a live tuple in `tiny_relation`, so queries rank
        // and return a real row.
        router
            .insert_preference(user, "*", "name", "alpha", 0.8)
            .expect("seeding a storm preference");
    }

    // The service-time floor: every dequeued job pays a deterministic
    // delay at the worker-dequeue site, pinning capacity to
    // workers / service_time regardless of host speed. Installed
    // before the capacity phase and held through the storm so both
    // phases measure the same machine. (Expired jobs skip the site —
    // dropping is free; only executed work pays.)
    let _service_floor = ctxpref_faults::install(
        FaultPlan::builder(cfg.seed)
            .delay(sites::SVC_WORKER_DEQUEUE, 1.0, cfg.service_time)
            .build(),
    );

    // --- phase A: closed-loop capacity baseline ---------------------
    let capacity_done = Arc::new(AtomicU64::new(0));
    let capacity_threads: Vec<_> = (0..cfg.capacity_workers)
        .map(|w| {
            let mut router = router.clone();
            let users = users.clone();
            let done = Arc::clone(&capacity_done);
            let window = cfg.capacity_window;
            let deadline = cfg.interactive_deadline;
            let k = cfg.k;
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(w as u64);
                let started = Instant::now();
                let mut ok = 0u64;
                while started.elapsed() < window {
                    let user = &users[rng.random_range(0..users.len())];
                    if router
                        .query_tiered(user, "name", k, deadline, &["low"], Priority::Interactive)
                        .is_ok()
                    {
                        ok += 1;
                    }
                }
                done.fetch_add(ok, Ordering::Relaxed);
            })
        })
        .collect();
    for t in capacity_threads {
        t.join().expect("capacity worker");
    }
    let capacity_qps =
        capacity_done.load(Ordering::Relaxed) as f64 / cfg.capacity_window.as_secs_f64();

    // --- phase B: open-loop storm with the fault timeline -----------
    let offered_qps = (capacity_qps * cfg.overload_factor).max(100.0);
    // Enough generator threads that the open loop stays open: by
    // Little's law, concurrency ≈ rate × mean holding time. Accepted
    // requests hold a connection for the bounded queue's wait plus a
    // service time (tens of ms under the floor); sheds return in
    // sub-millisecond. ~20 ms of mean headroom per offered request
    // keeps scheduled arrivals on time, so measured latency is the
    // system's, not the generator's.
    let gen_workers = ((offered_qps * 0.03).ceil() as usize).clamp(16, 128);
    let start = Instant::now() + Duration::from_millis(50);

    // The fault timeline runs on the driver's clock: the plan registry
    // triggers by hit index, so wall-clock windows are made by
    // installing a plan at the scheduled moment and dropping it when
    // the window closes.
    let timeline = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            let sleep_until = |at: Duration| {
                let target = start + at;
                let now = Instant::now();
                if target > now {
                    std::thread::sleep(target - now);
                }
            };
            sleep_until(cfg.kill_at);
            service
                .cluster()
                .expect("replicated cluster")
                .crash_primary();
            // Window plans are composite: installing a plan REPLACES
            // the global one, so each window must re-state the
            // service-time floor alongside its own fault or capacity
            // would silently jump for the window's duration. The
            // guard drop restores the floor-only plan.
            sleep_until(cfg.disk_full_at);
            {
                let _disk = ctxpref_faults::install(
                    FaultPlan::builder(cfg.seed)
                        .delay(sites::SVC_WORKER_DEQUEUE, 1.0, cfg.service_time)
                        .fail(sites::DISK_FULL, 1.0)
                        .build(),
                );
                sleep_until(cfg.disk_full_at + cfg.disk_full_window);
            }
            sleep_until(cfg.net_delay_at);
            {
                let _net = ctxpref_faults::install(
                    FaultPlan::builder(cfg.seed)
                        .delay(sites::SVC_WORKER_DEQUEUE, 1.0, cfg.service_time)
                        .delay(sites::NET_CONN_DELAY, cfg.net_delay_p, cfg.net_delay)
                        .build(),
                );
                sleep_until(cfg.net_delay_at + cfg.net_delay_window);
            }
        })
    };

    // The acked-write ledger: a writer inserts distinct values for one
    // user through the whole storm — across the kill, the disk-full
    // window, and the delay burst — recording exactly what was acked.
    let writer = {
        let mut router = router.clone();
        let duration = cfg.storm_duration;
        std::thread::spawn(move || {
            let mut acked: Vec<String> = Vec::new();
            let mut refused = 0u64;
            let mut i = 0u64;
            while Instant::now() < start + duration {
                let value = format!("live-{i}");
                match router.insert_preference("user0", "*", "name", &value, 0.5) {
                    Ok(()) => acked.push(value),
                    // Typed refusals (busy, disk-full, leaderless past
                    // the retry budget) were never acked; an ambiguous
                    // transport death is also not an ack.
                    Err(_) => refused += 1,
                }
                i += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
            (acked, refused)
        })
    };

    let storm_threads: Vec<_> = (0..gen_workers)
        .map(|w| {
            let mut router = router.clone();
            let users = users.clone();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ (w as u64).wrapping_mul(0x9e37));
                let zipf = Zipf::new(users.len(), cfg.zipf_s);
                let mut tally = WorkerTally::default();
                let mut n = 0u64;
                loop {
                    let offset = Duration::from_secs_f64(
                        (n * gen_workers as u64 + w as u64) as f64 / offered_qps,
                    );
                    if offset >= cfg.storm_duration {
                        break;
                    }
                    n += 1;
                    let scheduled = start + offset;
                    let now = Instant::now();
                    if scheduled > now {
                        std::thread::sleep(scheduled - now);
                    }
                    let user = &users[zipf.sample(&mut rng)];
                    let roll: f64 = rng.random_range(0.0..1.0);
                    let (tier, deadline) = if roll < cfg.interactive_share {
                        (Priority::Interactive, cfg.interactive_deadline)
                    } else if roll < cfg.interactive_share + cfg.bulk_share {
                        (Priority::Bulk, cfg.bulk_deadline)
                    } else {
                        (Priority::Maintenance, cfg.maintenance_deadline)
                    };
                    let ti = tier_index(tier);
                    tally.counts[ti].issued += 1;
                    match router.query_tiered(user, "name", cfg.k, deadline, &["low"], tier) {
                        Ok(_) => {
                            tally.counts[ti].ok += 1;
                            // Coordinated-omission honest: latency is
                            // measured from the scheduled arrival, so
                            // a generator running late charges the
                            // lateness to the system under test.
                            tally.latencies[ti].push(scheduled.elapsed().as_micros() as u64);
                        }
                        Err(RouterError::Net(ctxpref_net::NetError::ServerBusy { .. })) => {
                            tally.counts[ti].shed += 1;
                        }
                        Err(RouterError::Net(ctxpref_net::NetError::BudgetExhausted {
                            ..
                        })) => {
                            tally.counts[ti].budget_exhausted += 1;
                        }
                        Err(RouterError::Remote { kind, .. }) if kind == "deadline" => {
                            tally.counts[ti].deadline += 1;
                        }
                        Err(RouterError::Remote { kind, .. }) if kind == "overloaded" => {
                            tally.counts[ti].shed += 1;
                        }
                        Err(_) => {
                            tally.counts[ti].other += 1;
                        }
                    }
                }
                tally
            })
        })
        .collect();

    let mut tiers = [TierOutcome::default(); 3];
    let mut latencies: [Vec<u64>; 3] = Default::default();
    for t in storm_threads {
        let tally = t.join().expect("storm worker");
        for ti in 0..3 {
            let c = &tally.counts[ti];
            tiers[ti].issued += c.issued;
            tiers[ti].ok += c.ok;
            tiers[ti].shed += c.shed;
            tiers[ti].budget_exhausted += c.budget_exhausted;
            tiers[ti].deadline += c.deadline;
            tiers[ti].other += c.other;
            latencies[ti].extend(&tally.latencies[ti]);
        }
    }
    timeline.join().expect("fault timeline");
    let (acked, refused) = writer.join().expect("writer thread");
    for (ti, lat) in latencies.iter_mut().enumerate() {
        lat.sort_unstable();
        tiers[ti].p50_us = percentile(lat, 0.50);
        tiers[ti].p99_us = percentile(lat, 0.99);
        tiers[ti].p999_us = percentile(lat, 0.999);
    }
    let completed: u64 = tiers.iter().map(|t| t.ok).sum();
    let goodput_qps = completed as f64 / cfg.storm_duration.as_secs_f64();

    // Zero acked-write loss: every value the router acked must be on
    // the post-failover PRIMARY (value identity, not just a count, so
    // an applied-but-unacked write cannot mask a lost acked one).
    // The serving view pins reads to node 0's core, which after the
    // kill is the orphaned pre-crash replica — auditing durability
    // there would "lose" every write acked by the promoted node, so
    // the ledger is checked against whichever node holds the lease
    // when the storm ends.
    let survived = match service.cluster().and_then(|c| c.primary_db()) {
        Some(primary) => primary
            .db()
            .profile("user0")
            .map(|p| {
                let held: std::collections::HashSet<String> = p
                    .preferences()
                    .iter()
                    .map(|pref| pref.clause().value.to_string())
                    .collect();
                acked.iter().filter(|v| held.contains(*v)).count() as u64
            })
            .unwrap_or(0),
        None => 0,
    };
    let writes = WriteLedger {
        acked: acked.len() as u64,
        refused,
        survived,
        zero_loss: survived == acked.len() as u64,
    };

    let server_stats = NetClient::connect(addr, NetClientConfig::default())
        .stats()
        .unwrap_or_else(|e| format!("stats unavailable: {e}"));
    server.shutdown();

    let interactive = &tiers[0];
    let lower_shed = tiers[1].shed + tiers[2].shed;
    let checks = vec![
        ShapeCheck::new(
            "interactive p99 within SLO at 2x capacity under faults",
            interactive.p99_us <= cfg.slo_interactive_p99.as_micros() as u64 && interactive.ok > 0,
            format!(
                "p99 {} µs vs SLO {} µs ({} interactive completions)",
                interactive.p99_us,
                cfg.slo_interactive_p99.as_micros(),
                interactive.ok
            ),
        ),
        ShapeCheck::new(
            "goodput holds 70% of single-tier capacity through the storm",
            goodput_qps >= cfg.goodput_floor * capacity_qps,
            format!(
                "goodput {goodput_qps:.0} q/s vs {:.0} q/s floor ({:.0} q/s capacity, \
                 {offered_qps:.0} q/s offered)",
                cfg.goodput_floor * capacity_qps,
                capacity_qps
            ),
        ),
        ShapeCheck::new(
            "zero acked-write loss across the primary kill",
            writes.zero_loss && writes.acked > 0,
            format!(
                "{} acked, {} survived, {} refused typed",
                writes.acked, writes.survived, writes.refused
            ),
        ),
        ShapeCheck::new(
            "lower tiers absorb the shedding",
            lower_shed > 0
                && interactive.shed_fraction() <= tiers[1].shed_fraction()
                && interactive.shed_fraction() <= tiers[2].shed_fraction(),
            format!(
                "shed fraction interactive {:.3}, bulk {:.3}, maintenance {:.3}",
                interactive.shed_fraction(),
                tiers[1].shed_fraction(),
                tiers[2].shed_fraction()
            ),
        ),
    ];

    StormBenchReport {
        config: cfg,
        capacity_qps,
        offered_qps,
        tiers,
        goodput_qps,
        writes,
        server_stats,
        checks,
    }
}

const TIER_NAMES: [&str; 3] = ["interactive", "bulk", "maintenance"];

impl StormBenchReport {
    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "overload storm: {:.0} q/s capacity, {:.0} q/s offered ({}x) for {:?}\n",
            self.capacity_qps,
            self.offered_qps,
            self.config.overload_factor,
            self.config.storm_duration
        ));
        out.push_str(&format!(
            "  faults: primary kill @{:?}, disk-full @{:?}+{:?}, net delay @{:?}+{:?}\n",
            self.config.kill_at,
            self.config.disk_full_at,
            self.config.disk_full_window,
            self.config.net_delay_at,
            self.config.net_delay_window
        ));
        for (i, t) in self.tiers.iter().enumerate() {
            out.push_str(&format!(
                "  {:<12} {:>6} issued  {:>6} ok  {:>5} shed  {:>4} budget  {:>4} deadline  \
                 {:>4} other  p50 {} µs  p99 {} µs  p999 {} µs\n",
                TIER_NAMES[i],
                t.issued,
                t.ok,
                t.shed,
                t.budget_exhausted,
                t.deadline,
                t.other,
                t.p50_us,
                t.p99_us,
                t.p999_us
            ));
        }
        out.push_str(&format!(
            "  goodput: {:.0} q/s; writes: {} acked / {} refused, {} survived (zero loss: {})\n",
            self.goodput_qps,
            self.writes.acked,
            self.writes.refused,
            self.writes.survived,
            self.writes.zero_loss
        ));
        out.push_str(&crate::render_checks(&self.checks));
        out
    }

    /// Serialize as a small JSON document (hand-rolled; the workspace
    /// has no serde).
    pub fn to_json(&self) -> String {
        let tier = |t: &TierOutcome| {
            format!(
                "{{\"issued\": {}, \"ok\": {}, \"shed\": {}, \"budget_exhausted\": {}, \
                 \"deadline\": {}, \"other\": {}, \"p50_us\": {}, \"p99_us\": {}, \
                 \"p999_us\": {}}}",
                t.issued,
                t.ok,
                t.shed,
                t.budget_exhausted,
                t.deadline,
                t.other,
                t.p50_us,
                t.p99_us,
                t.p999_us
            )
        };
        let checks: Vec<String> = self
            .checks
            .iter()
            .map(|c| {
                format!(
                    "    {{\"name\": {:?}, \"pass\": {}, \"detail\": {:?}}}",
                    c.name, c.pass, c.detail
                )
            })
            .collect();
        format!(
            "{{\n  \"benchmark\": \"storm_pr9\",\n  \"config\": {{\"users\": {}, \"zipf_s\": {}, \
             \"storm_ms\": {}, \"overload_factor\": {}, \"interactive_deadline_ms\": {}, \
             \"slo_interactive_p99_ms\": {}, \"goodput_floor\": {}, \"kill_at_ms\": {}, \
             \"disk_full_at_ms\": {}, \"net_delay_at_ms\": {}}},\n  \
             \"capacity_qps\": {:.1},\n  \"offered_qps\": {:.1},\n  \"goodput_qps\": {:.1},\n  \
             \"interactive\": {},\n  \"bulk\": {},\n  \"maintenance\": {},\n  \
             \"writes\": {{\"acked\": {}, \"refused\": {}, \"survived\": {}, \"zero_loss\": {}}},\n  \
             \"checks\": [\n{}\n  ]\n}}\n",
            self.config.users,
            self.config.zipf_s,
            self.config.storm_duration.as_millis(),
            self.config.overload_factor,
            self.config.interactive_deadline.as_millis(),
            self.config.slo_interactive_p99.as_millis(),
            self.config.goodput_floor,
            self.config.kill_at.as_millis(),
            self.config.disk_full_at.as_millis(),
            self.config.net_delay_at.as_millis(),
            self.capacity_qps,
            self.offered_qps,
            self.goodput_qps,
            tier(&self.tiers[0]),
            tier(&self.tiers[1]),
            tier(&self.tiers[2]),
            self.writes.acked,
            self.writes.refused,
            self.writes.survived,
            self.writes.zero_loss,
            checks.join(",\n")
        )
    }
}
