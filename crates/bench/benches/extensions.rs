//! Microbenchmarks for the extension layers: persistence, DAG
//! compression, and the qualitative winnow operator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctxpref_context::{parse_descriptor, ContextState};
use ctxpref_core::ContextualDb;
use ctxpref_profile::{AttributeClause, ParamOrder, ProfileTree};
use ctxpref_qualitative::{ContextualPriority, QualitativeProfile};
use ctxpref_relation::Value;
use ctxpref_storage::{read_database, write_database};
use ctxpref_workload::reference::{poi_env, poi_relation, POI_TYPES};
use ctxpref_workload::synthetic::{SyntheticSpec, ValueDist};
use std::hint::black_box;

fn demo_db(pois: usize) -> ContextualDb {
    let env = poi_env();
    let rel = poi_relation(&env, 42, pois);
    let mut db = ContextualDb::builder()
        .env(env)
        .relation(rel)
        .build()
        .unwrap();
    for (i, weather) in ["bad", "good"].iter().enumerate() {
        for (j, company) in ["friends", "family", "alone"].iter().enumerate() {
            for (k, ty) in POI_TYPES.iter().enumerate() {
                let score = 0.05 + ((i * 31 + j * 7 + k) % 90) as f64 / 100.0;
                db.insert_preference_eq(
                    &format!("temperature = {weather} and accompanying_people = {company}"),
                    "type",
                    Value::str(ty),
                    score,
                )
                .unwrap();
            }
        }
    }
    db
}

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage");
    for &pois in &[5usize, 50] {
        let db = demo_db(pois);
        let mut serialized = Vec::new();
        write_database(&mut serialized, &db).unwrap();
        group.bench_function(BenchmarkId::new("write", db.relation().len()), |b| {
            b.iter(|| {
                let mut buf = Vec::with_capacity(serialized.len());
                write_database(&mut buf, &db).unwrap();
                black_box(buf)
            })
        });
        group.bench_function(BenchmarkId::new("read", db.relation().len()), |b| {
            b.iter(|| black_box(read_database(&serialized[..]).unwrap()))
        });
    }
    group.finish();
}

fn bench_dag(c: &mut Criterion) {
    let mut group = c.benchmark_group("dag");
    group.sample_size(10);
    for &n in &[1000usize, 5000] {
        let spec = SyntheticSpec::paper_standard(n, ValueDist::Uniform, 42);
        let env = spec.build_env();
        let profile = spec.build_profile(&env);
        let tree =
            ProfileTree::from_profile(&profile, ParamOrder::by_ascending_domain(&env)).unwrap();
        group.bench_function(BenchmarkId::new("compress", n), |b| {
            b.iter(|| black_box(tree.compress()))
        });
        let dag = tree.compress();
        let q = &profile.preferences()[0].descriptor().states(&env).unwrap()[0];
        let mut counter = ctxpref_profile::AccessCounter::new();
        group.bench_function(BenchmarkId::new("dag_exact_lookup", n), |b| {
            b.iter(|| black_box(dag.exact_lookup(q, &mut counter)))
        });
        group.bench_function(BenchmarkId::new("tree_exact_lookup", n), |b| {
            b.iter(|| black_box(tree.exact_lookup(q, &mut counter)))
        });
    }
    group.finish();
}

fn bench_qualitative(c: &mut Criterion) {
    let env = poi_env();
    let rel = poi_relation(&env, 42, 10);
    let ty = rel.schema().attr("type").unwrap();
    let mut profile = QualitativeProfile::new(env.clone());
    // A chain of priorities per company value.
    for (company, order) in [
        (
            "friends",
            ["brewery", "club", "cafeteria", "market", "museum"],
        ),
        ("family", ["zoo", "park", "aquarium", "museum", "club"]),
        ("alone", ["museum", "theater", "park", "market", "club"]),
    ] {
        for w in order.windows(2) {
            profile
                .insert(ContextualPriority::new(
                    parse_descriptor(&env, &format!("accompanying_people = {company}")).unwrap(),
                    AttributeClause::eq(ty, w[0].into()),
                    AttributeClause::eq(ty, w[1].into()),
                ))
                .unwrap();
        }
    }
    let state = ContextState::parse(&env, &["Plaka", "warm", "friends"]).unwrap();

    let mut group = c.benchmark_group("qualitative");
    group.bench_function(format!("winnow/{}_tuples", rel.len()), |b| {
        b.iter(|| black_box(profile.winnow(&rel, &state).unwrap()))
    });
    group.bench_function(format!("rank/{}_tuples", rel.len()), |b| {
        b.iter(|| black_box(profile.rank(&rel, &state).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_storage, bench_dag, bench_qualitative);
criterion_main!(benches);
