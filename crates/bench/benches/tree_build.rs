//! Profile-tree construction cost across profile sizes and parameter
//! orderings (the build-time companion of Figures 5–6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctxpref_profile::{ParamOrder, ProfileTree, SerialStore};
use ctxpref_workload::synthetic::{SyntheticSpec, ValueDist};
use std::hint::black_box;

fn bench_tree_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_build");
    group.sample_size(10);
    for &n in &[500usize, 1000, 5000] {
        for (dist_label, dist) in [
            ("uniform", ValueDist::Uniform),
            ("zipf", ValueDist::Zipf(1.5)),
        ] {
            let spec = SyntheticSpec::paper_standard(n, dist, 42);
            let env = spec.build_env();
            let profile = spec.build_profile(&env);
            group.bench_with_input(
                BenchmarkId::new(format!("tree/{dist_label}"), n),
                &profile,
                |b, p| {
                    let order = ParamOrder::by_ascending_domain(&env);
                    b.iter(|| black_box(ProfileTree::from_profile(p, order.clone()).unwrap()))
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("serial/{dist_label}"), n),
                &profile,
                |b, p| b.iter(|| black_box(SerialStore::from_profile(p).unwrap())),
            );
        }
    }
    group.finish();
}

fn bench_orderings(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_build_orderings");
    group.sample_size(10);
    let spec = SyntheticSpec::paper_standard(2000, ValueDist::Uniform, 42);
    let env = spec.build_env();
    let profile = spec.build_profile(&env);
    for order in ParamOrder::all_orders(&env) {
        let label = format!("{}", order.display(&env));
        group.bench_function(BenchmarkId::new("order", label), |b| {
            b.iter(|| black_box(ProfileTree::from_profile(&profile, order.clone()).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tree_build, bench_orderings);
criterion_main!(benches);
