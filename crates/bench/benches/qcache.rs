//! Context query tree: cache-hit path vs. full resolution.

use criterion::{criterion_group, criterion_main, Criterion};
use ctxpref_context::ContextState;
use ctxpref_core::{ContextualDb, QueryOptions};
use ctxpref_relation::Value;
use ctxpref_workload::reference::{poi_env, poi_relation, POI_TYPES};
use std::hint::black_box;

fn build_db(cache: usize) -> ContextualDb {
    let env = poi_env();
    let rel = poi_relation(&env, 42, 5);
    let mut db = ContextualDb::builder()
        .env(env)
        .relation(rel)
        .cache_capacity(cache)
        .build()
        .unwrap();
    for (i, weather) in ["bad", "good"].iter().enumerate() {
        for (j, company) in ["friends", "family", "alone"].iter().enumerate() {
            for (k, ty) in POI_TYPES.iter().enumerate() {
                let score = 0.05 + ((i * 31 + j * 7 + k) % 90) as f64 / 100.0;
                db.insert_preference_eq(
                    &format!("temperature = {weather} and accompanying_people = {company}"),
                    "type",
                    Value::str(ty),
                    score,
                )
                .unwrap();
            }
        }
    }
    db
}

fn bench_qcache(c: &mut Criterion) {
    let db = build_db(64);
    let state = ContextState::parse(db.env(), &["Plaka", "warm", "friends"]).unwrap();
    // Warm the cache.
    let _ = db.query_state_with(&state, QueryOptions::cached()).unwrap();

    let mut group = c.benchmark_group("qcache");
    group.bench_function("hit", |b| {
        b.iter(|| black_box(db.query_state_with(&state, QueryOptions::cached()).unwrap()))
    });
    group.bench_function("uncached", |b| {
        b.iter(|| {
            black_box(
                db.query_state_with(&state, QueryOptions::default())
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_qcache);
criterion_main!(benches);
