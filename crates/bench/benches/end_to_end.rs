//! End-to-end contextual query cost over the two-city POI database:
//! resolution + ranked selection (`Rank_CS`), for implicit single-state
//! queries and exploratory disjunctive queries.

use criterion::{criterion_group, criterion_main, Criterion};
use ctxpref_context::ContextState;
use ctxpref_core::ContextualDb;
use ctxpref_relation::Value;
use ctxpref_workload::reference::{poi_env, poi_relation, POI_TYPES};
use std::hint::black_box;

fn build_db(pois_per_region: usize) -> ContextualDb {
    let env = poi_env();
    let rel = poi_relation(&env, 42, pois_per_region);
    let mut db = ContextualDb::builder()
        .env(env)
        .relation(rel)
        .build()
        .unwrap();
    for (i, weather) in ["bad", "good"].iter().enumerate() {
        for (j, company) in ["friends", "family", "alone"].iter().enumerate() {
            for (k, ty) in POI_TYPES.iter().enumerate() {
                let score = 0.05 + ((i * 31 + j * 7 + k) % 90) as f64 / 100.0;
                db.insert_preference_eq(
                    &format!("temperature = {weather} and accompanying_people = {company}"),
                    "type",
                    Value::str(ty),
                    score,
                )
                .unwrap();
            }
        }
    }
    db
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    for &per_region in &[5usize, 50] {
        let db = build_db(per_region);
        let state = ContextState::parse(db.env(), &["Plaka", "warm", "friends"]).unwrap();
        group.bench_function(format!("implicit_state/{per_region}_per_region"), |b| {
            b.iter(|| black_box(db.query_state(&state).unwrap()))
        });
        group.bench_function(format!("exploratory/{per_region}_per_region"), |b| {
            b.iter(|| {
                black_box(
                    db.query_str(
                        "(location = Athens and temperature = good and \
                         accompanying_people = family) or \
                         (location = Thessaloniki and temperature = good)",
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
