//! Context-resolution cost: exact and covering lookups, profile tree
//! vs. sequential scan (the wall-clock companion of Figure 7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctxpref_context::DistanceKind;
use ctxpref_profile::{AccessCounter, ParamOrder, ProfileTree, SerialStore};
use ctxpref_workload::synthetic::{
    random_query_states, stored_query_states, SyntheticSpec, ValueDist,
};
use std::hint::black_box;

fn bench_resolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("resolution");
    for &n in &[500usize, 5000] {
        let spec = SyntheticSpec::paper_standard(n, ValueDist::Uniform, 42);
        let env = spec.build_env();
        let profile = spec.build_profile(&env);
        let tree =
            ProfileTree::from_profile(&profile, ParamOrder::by_ascending_domain(&env)).unwrap();
        let serial = SerialStore::from_profile(&profile).unwrap();
        let exact_q = stored_query_states(&env, &profile, 50, 7);
        let cover_q = random_query_states(&env, 50, 0.5, 9);

        group.bench_with_input(BenchmarkId::new("tree/exact", n), &exact_q, |b, qs| {
            b.iter(|| {
                let mut counter = AccessCounter::new();
                for q in qs {
                    black_box(tree.exact_lookup(q, &mut counter));
                }
                counter
            })
        });
        group.bench_with_input(BenchmarkId::new("serial/exact", n), &exact_q, |b, qs| {
            b.iter(|| {
                let mut counter = AccessCounter::new();
                for q in qs {
                    black_box(serial.exact_lookup(q, &mut counter));
                }
                counter
            })
        });
        group.bench_with_input(BenchmarkId::new("tree/covering", n), &cover_q, |b, qs| {
            b.iter(|| {
                let mut counter = AccessCounter::new();
                for q in qs {
                    black_box(tree.search_cs(q, DistanceKind::Hierarchy, &mut counter));
                }
                counter
            })
        });
        group.bench_with_input(BenchmarkId::new("serial/covering", n), &cover_q, |b, qs| {
            b.iter(|| {
                let mut counter = AccessCounter::new();
                for q in qs {
                    black_box(serial.search_covering(q, DistanceKind::Hierarchy, &mut counter));
                }
                counter
            })
        });
        // Distance-function ablation: Hierarchy vs Jaccard on the tree.
        group.bench_with_input(
            BenchmarkId::new("tree/covering-jaccard", n),
            &cover_q,
            |b, qs| {
                b.iter(|| {
                    let mut counter = AccessCounter::new();
                    for q in qs {
                        black_box(tree.search_cs(q, DistanceKind::Jaccard, &mut counter));
                    }
                    counter
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_resolution);
criterion_main!(benches);
