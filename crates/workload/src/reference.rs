//! The paper's reference world: hierarchies of Figures 1–2 and a
//! deterministic points-of-interest database over the two largest Greek
//! cities (the paper's usability study uses a real POI database of
//! Athens and Thessaloniki; we generate a faithful synthetic one — see
//! `DESIGN.md` §4).

use ctxpref_context::ContextEnvironment;
use ctxpref_hierarchy::{Hierarchy, HierarchyBuilder};
use ctxpref_relation::{AttrType, Relation, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// POI categories used by the generator and the default profiles.
pub const POI_TYPES: &[&str] = &[
    "museum",
    "monument",
    "archaeological_site",
    "zoo",
    "park",
    "beach",
    "cafeteria",
    "brewery",
    "club",
    "theater",
    "market",
    "aquarium",
];

/// Regions of Athens (Figure 1 extended).
pub const ATHENS_REGIONS: &[&str] = &[
    "Plaka",
    "Kifisia",
    "Monastiraki",
    "Kolonaki",
    "Exarchia",
    "Glyfada",
    "Piraeus",
    "Marousi",
];

/// Regions of Thessaloniki.
pub const THESSALONIKI_REGIONS: &[&str] = &[
    "Ladadika",
    "Kalamaria",
    "Ano_Poli",
    "Toumba",
    "Pylaia",
    "Panorama",
];

/// Regions of Ioannina (kept from Figure 1).
pub const IOANNINA_REGIONS: &[&str] = &["Perama", "Kastro"];

/// The exact reference environment of Figure 2: `location` with
/// Region ≺ City ≺ Country ≺ ALL (Plaka/Kifisia under Athens, Perama
/// under Ioannina), `temperature` with Conditions ≺ Characterization ≺
/// ALL (freezing, cold | mild, warm, hot grouped into bad | good), and
/// flat `accompanying_people` (friends, family, alone).
pub fn reference_env() -> ContextEnvironment {
    let mut loc = HierarchyBuilder::new("location", &["Region", "City", "Country"]);
    loc.add("Country", "Greece", None).unwrap();
    loc.add("City", "Athens", Some("Greece")).unwrap();
    loc.add("City", "Ioannina", Some("Greece")).unwrap();
    loc.add_leaves("Athens", &["Plaka", "Kifisia"]).unwrap();
    loc.add_leaves("Ioannina", &["Perama"]).unwrap();
    ContextEnvironment::new(vec![
        loc.build().unwrap(),
        temperature_hierarchy(),
        people_hierarchy(),
    ])
    .unwrap()
}

/// The two-city environment for the usability study: the same
/// temperature and accompanying-people hierarchies, with a location
/// hierarchy covering every region of Athens, Thessaloniki, and
/// Ioannina.
pub fn poi_env() -> ContextEnvironment {
    let mut loc = HierarchyBuilder::new("location", &["Region", "City", "Country"]);
    loc.add("Country", "Greece", None).unwrap();
    for (city, regions) in [
        ("Athens", ATHENS_REGIONS),
        ("Thessaloniki", THESSALONIKI_REGIONS),
        ("Ioannina", IOANNINA_REGIONS),
    ] {
        loc.add("City", city, Some("Greece")).unwrap();
        loc.add_leaves(city, regions).unwrap();
    }
    ContextEnvironment::new(vec![
        loc.build().unwrap(),
        temperature_hierarchy(),
        people_hierarchy(),
    ])
    .unwrap()
}

/// The temperature hierarchy of Figure 2: Conditions {freezing, cold,
/// mild, warm, hot} ≺ Weather_Characterization {bad, good} ≺ ALL.
pub fn temperature_hierarchy() -> Hierarchy {
    let mut temp = HierarchyBuilder::new("temperature", &["Conditions", "Characterization"]);
    temp.add("Characterization", "bad", None).unwrap();
    temp.add("Characterization", "good", None).unwrap();
    temp.add_leaves("bad", &["freezing", "cold"]).unwrap();
    temp.add_leaves("good", &["mild", "warm", "hot"]).unwrap();
    temp.build().unwrap()
}

/// The accompanying-people hierarchy of Figure 2: Relationship
/// {friends, family, alone} ≺ ALL.
pub fn people_hierarchy() -> Hierarchy {
    Hierarchy::flat("accompanying_people", &["friends", "family", "alone"]).unwrap()
}

/// The schema of the paper's single relation:
/// `Points_of_Interest(pid, name, type, location, open_air,
/// hours_of_operation, admission_cost)`.
pub fn poi_schema() -> Schema {
    Schema::new(&[
        ("pid", AttrType::Int),
        ("name", AttrType::Str),
        ("type", AttrType::Str),
        ("location", AttrType::Str),
        ("open_air", AttrType::Bool),
        ("hours_of_operation", AttrType::Str),
        ("admission_cost", AttrType::Float),
    ])
    .unwrap()
}

/// Whether a POI type is (typically) open-air — open-air POIs are the
/// ones whose attractiveness the paper ties to temperature.
pub fn is_open_air(poi_type: &str) -> bool {
    matches!(
        poi_type,
        "monument" | "archaeological_site" | "zoo" | "park" | "beach" | "market"
    )
}

/// Generate a deterministic POI database: for every region of `env`'s
/// location hierarchy, `per_region_hint` POIs on average with types,
/// opening hours and admission costs drawn from realistic ranges.
///
/// The same `(env, seed, per_region_hint)` always yields the same
/// relation.
pub fn poi_relation(env: &ContextEnvironment, seed: u64, per_region_hint: usize) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let loc = env
        .param("location")
        .expect("environment has a location parameter");
    let lh = env.hierarchy(loc);
    let mut rel = Relation::new("Points_of_Interest", poi_schema());
    let mut pid: i64 = 0;
    for &region in lh.domain(lh.detailed_level()) {
        let region_name = lh.value_name(region).to_string();
        let count = 1 + rng.random_range(0..per_region_hint.max(1) * 2);
        for _ in 0..count {
            let ty = POI_TYPES[rng.random_range(0..POI_TYPES.len())];
            pid += 1;
            let name = format!("{}_{}_{}", ty, region_name, pid);
            let open_air = is_open_air(ty) && rng.random::<f64>() < 0.8;
            let opens = rng.random_range(7..12);
            let closes = rng.random_range(17..24);
            let hours = format!("{opens:02}:00-{closes:02}:00");
            let cost = match ty {
                "park" | "market" | "beach" => 0.0,
                "cafeteria" | "brewery" | "club" => 0.0,
                _ => f64::from(rng.random_range(2..25)),
            };
            rel.insert(vec![
                Value::Int(pid),
                Value::str(&name),
                Value::str(ty),
                Value::str(&region_name),
                Value::Bool(open_air),
                Value::str(&hours),
                Value::Float(cost),
            ])
            .expect("generated tuple matches the POI schema");
        }
    }
    rel
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxpref_context::ContextState;

    #[test]
    fn reference_env_matches_figure_2() {
        let env = reference_env();
        assert_eq!(env.len(), 3);
        let loc = env.hierarchy(env.param("location").unwrap());
        assert_eq!(loc.level_count(), 4);
        let tmp = env.hierarchy(env.param("temperature").unwrap());
        assert_eq!(tmp.level_count(), 3);
        assert_eq!(tmp.domain_size(tmp.detailed_level()), 5);
        let ppl = env.hierarchy(env.param("accompanying_people").unwrap());
        assert_eq!(ppl.level_count(), 2);
        // The running-example state parses.
        ContextState::parse(&env, &["Plaka", "warm", "friends"]).unwrap();
    }

    #[test]
    fn poi_env_covers_both_cities() {
        let env = poi_env();
        let loc = env.hierarchy(env.param("location").unwrap());
        assert_eq!(
            loc.domain_size(loc.detailed_level()),
            ATHENS_REGIONS.len() + THESSALONIKI_REGIONS.len() + IOANNINA_REGIONS.len()
        );
        let thess = loc.lookup("Thessaloniki").unwrap();
        assert_eq!(
            loc.desc(thess, loc.detailed_level()).len(),
            THESSALONIKI_REGIONS.len()
        );
    }

    #[test]
    fn poi_relation_is_deterministic_and_valid() {
        let env = poi_env();
        let a = poi_relation(&env, 7, 4);
        let b = poi_relation(&env, 7, 4);
        assert_eq!(a.len(), b.len());
        assert!(
            a.len() > 50,
            "two cities should yield a substantial database"
        );
        let ty = a.schema().attr("type").unwrap();
        for t in a.tuples() {
            let name = t.value(ty).to_string();
            assert!(POI_TYPES.contains(&name.as_str()));
        }
        // A different seed yields a different database.
        let c = poi_relation(&env, 8, 4);
        assert!(a.len() != c.len() || a.tuples() != c.tuples());
    }

    #[test]
    fn open_air_classification() {
        assert!(is_open_air("beach"));
        assert!(!is_open_air("museum"));
        assert!(!is_open_air("club"));
    }
}
