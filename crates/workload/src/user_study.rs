//! A simulated re-run of the paper's usability study (Section 5.1,
//! Table 1).
//!
//! The original study put 10 first-time users in front of the system:
//! each was assigned one of 12 **default profiles** keyed by (age, sex,
//! taste), modified it (12–38 edits, 15–45 minutes), then manually
//! ranked the results of contextual queries; Table 1 reports the
//! percentage of system-returned top-20 results the user agreed with,
//! for exact-match / one-cover / multi-cover resolution (the last under
//! both the Hierarchy and the Jaccard distance).
//!
//! Humans are not available here, so each user is simulated (see
//! `DESIGN.md` §4):
//!
//! * a user has a hidden **true taste**: the default profile of their
//!   demographic perturbed by a personal per-type delta;
//! * profile editing moves the default toward the truth, one edit at a
//!   time — users who edit more end up with profiles closer to their
//!   truth (reproducing the paper's observation that meticulous users
//!   got better results);
//! * "manual ranking" scores each tuple with the user's true taste plus
//!   bounded noise (reproducing the paper's observation that users do
//!   not perfectly conform even to their own preferences);
//! * agreement is computed exactly as in the paper: the fraction of the
//!   system's top-20 (ties included) present in the user's top-20.

use std::collections::HashMap;

use ctxpref_context::{
    ContextDescriptor, ContextEnvironment, ContextState, CtxValue, DistanceKind,
    ParameterDescriptor,
};
use ctxpref_profile::{AttributeClause, ContextualPreference, ParamOrder, Profile, ProfileTree};
use ctxpref_relation::{RankedResults, Relation, ScoreCombiner, ScoredTuple};
use ctxpref_resolve::{rank_cs, ContextResolver, TieBreak};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::reference::{is_open_air, poi_env, poi_relation, POI_TYPES};

/// Age bands of the default-profile grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AgeBand {
    /// Younger than 30.
    Under30,
    /// Between 30 and 50.
    Between30And50,
    /// Older than 50.
    Over50,
}

/// Sex of the default-profile grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sex {
    /// Male.
    Male,
    /// Female.
    Female,
}

/// Taste of the default-profile grid ("broadly categorized as
/// mainstream or out-of-the-beaten-track").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Taste {
    /// Broadly popular destinations.
    Mainstream,
    /// Out-of-the-beaten-track destinations.
    OffBeatenTrack,
}

/// One cell of the 3 × 2 × 2 default-profile grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Demographics {
    /// Age band.
    pub age: AgeBand,
    /// Sex.
    pub sex: Sex,
    /// Taste category.
    pub taste: Taste,
}

/// All 12 demographic cells, in a fixed order.
pub fn all_demographics() -> Vec<Demographics> {
    let mut out = Vec::with_capacity(12);
    for age in [AgeBand::Under30, AgeBand::Between30And50, AgeBand::Over50] {
        for sex in [Sex::Male, Sex::Female] {
            for taste in [Taste::Mainstream, Taste::OffBeatenTrack] {
                out.push(Demographics { age, sex, taste });
            }
        }
    }
    out
}

/// Internal preference key: which (weather, company, city, poi-type)
/// combination a preference speaks about. Using a key-value map keeps
/// simulated profiles conflict-free by construction (one score per
/// combination).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct PrefKey {
    /// Weather characterization value (`bad` / `good`), or `None` = all.
    weather: Option<CtxValue>,
    /// Accompanying-people value, or `None` = all.
    company: Option<CtxValue>,
    /// City value, or `None` = all.
    city: Option<CtxValue>,
    /// Index into [`POI_TYPES`].
    ty: usize,
}

/// Base interest of `taste` in a POI type, before context modulation.
fn base_interest(taste: Taste, ty: &str) -> f64 {
    let mainstream = match ty {
        "museum" => 0.75,
        "monument" => 0.80,
        "archaeological_site" => 0.70,
        "zoo" => 0.70,
        "park" => 0.65,
        "beach" => 0.70,
        "cafeteria" => 0.60,
        "brewery" => 0.45,
        "club" => 0.35,
        "theater" => 0.65,
        "market" => 0.50,
        "aquarium" => 0.65,
        _ => 0.50,
    };
    match taste {
        Taste::Mainstream => mainstream,
        // Off-the-beaten-track users invert the popularity gradient.
        Taste::OffBeatenTrack => match ty {
            "brewery" => 0.80,
            "club" => 0.70,
            "market" => 0.75,
            "cafeteria" => 0.65,
            "monument" => 0.45,
            "museum" => 0.50,
            "zoo" => 0.40,
            _ => mainstream * 0.9,
        },
    }
}

/// Demographic adjustment of the base interest.
fn demographic_delta(demo: Demographics, ty: &str) -> f64 {
    let age = match (demo.age, ty) {
        (AgeBand::Under30, "club" | "brewery" | "beach") => 0.15,
        (AgeBand::Under30, "museum" | "theater") => -0.10,
        (AgeBand::Over50, "museum" | "theater" | "archaeological_site") => 0.15,
        (AgeBand::Over50, "club") => -0.30,
        (AgeBand::Over50, "brewery") => -0.10,
        _ => 0.0,
    };
    let sex = match (demo.sex, ty) {
        (Sex::Female, "theater" | "market") => 0.05,
        (Sex::Male, "brewery" | "monument") => 0.05,
        _ => 0.0,
    };
    age + sex
}

/// Context modulation: good weather favours open-air POIs, company
/// shifts venue types (the paper's museum-vs-brewery example).
fn context_delta(ty: &str, weather: Option<&str>, company: Option<&str>) -> f64 {
    let mut d = 0.0;
    match weather {
        Some("good") if is_open_air(ty) => d += 0.15,
        Some("bad") => {
            if is_open_air(ty) {
                d -= 0.25;
            } else {
                d += 0.10;
            }
        }
        _ => {}
    }
    match company {
        Some("friends") => {
            if matches!(ty, "brewery" | "club" | "cafeteria") {
                d += 0.10;
            }
        }
        Some("family") => {
            if matches!(ty, "zoo" | "park" | "aquarium") {
                d += 0.15;
            }
            if ty == "club" {
                d -= 0.30;
            }
        }
        Some("alone") => {
            if matches!(ty, "museum" | "theater") {
                d += 0.10;
            }
        }
        _ => {}
    }
    d
}

fn clamp_score(s: f64) -> f64 {
    (s.clamp(0.05, 0.95) * 100.0).round() / 100.0
}

/// The default-profile score for one preference key.
fn default_score(demo: Demographics, key: PrefKey, env: &ContextEnvironment) -> f64 {
    let ty = POI_TYPES[key.ty];
    let wh = env.hierarchy(env.param("temperature").unwrap());
    let ph = env.hierarchy(env.param("accompanying_people").unwrap());
    let weather = key.weather.map(|v| wh.value_name(v));
    let company = key.company.map(|v| ph.value_name(v));
    clamp_score(
        base_interest(demo.taste, ty)
            + demographic_delta(demo, ty)
            + context_delta(ty, weather, company),
    )
}

/// The 12 default profiles are key → score maps over the grid of
/// (weather characterization × company × type), plus a handful of
/// city-scoped preferences.
fn default_pref_map(env: &ContextEnvironment, demo: Demographics) -> HashMap<PrefKey, f64> {
    let wh = env.hierarchy(env.param("temperature").unwrap());
    let ph = env.hierarchy(env.param("accompanying_people").unwrap());
    let lh = env.hierarchy(env.param("location").unwrap());
    let char_level = wh.level_by_name("Characterization").unwrap();
    let mut map = HashMap::new();
    for &weather in wh.domain(char_level) {
        for &company in ph.domain(ph.detailed_level()) {
            for ty in 0..POI_TYPES.len() {
                let key = PrefKey {
                    weather: Some(weather),
                    company: Some(company),
                    city: None,
                    ty,
                };
                let score = default_score(demo, key, env);
                // Users only record non-neutral interests; keeping the
                // grid sparse is also what makes the three Table 1
                // resolution cases (exact / one cover / more covers)
                // all non-empty.
                if (score - 0.5).abs() >= 0.06 {
                    map.insert(key, score);
                }
            }
        }
    }
    // City-scoped flavour for the two study cities only — regions of
    // other cities are then covered by exactly one stored state.
    let city_level = lh.level_by_name("City").unwrap();
    for &city in lh.domain(city_level) {
        let name = lh.value_name(city);
        if name != "Athens" && name != "Thessaloniki" {
            continue;
        }
        for ty_name in ["museum", "brewery", "monument"] {
            let ty = POI_TYPES.iter().position(|t| *t == ty_name).unwrap();
            let key = PrefKey {
                weather: None,
                company: None,
                city: Some(city),
                ty,
            };
            map.insert(key, default_score(demo, key, env));
        }
    }
    map
}

/// Materialize a key → score map as a [`Profile`].
fn to_profile(env: &ContextEnvironment, map: &HashMap<PrefKey, f64>, rel: &Relation) -> Profile {
    let ty_attr = rel.schema().attr("type").unwrap();
    let loc_p = env.param("location").unwrap();
    let wth_p = env.param("temperature").unwrap();
    let ppl_p = env.param("accompanying_people").unwrap();
    let mut profile = Profile::new(env.clone());
    // Sort for determinism: HashMap iteration order varies per process.
    let mut entries: Vec<(&PrefKey, &f64)> = map.iter().collect();
    entries.sort_by_key(|(k, _)| **k);
    for (key, &score) in entries {
        let mut cod = ContextDescriptor::empty();
        if let Some(w) = key.weather {
            cod = cod.with(wth_p, ParameterDescriptor::Eq(w));
        }
        if let Some(c) = key.company {
            cod = cod.with(ppl_p, ParameterDescriptor::Eq(c));
        }
        if let Some(city) = key.city {
            cod = cod.with(loc_p, ParameterDescriptor::Eq(city));
        }
        let clause = AttributeClause::eq(ty_attr, POI_TYPES[key.ty].into());
        profile.insert_unchecked(ContextualPreference::new(cod, clause, score).unwrap());
    }
    profile
}

/// The default profile for one demographic cell, as the paper's users
/// first see it.
pub fn default_profile(env: &ContextEnvironment, rel: &Relation, demo: Demographics) -> Profile {
    to_profile(env, &default_pref_map(env, demo), rel)
}

/// One simulated user.
#[derive(Debug, Clone)]
pub struct SimulatedUser {
    /// 1-based user number (Table 1 column).
    pub id: usize,
    /// The demographic cell whose default profile the user started from.
    pub demo: Demographics,
    /// Number of profile edits (insertions + deletions + updates).
    pub updates: usize,
    /// Modelled wall-clock minutes spent on profile specification.
    pub minutes: u32,
    /// The user's hidden true taste: per-type deltas on the default.
    taste_delta: Vec<f64>,
    /// The edited profile the system will use.
    prefs: HashMap<PrefKey, f64>,
    /// Noise amplitude of the user's manual ranking.
    ranking_noise: f64,
    seed: u64,
}

impl SimulatedUser {
    /// Create user `id` and run their profile-editing session.
    pub fn new(env: &ContextEnvironment, id: usize, demo: Demographics, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9e37_79b9));
        let updates = rng.random_range(12..=38);
        // Update time tracks effort: ≈ 1.2 min per edit ± slack, the
        // published rows range 15–45 minutes for 12–38 edits.
        let minutes = ((updates as f64) * 1.2 + rng.random_range(0.0..6.0)).round() as u32;
        let taste_delta: Vec<f64> = (0..POI_TYPES.len())
            .map(|_| rng.random_range(-0.10..0.10))
            .collect();

        let mut prefs = default_pref_map(env, demo);
        let keys: Vec<PrefKey> = {
            let mut ks: Vec<PrefKey> = prefs.keys().copied().collect();
            ks.sort_by_key(|k| {
                (
                    k.ty,
                    k.weather.map(|v| v.0),
                    k.company.map(|v| v.0),
                    k.city.map(|v| v.0),
                )
            });
            ks
        };
        let me = Self {
            id,
            demo,
            updates,
            minutes,
            taste_delta,
            prefs: HashMap::new(),
            ranking_noise: 0.02 + rng.random_range(0.0..0.04),
            seed,
        };
        // Editing session: each edit snaps one preference to the user's
        // truth (update), or removes/re-adds one (delete + insert count
        // as separate edits, as in the paper's tally).
        let mut edited = prefs.clone();
        for e in 0..updates {
            let k = keys[(e * 7 + id * 3) % keys.len()];
            match e % 5 {
                // Mostly updates…
                0..=2 => {
                    edited.insert(k, clamp_score(me.true_score_for_key(env, k)));
                }
                // …an occasional delete…
                3 => {
                    edited.remove(&k);
                }
                // …and an occasional (re-)insert at the true score.
                _ => {
                    edited.insert(k, clamp_score(me.true_score_for_key(env, k)));
                }
            }
        }
        prefs = edited;
        Self { prefs, ..me }
    }

    /// The user's true interest in one preference key.
    fn true_score_for_key(&self, env: &ContextEnvironment, key: PrefKey) -> f64 {
        default_score(self.demo, key, env) + self.taste_delta[key.ty]
    }

    /// The user's true interest in a POI type under a *detailed* context
    /// state.
    pub fn true_score(&self, env: &ContextEnvironment, state: &ContextState, ty: usize) -> f64 {
        let wh = env.hierarchy(env.param("temperature").unwrap());
        let ph = env.hierarchy(env.param("accompanying_people").unwrap());
        let weather_char = wh.anc(
            state.value(env.param("temperature").unwrap()),
            wh.level_by_name("Characterization").unwrap(),
        );
        let company = state.value(env.param("accompanying_people").unwrap());
        let weather = weather_char.map(|v| wh.value_name(v));
        let company_name = Some(ph.value_name(company));
        clamp_score(
            base_interest(self.demo.taste, POI_TYPES[ty])
                + demographic_delta(self.demo, POI_TYPES[ty])
                + context_delta(POI_TYPES[ty], weather, company_name)
                + self.taste_delta[ty],
        )
    }

    /// The system-side profile after the user's edits.
    pub fn profile(&self, env: &ContextEnvironment, rel: &Relation) -> Profile {
        to_profile(env, &self.prefs, rel)
    }

    /// The user's *internal* score for a POI type under a context
    /// state: their stated preference if they recorded one for the
    /// state's (weather characterization, company) pair, otherwise
    /// their hidden true taste.
    fn internal_score(&self, env: &ContextEnvironment, state: &ContextState, ty: usize) -> f64 {
        let wh = env.hierarchy(env.param("temperature").unwrap());
        let weather = wh.anc(
            state.value(env.param("temperature").unwrap()),
            wh.level_by_name("Characterization").unwrap(),
        );
        let company = Some(state.value(env.param("accompanying_people").unwrap()));
        if let Some(weather) = weather {
            let key = PrefKey {
                weather: Some(weather),
                company,
                city: None,
                ty,
            };
            if let Some(&score) = self.prefs.get(&key) {
                return score;
            }
        }
        self.true_score(env, state, ty)
    }

    /// The user's manual ranking of a contextual query's result set —
    /// the paper's protocol: "users were asked to rank the results of
    /// each contextual query manually". Scores are the user's internal
    /// scores plus bounded personal noise, quantized to a coarse 0.05
    /// grid (humans rate coarsely; the residual noise models the
    /// paper's observation that users "sometimes do not conform even to
    /// their own preferences").
    pub fn manual_ranking(
        &self,
        env: &ContextEnvironment,
        rel: &Relation,
        state: &ContextState,
        result_tuples: &[usize],
    ) -> RankedResults {
        let ty_attr = rel.schema().attr("type").unwrap();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xabcd ^ ((self.id as u64) << 32));
        let raw: Vec<ScoredTuple> = result_tuples
            .iter()
            .map(|&i| {
                let ty_name = rel.tuple(i).value(ty_attr).to_string();
                let ty = POI_TYPES.iter().position(|x| *x == ty_name).unwrap_or(0);
                let noise = rng.random_range(-self.ranking_noise..self.ranking_noise);
                let score = self.internal_score(env, state, ty) + noise;
                ScoredTuple {
                    tuple_index: i,
                    score: (score * 20.0).round() / 20.0,
                }
            })
            .collect();
        RankedResults::from_scores(raw, ScoreCombiner::Max)
    }
}

/// One row of the simulated Table 1.
#[derive(Debug, Clone)]
pub struct UserRow {
    /// 1-based user number.
    pub user: usize,
    /// Profile edits performed (insertions + deletions + updates).
    pub updates: usize,
    /// Modelled minutes spent editing.
    pub minutes: u32,
    /// Agreement (%) when the query state is stored exactly.
    pub exact_pct: f64,
    /// Agreement (%) when exactly one stored state covers the query.
    pub one_cover_pct: f64,
    /// Agreement (%) with > 1 covering states, Hierarchy distance.
    pub multi_hierarchy_pct: f64,
    /// Agreement (%) with > 1 covering states, Jaccard distance.
    pub multi_jaccard_pct: f64,
}

/// The simulated study: ten rows plus the fixed query counts used.
#[derive(Debug, Clone)]
pub struct UserStudyReport {
    /// One row per simulated user.
    pub rows: Vec<UserRow>,
}

impl UserStudyReport {
    /// Mean exact-match agreement (%).
    pub fn mean_exact(&self) -> f64 {
        mean(self.rows.iter().map(|r| r.exact_pct))
    }
    /// Mean one-cover agreement (%).
    pub fn mean_one_cover(&self) -> f64 {
        mean(self.rows.iter().map(|r| r.one_cover_pct))
    }
    /// Mean multi-cover agreement under the Hierarchy distance (%).
    pub fn mean_multi_hierarchy(&self) -> f64 {
        mean(self.rows.iter().map(|r| r.multi_hierarchy_pct))
    }
    /// Mean multi-cover agreement under the Jaccard distance (%).
    pub fn mean_multi_jaccard(&self) -> f64 {
        mean(self.rows.iter().map(|r| r.multi_jaccard_pct))
    }
}

fn mean(it: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = it.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Agreement between the system's and the user's top-20 (ties
/// included): the percentage of system results the user also ranked in
/// their top-20.
pub fn agreement_pct(system: &RankedResults, user: &RankedResults, k: usize) -> f64 {
    let sys = system.top_k_with_ties(k);
    if sys.is_empty() {
        return 100.0;
    }
    let usr: std::collections::HashSet<usize> = user
        .top_k_with_ties(k)
        .iter()
        .map(|e| e.tuple_index)
        .collect();
    let hit = sys.iter().filter(|e| usr.contains(&e.tuple_index)).count();
    hit as f64 / sys.len() as f64 * 100.0
}

/// Classify candidate query states for one user's tree into the three
/// Table 1 cases: exact / one cover / more covers.
fn classify_queries(
    env: &ContextEnvironment,
    tree: &ProfileTree,
    per_class: usize,
    seed: u64,
) -> (Vec<ContextState>, Vec<ContextState>, Vec<ContextState>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let resolver = ContextResolver::new(tree, DistanceKind::Hierarchy, TieBreak::All);
    let mut exact = Vec::new();
    let mut one = Vec::new();
    let mut multi = Vec::new();

    // Exact queries: stored states themselves. Restrict to the
    // (weather, company) pair states — the natural "my current context"
    // queries; city-scoped states are exploratory and would conflate
    // the exact-match measurement with location effects.
    let loc = env.param("location").unwrap();
    let all_loc = env.hierarchy(loc).all_value();
    let stored: Vec<ContextState> = tree
        .paths()
        .into_iter()
        .map(|(s, _)| s)
        .filter(|s| s.value(loc) == all_loc)
        .collect();
    while exact.len() < per_class && !stored.is_empty() {
        exact.push(stored[rng.random_range(0..stored.len())].clone());
    }

    // Cover queries: random detailed states classified by match count.
    let mut counter = 0;
    while (one.len() < per_class || multi.len() < per_class) && counter < 20_000 {
        counter += 1;
        let values: Vec<CtxValue> = env
            .iter()
            .map(|(_, h)| {
                let dom = h.domain(h.detailed_level());
                dom[rng.random_range(0..dom.len())]
            })
            .collect();
        let s = ContextState::from_values_unchecked(values);
        let mut c = ctxpref_profile::AccessCounter::new();
        if tree.exact_lookup(&s, &mut c).is_some() {
            continue;
        }
        let (matches, _) = resolver.matches(&s);
        match matches.len() {
            1 if one.len() < per_class => one.push(s),
            n if n > 1 && multi.len() < per_class => multi.push(s),
            _ => {}
        }
    }
    (exact, one, multi)
}

/// Run the simulated study: `num_users` users over the two-city POI
/// database, `queries_per_class` queries per Table 1 case.
pub fn run_user_study(seed: u64, num_users: usize, queries_per_class: usize) -> UserStudyReport {
    let env = poi_env();
    let rel = poi_relation(&env, seed, 6);
    let demos = all_demographics();
    let mut rows = Vec::with_capacity(num_users);
    for id in 0..num_users {
        let user = SimulatedUser::new(&env, id, demos[id % demos.len()], seed);
        let profile = user.profile(&env, &rel);
        let tree = ProfileTree::from_profile(&profile, ParamOrder::by_ascending_domain(&env))
            .expect("simulated profiles are conflict-free");
        let (exact_q, one_q, multi_q) =
            classify_queries(&env, &tree, queries_per_class, seed ^ (id as u64 + 1));

        let eval = |states: &[ContextState], kind: DistanceKind| -> f64 {
            if states.is_empty() {
                return 0.0;
            }
            mean(states.iter().map(|s| {
                let ecod: ctxpref_context::ExtendedContextDescriptor =
                    descriptor_of_state(&env, s).into();
                let q = rank_cs(&tree, &rel, &ecod, kind, TieBreak::All, ScoreCombiner::Max)
                    .expect("resolution cannot fail on valid states");
                let pool: Vec<usize> = q.results.tuple_indices().collect();
                let manual = user.manual_ranking(&env, &rel, s, &pool);
                agreement_pct(&q.results, &manual, 20)
            }))
        };

        rows.push(UserRow {
            user: id + 1,
            updates: user.updates,
            minutes: user.minutes,
            exact_pct: eval(&exact_q, DistanceKind::Hierarchy),
            one_cover_pct: eval(&one_q, DistanceKind::Hierarchy),
            multi_hierarchy_pct: eval(&multi_q, DistanceKind::Hierarchy),
            multi_jaccard_pct: eval(&multi_q, DistanceKind::Jaccard),
        });
    }
    UserStudyReport { rows }
}

/// The context descriptor pinning every parameter to the state's value
/// (how a query's implicit current context is written as a descriptor).
pub fn descriptor_of_state(env: &ContextEnvironment, s: &ContextState) -> ContextDescriptor {
    let mut cod = ContextDescriptor::empty();
    for (p, h) in env.iter() {
        let v = s.value(p);
        if v != h.all_value() {
            cod = cod.with(p, ParameterDescriptor::Eq(v));
        }
    }
    cod
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_default_profiles() {
        assert_eq!(all_demographics().len(), 12);
        let env = poi_env();
        let rel = poi_relation(&env, 1, 4);
        for demo in all_demographics() {
            let p = default_profile(&env, &rel, demo);
            assert!(
                p.len() >= 50,
                "default profiles should be substantial, got {}",
                p.len()
            );
            // Conflict-free by construction.
            ProfileTree::from_profile(&p, ParamOrder::by_ascending_domain(&env)).unwrap();
        }
    }

    #[test]
    fn demographics_shift_scores() {
        let env = poi_env();
        let wh = env.hierarchy(env.param("temperature").unwrap());
        let good = wh.lookup("good").unwrap();
        let ph = env.hierarchy(env.param("accompanying_people").unwrap());
        let friends = ph.lookup("friends").unwrap();
        let club = POI_TYPES.iter().position(|t| *t == "club").unwrap();
        let key = PrefKey {
            weather: Some(good),
            company: Some(friends),
            city: None,
            ty: club,
        };
        let young = Demographics {
            age: AgeBand::Under30,
            sex: Sex::Male,
            taste: Taste::Mainstream,
        };
        let old = Demographics {
            age: AgeBand::Over50,
            ..young
        };
        assert!(default_score(young, key, &env) > default_score(old, key, &env));
    }

    #[test]
    fn context_shifts_scores_museum_vs_brewery() {
        // The paper: "a museum may be a better place to visit than a
        // brewery in the context of family".
        let env = poi_env();
        let ph = env.hierarchy(env.param("accompanying_people").unwrap());
        let family = ph.lookup("family").unwrap();
        let friends = ph.lookup("friends").unwrap();
        let demo = Demographics {
            age: AgeBand::Between30And50,
            sex: Sex::Female,
            taste: Taste::Mainstream,
        };
        let museum = POI_TYPES.iter().position(|t| *t == "museum").unwrap();
        let brewery = POI_TYPES.iter().position(|t| *t == "brewery").unwrap();
        let k = |company, ty| PrefKey {
            weather: None,
            company: Some(company),
            city: None,
            ty,
        };
        assert!(
            default_score(demo, k(family, museum), &env)
                > default_score(demo, k(family, brewery), &env)
        );
        assert!(
            default_score(demo, k(friends, brewery), &env)
                > default_score(demo, k(family, brewery), &env)
        );
    }

    #[test]
    fn agreement_bounds() {
        let a = RankedResults::from_scores(
            (0..5).map(|i| ScoredTuple {
                tuple_index: i,
                score: 1.0 - i as f64 / 10.0,
            }),
            ScoreCombiner::Max,
        );
        assert_eq!(agreement_pct(&a, &a, 20), 100.0);
        let empty = RankedResults::default();
        assert_eq!(agreement_pct(&empty, &a, 20), 100.0);
        assert_eq!(agreement_pct(&a, &empty, 20), 0.0);
    }

    #[test]
    fn small_study_runs_and_has_sane_shape() {
        let report = run_user_study(42, 4, 3);
        assert_eq!(report.rows.len(), 4);
        for r in &report.rows {
            assert!((12..=38).contains(&r.updates));
            assert!((15..=52).contains(&r.minutes));
            assert!((0.0..=100.0).contains(&r.exact_pct));
            assert!((0.0..=100.0).contains(&r.one_cover_pct));
            assert!((0.0..=100.0).contains(&r.multi_hierarchy_pct));
            assert!((0.0..=100.0).contains(&r.multi_jaccard_pct));
        }
        // Table 1 shape: agreement is "generally high"; the Jaccard
        // distance beats the Hierarchy distance on multi-cover queries
        // (fewer ties → more specific preferences applied).
        assert!(report.mean_exact() >= 75.0, "exact {}", report.mean_exact());
        assert!(
            report.mean_one_cover() >= 75.0,
            "one {}",
            report.mean_one_cover()
        );
        assert!(
            report.mean_multi_jaccard() + 1e-9 >= report.mean_multi_hierarchy(),
            "jaccard {} vs hierarchy {}",
            report.mean_multi_jaccard(),
            report.mean_multi_hierarchy()
        );
    }

    #[test]
    fn study_is_deterministic() {
        let a = run_user_study(7, 2, 2);
        let b = run_user_study(7, 2, 2);
        for (x, y) in a.rows.iter().zip(b.rows.iter()) {
            assert_eq!(x.updates, y.updates);
            assert_eq!(x.exact_pct, y.exact_pct);
            assert_eq!(x.multi_jaccard_pct, y.multi_jaccard_pct);
        }
    }

    #[test]
    fn descriptor_of_state_roundtrips() {
        let env = poi_env();
        let s = ContextState::parse(&env, &["Plaka", "warm", "friends"]).unwrap();
        let cod = descriptor_of_state(&env, &s);
        let states = cod.states(&env).unwrap();
        assert_eq!(states, vec![s]);
        // `all` components are omitted from the descriptor.
        let t = ContextState::parse(&env, &["Plaka", "all", "friends"]).unwrap();
        assert_eq!(descriptor_of_state(&env, &t).clause_count(), 2);
    }
}
