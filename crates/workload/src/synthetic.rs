//! Synthetic profiles and query workloads (Section 5.2).
//!
//! The paper's synthetic profiles have three context parameters with
//! domain cardinalities 50 / 100 / 1000 (2 / 3 / 3 hierarchy levels),
//! 500–10000 preferences, and context values drawn uniformly or from a
//! Zipf distribution (α = 1.5, with Figure 6 right sweeping α for one
//! parameter). Queries mix values from different hierarchy levels.

use ctxpref_context::{
    ContextDescriptor, ContextEnvironment, ContextState, CtxValue, ParameterDescriptor,
};
use ctxpref_hierarchy::{Hierarchy, LevelId};
use ctxpref_profile::{AttributeClause, ContextualPreference, Profile};
use ctxpref_relation::AttrId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Zipf;

/// Distribution of the context values of one parameter across
/// generated preferences.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueDist {
    /// Uniform over the detailed domain.
    Uniform,
    /// Zipf with exponent `a` over the detailed domain (rank 0 = first
    /// domain value). `Zipf(0.0)` equals `Uniform`.
    Zipf(f64),
}

impl ValueDist {
    fn sampler(self, n: usize) -> Zipf {
        match self {
            Self::Uniform => Zipf::new(n, 0.0),
            Self::Zipf(a) => Zipf::new(n, a),
        }
    }
}

/// Specification of a synthetic workload.
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    /// Per-parameter hierarchy shapes, bottom-up level sizes excluding
    /// `ALL` — e.g. `[50]` = 2 levels, `[100, 10]` = 3 levels.
    pub domains: Vec<Vec<usize>>,
    /// Per-parameter value distributions.
    pub dists: Vec<ValueDist>,
    /// Number of preferences to generate.
    pub num_prefs: usize,
    /// Number of distinct attribute values used in clauses.
    pub clause_values: usize,
    /// RNG seed (everything is deterministic in it).
    pub seed: u64,
}

impl SyntheticSpec {
    /// The paper's standard shape: domains 50 (2 levels) / 100 (3) /
    /// 1000 (3) — declared in ascending-domain order so that
    /// "order 1" = (50, 100, 1000) matches the paper's numbering.
    pub fn paper_standard(num_prefs: usize, dist: ValueDist, seed: u64) -> Self {
        Self {
            domains: vec![vec![50], vec![100, 10], vec![1000, 100]],
            dists: vec![dist; 3],
            num_prefs,
            clause_values: 100,
            seed,
        }
    }

    /// Build the context environment (parameters named `c1`, `c2`, …).
    pub fn build_env(&self) -> ContextEnvironment {
        assert_eq!(
            self.domains.len(),
            self.dists.len(),
            "one distribution per parameter"
        );
        let hierarchies: Vec<Hierarchy> = self
            .domains
            .iter()
            .enumerate()
            .map(|(i, sizes)| {
                Hierarchy::balanced(&format!("c{}", i + 1), sizes)
                    .expect("synthetic domain shapes are valid")
            })
            .collect();
        ContextEnvironment::new(hierarchies).unwrap()
    }

    /// Generate the profile: `num_prefs` preferences whose descriptors
    /// pin every parameter to a detailed-level value drawn from its
    /// distribution. Scores are a deterministic function of
    /// (state, clause), so profiles are conflict-free by construction.
    /// Duplicate (state, clause) pairs are kept — the paper counts
    /// *preferences*, and duplicates model users restating preferences
    /// (stores deduplicate them physically).
    pub fn build_profile(&self, env: &ContextEnvironment) -> Profile {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let samplers: Vec<Zipf> = env
            .iter()
            .zip(&self.dists)
            .map(|((_, h), d)| d.sampler(h.domain_size(h.detailed_level())))
            .collect();
        let mut profile = Profile::new(env.clone());
        for _ in 0..self.num_prefs {
            let mut cod = ContextDescriptor::empty();
            let mut key: Vec<u32> = Vec::with_capacity(env.len() + 1);
            for ((p, h), z) in env.iter().zip(&samplers) {
                let v = h.domain(h.detailed_level())[z.sample(&mut rng)];
                cod = cod.with(p, ParameterDescriptor::Eq(v));
                key.push(v.0);
            }
            let cv = rng.random_range(0..self.clause_values.max(1)) as u32;
            key.push(cv);
            let clause = AttributeClause::eq(AttrId(0), format!("v{cv}").into());
            let score = deterministic_score(&key);
            profile.insert_unchecked(
                ContextualPreference::new(cod, clause, score).expect("score in range"),
            );
        }
        profile
    }
}

impl SyntheticSpec {
    /// Like [`SyntheticSpec::build_profile`], but each drawn context
    /// value is lifted to a random higher hierarchy level with
    /// probability `lift_prob` — producing profiles whose states are
    /// *extended* (mixed-level), the regime in which covering matches
    /// and distance ties occur.
    pub fn build_profile_with_lift(&self, env: &ContextEnvironment, lift_prob: f64) -> Profile {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x11f7);
        let samplers: Vec<Zipf> = env
            .iter()
            .zip(&self.dists)
            .map(|((_, h), d)| d.sampler(h.domain_size(h.detailed_level())))
            .collect();
        let mut profile = Profile::new(env.clone());
        for _ in 0..self.num_prefs {
            let mut cod = ContextDescriptor::empty();
            let mut key: Vec<u32> = Vec::with_capacity(env.len() + 1);
            for ((p, h), z) in env.iter().zip(&samplers) {
                let mut v = h.domain(h.detailed_level())[z.sample(&mut rng)];
                if rng.random::<f64>() < lift_prob && h.level_count() > 1 {
                    let target = rng.random_range(0..h.level_count()) as u8;
                    v = h.anc(v, LevelId(target)).unwrap_or(v);
                }
                cod = cod.with(p, ParameterDescriptor::Eq(v));
                key.push(v.0);
            }
            let cv = rng.random_range(0..self.clause_values.max(1)) as u32;
            key.push(cv);
            let clause = AttributeClause::eq(AttrId(0), format!("v{cv}").into());
            let score = deterministic_score(&key);
            profile.insert_unchecked(
                ContextualPreference::new(cod, clause, score).expect("score in range"),
            );
        }
        profile
    }
}

fn deterministic_score(key: &[u32]) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &k in key {
        h ^= u64::from(k).wrapping_add(0x9e37_79b9_7f4a_7c15);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    0.05 + (h % 91) as f64 / 100.0
}

/// Draw `k` query states from the states actually stored in `profile`
/// (with repetition) — these resolve as **exact matches**.
pub fn stored_query_states(
    env: &ContextEnvironment,
    profile: &Profile,
    k: usize,
    seed: u64,
) -> Vec<ContextState> {
    let mut states: Vec<ContextState> = Vec::new();
    for pref in profile.iter() {
        if let Ok(ss) = pref.descriptor().states(env) {
            states.extend(ss);
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    (0..k)
        .map(|_| states[rng.random_range(0..states.len())].clone())
        .collect()
}

/// Draw `k` random query states whose per-parameter values come from
/// mixed hierarchy levels ("context parameters have values from
/// different hierarchy levels"): a detailed value is drawn uniformly,
/// then lifted to a random level with probability `lift_prob` per
/// parameter. These resolve mostly as **non-exact** (covering) matches.
pub fn random_query_states(
    env: &ContextEnvironment,
    k: usize,
    lift_prob: f64,
    seed: u64,
) -> Vec<ContextState> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..k)
        .map(|_| {
            let values: Vec<CtxValue> = env
                .iter()
                .map(|(_, h)| {
                    let dom = h.domain(h.detailed_level());
                    let leaf = dom[rng.random_range(0..dom.len())];
                    if rng.random::<f64>() < lift_prob && h.level_count() > 1 {
                        let target = rng.random_range(0..h.level_count()) as u8;
                        h.anc(leaf, LevelId(target)).unwrap_or(leaf)
                    } else {
                        leaf
                    }
                })
                .collect();
            ContextState::from_values_unchecked(values)
        })
        .collect()
}

/// Per-parameter active-domain sizes of a profile (distinct values
/// appearing in its preference descriptors) — the quantity Figure 6
/// (right) shows matters for choosing a tree ordering under skew.
pub fn active_domains(env: &ContextEnvironment, profile: &Profile) -> Vec<usize> {
    let mut distinct: Vec<std::collections::HashSet<CtxValue>> =
        vec![Default::default(); env.len()];
    for pref in profile.iter() {
        if let Ok(sets) = pref.descriptor().value_sets(env) {
            for (i, set) in sets.into_iter().enumerate() {
                distinct[i].extend(set);
            }
        }
    }
    distinct.into_iter().map(|s| s.len()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxpref_profile::{ParamOrder, ProfileTree, SerialStore};

    #[test]
    fn paper_standard_shapes() {
        let spec = SyntheticSpec::paper_standard(500, ValueDist::Uniform, 1);
        let env = spec.build_env();
        let sizes: Vec<usize> = env
            .iter()
            .map(|(_, h)| h.domain_size(h.detailed_level()))
            .collect();
        assert_eq!(sizes, vec![50, 100, 1000]);
        let levels: Vec<usize> = env.iter().map(|(_, h)| h.level_count()).collect();
        assert_eq!(levels, vec![2, 3, 3]);
    }

    #[test]
    fn profiles_build_into_stores_without_conflicts() {
        let spec = SyntheticSpec::paper_standard(500, ValueDist::Zipf(1.5), 2);
        let env = spec.build_env();
        let p = spec.build_profile(&env);
        assert_eq!(p.len(), 500);
        let tree = ProfileTree::from_profile(&p, ParamOrder::by_ascending_domain(&env)).unwrap();
        let serial = SerialStore::from_profile(&p).unwrap();
        assert!(tree.state_count() <= 500);
        assert!(serial.len() <= 500);
    }

    #[test]
    fn zipf_profiles_reuse_more_values_than_uniform() {
        let uni = SyntheticSpec::paper_standard(2000, ValueDist::Uniform, 3);
        let zip = SyntheticSpec::paper_standard(2000, ValueDist::Zipf(1.5), 3);
        let env_u = uni.build_env();
        let env_z = zip.build_env();
        let au = active_domains(&env_u, &uni.build_profile(&env_u));
        let az = active_domains(&env_z, &zip.build_profile(&env_z));
        // The zipf profile touches fewer distinct values of the big domain.
        assert!(az[2] < au[2], "zipf active {az:?} vs uniform {au:?}");
    }

    #[test]
    fn stored_queries_hit_exactly() {
        let spec = SyntheticSpec::paper_standard(300, ValueDist::Uniform, 4);
        let env = spec.build_env();
        let p = spec.build_profile(&env);
        let tree = ProfileTree::from_profile(&p, ParamOrder::by_ascending_domain(&env)).unwrap();
        let queries = stored_query_states(&env, &p, 20, 9);
        let mut counter = ctxpref_profile::AccessCounter::new();
        for q in &queries {
            assert!(tree.exact_lookup(q, &mut counter).is_some());
        }
    }

    #[test]
    fn random_queries_mix_levels() {
        let spec = SyntheticSpec::paper_standard(10, ValueDist::Uniform, 5);
        let env = spec.build_env();
        let queries = random_query_states(&env, 200, 0.5, 11);
        assert_eq!(queries.len(), 200);
        let mut lifted = 0;
        for q in &queries {
            if !q.is_detailed(&env) {
                lifted += 1;
            }
        }
        assert!(
            lifted > 50,
            "about half the states should carry lifted values"
        );
        // Determinism.
        assert_eq!(queries, random_query_states(&env, 200, 0.5, 11));
    }
}
