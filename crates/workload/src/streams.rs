//! Context streams: sequences of query context states as a user's
//! situation evolves over time.
//!
//! The context query tree's value hinges on *context locality* — users
//! fire many queries while their context changes slowly and locally
//! (the weather shifts one condition at a time, people move to nearby
//! regions). This module models that with two generators:
//!
//! * [`dwell_stream`] — the context is redrawn uniformly every `dwell`
//!   queries (the simplest locality knob, used by the `repro -- qcache`
//!   ablation);
//! * [`walk_stream`] — a random walk: at each step, with probability
//!   `move_prob`, **one** parameter steps to an adjacent detailed value
//!   (neighbouring position within its domain order, which for
//!   generated hierarchies means staying inside or near the same parent
//!   group). This produces streams whose consecutive states differ in
//!   at most one coordinate — high cache affinity *and* high locality in
//!   the profile tree.

use ctxpref_context::{ContextEnvironment, ContextState, CtxValue};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draw a uniformly random detailed state.
pub fn random_detailed_state(env: &ContextEnvironment, rng: &mut StdRng) -> ContextState {
    let values: Vec<CtxValue> = env
        .iter()
        .map(|(_, h)| {
            let dom = h.domain(h.detailed_level());
            dom[rng.random_range(0..dom.len())]
        })
        .collect();
    ContextState::from_values_unchecked(values)
}

/// A stream of `n` detailed states where the context is redrawn
/// uniformly every `dwell` queries. `dwell = 1` has no locality.
pub fn dwell_stream(
    env: &ContextEnvironment,
    n: usize,
    dwell: usize,
    seed: u64,
) -> Vec<ContextState> {
    let mut rng = StdRng::seed_from_u64(seed);
    let dwell = dwell.max(1);
    let mut out = Vec::with_capacity(n);
    let mut current = random_detailed_state(env, &mut rng);
    for i in 0..n {
        if i % dwell == 0 {
            current = random_detailed_state(env, &mut rng);
        }
        out.push(current.clone());
    }
    out
}

/// A random-walk stream of `n` detailed states: each step keeps the
/// state with probability `1 − move_prob`; otherwise one uniformly
/// chosen parameter moves to an adjacent value in its detailed domain
/// order (clamped at the ends).
pub fn walk_stream(
    env: &ContextEnvironment,
    n: usize,
    move_prob: f64,
    seed: u64,
) -> Vec<ContextState> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let mut current = random_detailed_state(env, &mut rng);
    for _ in 0..n {
        if rng.random::<f64>() < move_prob {
            let pi = rng.random_range(0..env.len());
            let p = ctxpref_context::ParamId(pi as u16);
            let h = env.hierarchy(p);
            let dom = h.domain(h.detailed_level());
            let pos = h.pos_in_level(current.value(p)) as i64;
            let step = if rng.random::<bool>() { 1 } else { -1 };
            let next = (pos + step).clamp(0, dom.len() as i64 - 1) as usize;
            current = current.with_value(p, dom[next]);
        }
        out.push(current.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::poi_env;

    #[test]
    fn dwell_stream_repeats_in_blocks() {
        let env = poi_env();
        let s = dwell_stream(&env, 30, 10, 7);
        assert_eq!(s.len(), 30);
        for block in s.chunks(10) {
            assert!(block.iter().all(|x| x == &block[0]), "block is constant");
        }
        // Distinct blocks (overwhelmingly likely).
        assert_ne!(s[0], s[10]);
        // Determinism.
        assert_eq!(s, dwell_stream(&env, 30, 10, 7));
    }

    #[test]
    fn dwell_one_has_no_locality() {
        let env = poi_env();
        let s = dwell_stream(&env, 50, 1, 3);
        let distinct: std::collections::HashSet<_> = s.iter().collect();
        assert!(
            distinct.len() > 25,
            "mostly fresh states, got {}",
            distinct.len()
        );
    }

    #[test]
    fn walk_changes_at_most_one_coordinate() {
        let env = poi_env();
        let s = walk_stream(&env, 200, 0.7, 11);
        for w in s.windows(2) {
            let diffs = w[0]
                .values()
                .iter()
                .zip(w[1].values())
                .filter(|(a, b)| a != b)
                .count();
            assert!(diffs <= 1, "random walk moved {diffs} coordinates");
        }
        // All states stay detailed.
        assert!(s.iter().all(|x| x.is_detailed(&env)));
    }

    #[test]
    fn walk_with_zero_probability_is_constant() {
        let env = poi_env();
        let s = walk_stream(&env, 20, 0.0, 5);
        assert!(s.iter().all(|x| x == &s[0]));
    }
}
