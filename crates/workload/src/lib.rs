#![warn(missing_docs)]
//! Workloads for the evaluation of *"Adding Context to Preferences"*
//! (Section 5).
//!
//! The paper evaluates with (a) a real points-of-interest database of
//! Athens and Thessaloniki plus a real 522-preference profile, and (b)
//! synthetic profiles over three context parameters with controlled
//! domain sizes and value distributions. Neither real artifact is
//! available, so this crate builds faithful synthetic stand-ins (see
//! `DESIGN.md` §4 for the substitution argument):
//!
//! * [`mod@reference`] — the paper's reference hierarchies (Figures 1–2)
//!   extended to two cities, and a deterministic POI database generator.
//! * [`real_profile`] — a profile generator reproducing the published
//!   statistics of the "real profile": 522 preferences over three
//!   context parameters with active domains of 4, 17 and 100 values.
//! * [`synthetic`] — the synthetic profiles of Section 5.2: uniform or
//!   Zipf-distributed context values over parameters with 50/100/1000
//!   (or arbitrary) domain sizes, plus query generators.
//! * [`user_study`] — a simulated re-run of the Table 1 usability study
//!   with 10 simulated users derived from 12 demographic default
//!   profiles.
//! * [`streams`] — context streams (dwell blocks, random walks) for
//!   evaluating the context query tree under realistic locality.
//! * [`Zipf`] — a seedable Zipf(α) sampler (α = 0 degenerates to
//!   uniform), implemented here because `rand_distr` is not among the
//!   approved dependencies.

mod zipf;

pub mod real_profile;
pub mod reference;
pub mod streams;
pub mod synthetic;
pub mod user_study;

pub use zipf::Zipf;
