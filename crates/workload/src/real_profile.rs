//! A stand-in for the paper's "real profile": 522 preferences over
//! three context parameters — accompanying_people, time, location —
//! whose active domains have 4, 17 and 100 values respectively
//! (Section 5.2, Figure 5).
//!
//! The actual user profile is not published; what Figure 5 measures
//! (profile-tree cells/bytes per parameter ordering vs. serial storage)
//! depends only on those statistics and on the skew of value reuse, so
//! we generate a profile with exactly the published counts and a mild,
//! human-like skew (people mostly file preferences about a handful of
//! places and times).

use ctxpref_context::{ContextDescriptor, ContextEnvironment, ParameterDescriptor};
use ctxpref_hierarchy::{Hierarchy, HierarchyBuilder};
use ctxpref_profile::{AttributeClause, ContextualPreference, Profile};
use ctxpref_relation::AttrId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::reference::POI_TYPES;
use crate::Zipf;

/// Number of preferences in the paper's real profile.
pub const REAL_PROFILE_SIZE: usize = 522;

/// Active domain sizes of (accompanying_people, time, location).
pub const REAL_ACTIVE_DOMAINS: [usize; 3] = [4, 17, 100];

/// The environment of the real profile: `accompanying_people` (4 values,
/// 2 levels), `time` (17 hours grouped into 5 day periods, 3 levels),
/// `location` (100 regions grouped into 10 cities, 3 levels).
pub fn real_profile_env() -> ContextEnvironment {
    let people = Hierarchy::flat(
        "accompanying_people",
        &["friends", "family", "alone", "colleagues"],
    )
    .unwrap();

    let mut time = HierarchyBuilder::new("time", &["Hour", "Period"]);
    let periods: [(&str, &[&str]); 5] = [
        ("morning", &["h07", "h08", "h09", "h10"]),
        ("noon", &["h11", "h12", "h13"]),
        ("afternoon", &["h14", "h15", "h16", "h17"]),
        ("evening", &["h18", "h19", "h20", "h21"]),
        ("night", &["h22", "h23"]),
    ];
    for (period, hours) in periods {
        time.add("Period", period, None).unwrap();
        time.add_leaves(period, hours).unwrap();
    }

    let mut loc = HierarchyBuilder::new("location", &["Region", "City"]);
    for city in 0..10 {
        let city_name = format!("city{city}");
        loc.add("City", &city_name, None).unwrap();
        for region in 0..10 {
            loc.add(
                "Region",
                &format!("region{}", city * 10 + region),
                Some(&city_name),
            )
            .unwrap();
        }
    }

    ContextEnvironment::new(vec![people, time.build().unwrap(), loc.build().unwrap()]).unwrap()
}

/// Generate the 522-preference profile. Deterministic in `seed`.
///
/// Context values are drawn with mild skew (Zipf α = 0.8 over each
/// active domain — humans concentrate on favourite places/times);
/// every preference constrains all three parameters with `=`
/// descriptors, matching the paper's description ("each preference
/// consists of three context values, an attribute name, an attribute
/// value and an interest score"). Scores are derived deterministically
/// from the (state, clause) pair, so the profile is conflict-free by
/// construction.
pub fn real_profile(env: &ContextEnvironment, seed: u64) -> Profile {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut profile = Profile::new(env.clone());
    let samplers: Vec<(ctxpref_context::ParamId, Zipf)> = env
        .iter()
        .map(|(p, h)| (p, Zipf::new(h.domain_size(h.detailed_level()), 0.8)))
        .collect();

    let mut seen = std::collections::HashSet::new();
    while profile.len() < REAL_PROFILE_SIZE {
        let mut cod = ContextDescriptor::empty();
        let mut key: Vec<u32> = Vec::with_capacity(env.len() + 1);
        for (p, z) in &samplers {
            let h = env.hierarchy(*p);
            let v = h.domain(h.detailed_level())[z.sample(&mut rng)];
            cod = cod.with(*p, ParameterDescriptor::Eq(v));
            key.push(v.0);
        }
        let ty = rng.random_range(0..POI_TYPES.len());
        key.push(ty as u32);
        if !seen.insert(key.clone()) {
            continue; // exact duplicate (state, clause) — redraw
        }
        let clause = AttributeClause::eq(AttrId(2), POI_TYPES[ty].into());
        let score = deterministic_score(&key);
        let pref = ContextualPreference::new(cod, clause, score)
            .expect("deterministic scores are within [0, 1]");
        profile.insert_unchecked(pref);
    }
    profile
}

/// A score in [0.05, 0.95] derived from a state/clause fingerprint —
/// identical (state, clause) pairs always score identically, so
/// generated profiles can never contain Definition-6 conflicts.
fn deterministic_score(key: &[u32]) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &k in key {
        h ^= u64::from(k).wrapping_add(0x9e37_79b9_7f4a_7c15);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    0.05 + (h % 91) as f64 / 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxpref_profile::{ParamOrder, ProfileTree, SerialStore};

    #[test]
    fn env_has_published_domain_sizes() {
        let env = real_profile_env();
        let sizes: Vec<usize> = env
            .iter()
            .map(|(_, h)| h.domain_size(h.detailed_level()))
            .collect();
        assert_eq!(sizes, REAL_ACTIVE_DOMAINS.to_vec());
        // Level counts: 2, 3, 3 (including ALL).
        let levels: Vec<usize> = env.iter().map(|(_, h)| h.level_count()).collect();
        assert_eq!(levels, vec![2, 3, 3]);
    }

    #[test]
    fn profile_has_522_conflict_free_preferences() {
        let env = real_profile_env();
        let p = real_profile(&env, 1);
        assert_eq!(p.len(), REAL_PROFILE_SIZE);
        // Conflict-free: building the tree (which detects conflicts on
        // insertion) must succeed.
        let tree = ProfileTree::from_profile(&p, ParamOrder::identity(&env)).unwrap();
        assert!(tree.state_count() > 0);
        let serial = SerialStore::from_profile(&p).unwrap();
        assert_eq!(serial.len(), REAL_PROFILE_SIZE);
    }

    #[test]
    fn profile_is_deterministic_per_seed() {
        let env = real_profile_env();
        let a = real_profile(&env, 3);
        let b = real_profile(&env, 3);
        assert_eq!(a.preferences().len(), b.preferences().len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.score(), y.score());
            assert_eq!(x.clause(), y.clause());
        }
        let c = real_profile(&env, 4);
        let same = a.iter().zip(c.iter()).all(|(x, y)| x == y);
        assert!(!same, "different seeds should differ");
    }

    #[test]
    fn value_reuse_is_skewed() {
        // The hottest location value should appear in far more than
        // 522/100 preferences.
        let env = real_profile_env();
        let p = real_profile(&env, 1);
        let loc = env.param("location").unwrap();
        let mut counts = std::collections::HashMap::new();
        for pref in p.iter() {
            let sets = pref.descriptor().value_sets(&env).unwrap();
            *counts.entry(sets[loc.index()][0]).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(
            max > 522 / 100 * 3,
            "expected skewed reuse, max count {max}"
        );
    }
}
