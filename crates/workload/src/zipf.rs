use rand::Rng;

/// A Zipf(α) sampler over ranks `0..n`: rank `k` (0-based) is drawn with
/// probability proportional to `1 / (k + 1)^α`.
///
/// α = 0 is the uniform distribution; the paper's skewed profiles use
/// α = 1.5, and Figure 6 (right) sweeps α from 0 to 3.5.
///
/// Sampling is by inverse transform over a precomputed CDF (O(log n)
/// per draw), which is exact and fast enough for the profile sizes of
/// the evaluation (≤ 10⁴ preferences over domains ≤ 10³).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n ≥ 1` ranks with exponent `a ≥ 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `a` is negative or non-finite.
    pub fn new(n: usize, a: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one rank");
        assert!(
            a >= 0.0 && a.is_finite(),
            "Zipf exponent must be finite and ≥ 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(a);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating point leaving the last bucket < 1.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_a_is_zero() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
        assert_eq!(z.n(), 4);
    }

    #[test]
    fn skew_orders_probabilities() {
        let z = Zipf::new(10, 1.5);
        for k in 1..10 {
            assert!(z.pmf(k) < z.pmf(k - 1), "pmf must decrease with rank");
        }
        // pmf sums to 1.
        let total: f64 = (0..10).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_matches_pmf_roughly() {
        let z = Zipf::new(5, 1.5);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 5];
        let draws = 200_000;
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let freq = count as f64 / draws as f64;
            assert!(
                (freq - z.pmf(k)).abs() < 0.01,
                "rank {k}: freq {freq} vs pmf {}",
                z.pmf(k)
            );
        }
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn negative_exponent_panics() {
        let _ = Zipf::new(3, -1.0);
    }

    #[test]
    fn high_skew_concentrates_mass() {
        let z = Zipf::new(200, 3.5);
        assert!(z.pmf(0) > 0.8, "α=3.5 should put most mass on rank 0");
    }
}
