//! Crash safety of the file-level save/load path: atomic writes,
//! checksum verification, fault injection, and a truncation fuzz
//! proving the reader fails cleanly — never panics — on any prefix.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use ctxpref_core::MultiUserDb;
use ctxpref_faults::FaultPlan;
use ctxpref_storage::{
    load_multi_user, read_multi_user, save_multi_user, write_multi_user, StorageError,
};
use ctxpref_workload::reference::{poi_env, poi_relation};
use ctxpref_workload::user_study::{all_demographics, default_profile};

/// Fault plans are process-global; tests that install one must not
/// overlap with each other.
fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// A fresh path under the system temp dir; removed on drop.
struct TempPath(PathBuf);

impl TempPath {
    fn new(tag: &str) -> Self {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        Self(
            std::env::temp_dir().join(format!("ctxpref-crash-{}-{tag}-{n}.db", std::process::id())),
        )
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Three users with a handful of hand-built preferences each (distinct
/// scores, one multi-parameter descriptor) over a tiny relation: a
/// genuinely multi-user checksummed file that stays small enough for
/// the O(file²) byte fuzzes.
fn tiny_multi_user_db() -> MultiUserDb {
    let env = poi_env();
    let rel = poi_relation(&env, 3, 1);
    let mut db = MultiUserDb::new(env.clone(), rel, 4);
    for (i, name) in ["user0", "user1", "user2"].into_iter().enumerate() {
        db.add_user(name).unwrap();
        db.insert_preference_eq(
            name,
            "accompanying_people = friends",
            "type",
            "museum".into(),
            0.2 + i as f64 / 10.0,
        )
        .unwrap();
        db.insert_preference_eq(name, "temperature = warm", "type", "park".into(), 0.9)
            .unwrap();
    }
    db.insert_preference_eq(
        "user1",
        "location = Plaka and temperature = hot",
        "type",
        "bar".into(),
        0.55,
    )
    .unwrap();
    db
}

fn study_db(users: usize) -> MultiUserDb {
    let env = poi_env();
    let rel = poi_relation(&env, 7, 4);
    let mut db = MultiUserDb::new(env.clone(), rel, 8);
    for (i, demo) in all_demographics().into_iter().take(users).enumerate() {
        let profile = default_profile(&env, db.relation(), demo);
        db.add_user_with_profile(&format!("user{i}"), profile)
            .unwrap();
    }
    db
}

#[test]
fn save_load_roundtrip_with_checksum() {
    let path = TempPath::new("roundtrip");
    let db = study_db(3);
    save_multi_user(&path.0, &db).unwrap();

    let text = std::fs::read_to_string(&path.0).unwrap();
    let mut lines = text.lines();
    assert_eq!(lines.next(), Some("ctxpref v1"));
    let checksum = lines.next().unwrap();
    assert!(checksum.starts_with("checksum "), "{checksum}");
    assert_eq!(checksum.len(), "checksum ".len() + 16, "16 hex digits");

    let restored = load_multi_user(&path.0).unwrap();
    assert_eq!(restored.users_sorted(), db.users_sorted());
    assert_eq!(
        restored.profile("user0").unwrap().len(),
        db.profile("user0").unwrap().len()
    );
}

#[test]
fn flipped_byte_is_detected_as_corrupt() {
    let path = TempPath::new("bitrot");
    save_multi_user(&path.0, &study_db(2)).unwrap();
    let mut bytes = std::fs::read(&path.0).unwrap();
    // Flip a byte deep in the body (past header + checksum lines).
    let target = bytes.len() - 10;
    bytes[target] ^= 0x20;
    std::fs::write(&path.0, &bytes).unwrap();
    match load_multi_user(&path.0) {
        Err(StorageError::Corrupt { expected, actual }) => assert_ne!(expected, actual),
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn files_without_checksum_still_load() {
    // Streaming output (and pre-checksum files) has no checksum line.
    let path = TempPath::new("legacy");
    let db = study_db(2);
    let mut buf = Vec::new();
    write_multi_user(&mut buf, &db).unwrap();
    std::fs::write(&path.0, &buf).unwrap();
    let restored = load_multi_user(&path.0).unwrap();
    assert_eq!(restored.users_sorted(), db.users_sorted());
}

/// The truncation fuzz of the satellite task, on a genuinely
/// multi-user checksummed file (three users with distinct demographic
/// profiles, so the cut can land inside any user section, between two
/// `user` headers, or mid-preference): for EVERY prefix of the saved
/// file, the reader returns a `StorageError` (or, for the rare prefix
/// that happens to be well-formed, a database) — it never panics. And
/// the checksum rejects every strict prefix at load time.
#[test]
fn reader_never_panics_on_any_prefix() {
    let path = TempPath::new("fuzz");
    // Small relation, three small hand-built profiles: the fuzz is
    // O(file²) since every prefix is parsed, so the file must stay a
    // few KB (the demographic default profiles would be ~60
    // preferences each and blow the runtime up ~10×).
    let db = tiny_multi_user_db();
    save_multi_user(&path.0, &db).unwrap();
    let bytes = std::fs::read(&path.0).unwrap();
    // The cut points genuinely span all three user sections.
    let body = String::from_utf8(bytes.clone()).unwrap();
    assert_eq!(
        body.matches("\nuser ").count(),
        3,
        "expected a three-user file:\n{body}"
    );

    let truncated = TempPath::new("fuzz-prefix");
    for len in 0..bytes.len() {
        let prefix = &bytes[..len];
        let parsed = catch_unwind(AssertUnwindSafe(|| read_multi_user(prefix).map(drop)));
        assert!(parsed.is_ok(), "reader panicked on prefix of {len} bytes");
        // The load path must *reject* every strict prefix: either the
        // checksum line is damaged/absent-with-bad-header, or the body
        // hash no longer matches. File I/O dominates the runtime, so
        // stride-sample it; the in-memory no-panic check stays
        // exhaustive.
        if len % 13 == 0 || len + 64 > bytes.len() {
            std::fs::write(&truncated.0, prefix).unwrap();
            assert!(
                load_multi_user(&truncated.0).is_err(),
                "strict prefix of {len} bytes loaded successfully"
            );
        }
    }
    // Sanity: the untruncated file does load, with all three profiles.
    let restored = load_multi_user(&path.0).unwrap();
    assert_eq!(restored.user_count(), 3);
    for i in 0..3 {
        let user = format!("user{i}");
        assert_eq!(
            restored.profile(&user).unwrap().len(),
            db.profile(&user).unwrap().len(),
            "{user} profile shrank"
        );
    }
}

/// Same property under in-body corruption instead of truncation: flip
/// one byte at a stride of positions across the whole multi-user file —
/// the reader never panics, and the checksummed load path never
/// accepts the damaged bytes as the saved database.
#[test]
fn reader_never_panics_on_flipped_bytes() {
    let path = TempPath::new("flip");
    let db = tiny_multi_user_db();
    save_multi_user(&path.0, &db).unwrap();
    let bytes = std::fs::read(&path.0).unwrap();
    let users = db.users_sorted();

    let damaged_path = TempPath::new("flip-out");
    for pos in (0..bytes.len()).step_by(7) {
        for flip in [0x01u8, 0x20] {
            let mut damaged = bytes.clone();
            damaged[pos] ^= flip;
            let parsed = catch_unwind(AssertUnwindSafe(|| read_multi_user(&damaged[..]).map(drop)));
            assert!(
                parsed.is_ok(),
                "reader panicked on byte {pos} flipped by {flip:#04x}"
            );
            std::fs::write(&damaged_path.0, &damaged).unwrap();
            // Either the checksum rejects the damage, or the flip
            // landed somewhere semantically inert (e.g. inside a user
            // name, which the checksum DOES catch, or produced an
            // equivalent parse) — but a *successful* load may never
            // misattribute profiles.
            if let Ok(loaded) = load_multi_user(&damaged_path.0) {
                assert_eq!(
                    loaded.users_sorted(),
                    users,
                    "flip at {pos} (by {flip:#04x}) changed the user set but still loaded"
                );
            }
        }
    }
}

/// Kill-during-save: an injected partial write fails the save and
/// leaves the previous file intact and loadable.
#[test]
fn partial_write_leaves_previous_file_loadable() {
    let _serial = fault_lock();
    let path = TempPath::new("partial");
    let old = study_db(2);
    save_multi_user(&path.0, &old).unwrap();

    let new = study_db(4);
    let plan = FaultPlan::builder(99)
        .truncate_at("storage.save.write", &[1], 0.5)
        .build();
    plan.run(|| {
        let err = save_multi_user(&path.0, &new).expect_err("truncated save must fail");
        assert!(matches!(err, StorageError::Io(_)), "{err:?}");
    });
    assert_eq!(plan.stats().truncations.get("storage.save.write"), Some(&1));

    let loaded = load_multi_user(&path.0).expect("old file intact after failed save");
    assert_eq!(loaded.user_count(), old.user_count());

    // Without the fault the new snapshot replaces the old atomically.
    save_multi_user(&path.0, &new).unwrap();
    assert_eq!(
        load_multi_user(&path.0).unwrap().user_count(),
        new.user_count()
    );
}

#[test]
fn injected_io_errors_surface_as_storage_errors() {
    let _serial = fault_lock();
    let path = TempPath::new("io-faults");
    let db = study_db(2);
    for site in [
        "storage.save.open",
        "storage.save.sync",
        "storage.save.rename",
    ] {
        let plan = FaultPlan::builder(7).fail_at(site, &[1]).build();
        plan.run(|| {
            let err = save_multi_user(&path.0, &db).expect_err(site);
            assert!(matches!(err, StorageError::Io(_)), "{site}: {err:?}");
        });
    }
    // After three failed saves, a clean one succeeds and loads.
    save_multi_user(&path.0, &db).unwrap();
    for site in ["storage.load.open", "storage.load.read"] {
        let plan = FaultPlan::builder(7).fail_at(site, &[1]).build();
        plan.run(|| {
            let err = load_multi_user(&path.0).expect_err(site);
            assert!(matches!(err, StorageError::Io(_)), "{site}: {err:?}");
        });
    }
    assert!(load_multi_user(&path.0).is_ok());
}

/// Saves racing on the same destination never interleave bytes: each
/// temp file is private, the rename is atomic, and the survivor is one
/// of the complete snapshots.
#[test]
fn concurrent_saves_yield_a_complete_snapshot() {
    let path = TempPath::new("race");
    let dbs: Vec<MultiUserDb> = (1..=4).map(study_db).collect();
    std::thread::scope(|s| {
        for db in &dbs {
            s.spawn(|| save_multi_user(&path.0, db).unwrap());
        }
    });
    let winner = load_multi_user(&path.0).expect("some complete snapshot");
    assert!((1..=4).contains(&winner.user_count()));
}
