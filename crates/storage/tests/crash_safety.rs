//! Crash safety of the file-level save/load path: atomic writes,
//! checksum verification, fault injection, and a truncation fuzz
//! proving the reader fails cleanly — never panics — on any prefix.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use ctxpref_core::MultiUserDb;
use ctxpref_faults::FaultPlan;
use ctxpref_storage::{
    load_multi_user, read_multi_user, save_multi_user, write_multi_user, StorageError,
};
use ctxpref_workload::reference::{poi_env, poi_relation};
use ctxpref_workload::user_study::{all_demographics, default_profile};

/// Fault plans are process-global; tests that install one must not
/// overlap with each other.
fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default).lock().unwrap_or_else(|e| e.into_inner())
}

/// A fresh path under the system temp dir; removed on drop.
struct TempPath(PathBuf);

impl TempPath {
    fn new(tag: &str) -> Self {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        Self(std::env::temp_dir().join(format!(
            "ctxpref-crash-{}-{tag}-{n}.db",
            std::process::id()
        )))
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn study_db(users: usize) -> MultiUserDb {
    let env = poi_env();
    let rel = poi_relation(&env, 7, 4);
    let mut db = MultiUserDb::new(env.clone(), rel, 8);
    for (i, demo) in all_demographics().into_iter().take(users).enumerate() {
        let profile = default_profile(&env, db.relation(), demo);
        db.add_user_with_profile(&format!("user{i}"), profile).unwrap();
    }
    db
}

#[test]
fn save_load_roundtrip_with_checksum() {
    let path = TempPath::new("roundtrip");
    let db = study_db(3);
    save_multi_user(&path.0, &db).unwrap();

    let text = std::fs::read_to_string(&path.0).unwrap();
    let mut lines = text.lines();
    assert_eq!(lines.next(), Some("ctxpref v1"));
    let checksum = lines.next().unwrap();
    assert!(checksum.starts_with("checksum "), "{checksum}");
    assert_eq!(checksum.len(), "checksum ".len() + 16, "16 hex digits");

    let restored = load_multi_user(&path.0).unwrap();
    assert_eq!(restored.users_sorted(), db.users_sorted());
    assert_eq!(restored.profile("user0").unwrap().len(), db.profile("user0").unwrap().len());
}

#[test]
fn flipped_byte_is_detected_as_corrupt() {
    let path = TempPath::new("bitrot");
    save_multi_user(&path.0, &study_db(2)).unwrap();
    let mut bytes = std::fs::read(&path.0).unwrap();
    // Flip a byte deep in the body (past header + checksum lines).
    let target = bytes.len() - 10;
    bytes[target] ^= 0x20;
    std::fs::write(&path.0, &bytes).unwrap();
    match load_multi_user(&path.0) {
        Err(StorageError::Corrupt { expected, actual }) => assert_ne!(expected, actual),
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn files_without_checksum_still_load() {
    // Streaming output (and pre-checksum files) has no checksum line.
    let path = TempPath::new("legacy");
    let db = study_db(2);
    let mut buf = Vec::new();
    write_multi_user(&mut buf, &db).unwrap();
    std::fs::write(&path.0, &buf).unwrap();
    let restored = load_multi_user(&path.0).unwrap();
    assert_eq!(restored.users_sorted(), db.users_sorted());
}

/// The truncation fuzz of the satellite task: for EVERY prefix of a
/// saved file, the reader returns a `StorageError` (or, for the rare
/// prefix that happens to be well-formed, a database) — it never
/// panics. And the checksum rejects every strict prefix at load time.
#[test]
fn reader_never_panics_on_any_prefix() {
    let path = TempPath::new("fuzz");
    // Small database: the fuzz is O(file²) since every prefix is parsed.
    let env = poi_env();
    let rel = poi_relation(&env, 3, 2);
    let mut db = MultiUserDb::new(env.clone(), rel, 4);
    let demo = all_demographics().into_iter().next().unwrap();
    let profile = default_profile(&env, db.relation(), demo);
    db.add_user_with_profile("solo", profile).unwrap();
    save_multi_user(&path.0, &db).unwrap();
    let bytes = std::fs::read(&path.0).unwrap();

    let truncated = TempPath::new("fuzz-prefix");
    for len in 0..bytes.len() {
        let prefix = &bytes[..len];
        let parsed = catch_unwind(AssertUnwindSafe(|| read_multi_user(prefix).map(drop)));
        assert!(parsed.is_ok(), "reader panicked on prefix of {len} bytes");
        // The load path must *reject* every strict prefix: either the
        // checksum line is damaged/absent-with-bad-header, or the body
        // hash no longer matches. File I/O dominates the runtime, so
        // stride-sample it; the in-memory no-panic check stays
        // exhaustive.
        if len % 13 == 0 || len + 64 > bytes.len() {
            std::fs::write(&truncated.0, prefix).unwrap();
            assert!(
                load_multi_user(&truncated.0).is_err(),
                "strict prefix of {len} bytes loaded successfully"
            );
        }
    }
    // Sanity: the untruncated file does load.
    assert!(load_multi_user(&path.0).is_ok());
}

/// Kill-during-save: an injected partial write fails the save and
/// leaves the previous file intact and loadable.
#[test]
fn partial_write_leaves_previous_file_loadable() {
    let _serial = fault_lock();
    let path = TempPath::new("partial");
    let old = study_db(2);
    save_multi_user(&path.0, &old).unwrap();

    let new = study_db(4);
    let plan = FaultPlan::builder(99).truncate_at("storage.save.write", &[1], 0.5).build();
    plan.run(|| {
        let err = save_multi_user(&path.0, &new).expect_err("truncated save must fail");
        assert!(matches!(err, StorageError::Io(_)), "{err:?}");
    });
    assert_eq!(plan.stats().truncations.get("storage.save.write"), Some(&1));

    let loaded = load_multi_user(&path.0).expect("old file intact after failed save");
    assert_eq!(loaded.user_count(), old.user_count());

    // Without the fault the new snapshot replaces the old atomically.
    save_multi_user(&path.0, &new).unwrap();
    assert_eq!(load_multi_user(&path.0).unwrap().user_count(), new.user_count());
}

#[test]
fn injected_io_errors_surface_as_storage_errors() {
    let _serial = fault_lock();
    let path = TempPath::new("io-faults");
    let db = study_db(2);
    for site in ["storage.save.open", "storage.save.sync", "storage.save.rename"] {
        let plan = FaultPlan::builder(7).fail_at(site, &[1]).build();
        plan.run(|| {
            let err = save_multi_user(&path.0, &db).expect_err(site);
            assert!(matches!(err, StorageError::Io(_)), "{site}: {err:?}");
        });
    }
    // After three failed saves, a clean one succeeds and loads.
    save_multi_user(&path.0, &db).unwrap();
    for site in ["storage.load.open", "storage.load.read"] {
        let plan = FaultPlan::builder(7).fail_at(site, &[1]).build();
        plan.run(|| {
            let err = load_multi_user(&path.0).expect_err(site);
            assert!(matches!(err, StorageError::Io(_)), "{site}: {err:?}");
        });
    }
    assert!(load_multi_user(&path.0).is_ok());
}

/// Saves racing on the same destination never interleave bytes: each
/// temp file is private, the rename is atomic, and the survivor is one
/// of the complete snapshots.
#[test]
fn concurrent_saves_yield_a_complete_snapshot() {
    let path = TempPath::new("race");
    let dbs: Vec<MultiUserDb> = (1..=4).map(study_db).collect();
    std::thread::scope(|s| {
        for db in &dbs {
            s.spawn(|| save_multi_user(&path.0, db).unwrap());
        }
    });
    let winner = load_multi_user(&path.0).expect("some complete snapshot");
    assert!((1..=4).contains(&winner.user_count()));
}
