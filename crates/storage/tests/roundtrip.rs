//! Round-trip and error-handling tests for the `ctxpref v1` format.

use ctxpref_context::ContextState;
use ctxpref_core::ContextualDb;
use ctxpref_relation::{AttrType, CompareOp, Relation, Schema, Value};
use ctxpref_storage::{
    read_database, read_hierarchy, read_profile, read_relation, write_database, write_hierarchy,
    write_profile, write_relation, StorageError,
};
use ctxpref_workload::real_profile::{real_profile, real_profile_env};
use ctxpref_workload::reference::{poi_env, poi_relation, reference_env};
use ctxpref_workload::synthetic::random_query_states;

fn demo_db() -> ContextualDb {
    let env = reference_env();
    let schema = Schema::new(&[
        ("name", AttrType::Str),
        ("type", AttrType::Str),
        ("open_air", AttrType::Bool),
        ("cost", AttrType::Float),
        ("pid", AttrType::Int),
    ])
    .unwrap();
    let mut rel = Relation::new("Points of Interest", schema);
    rel.insert(vec![
        "Acropolis".into(),
        "monument".into(),
        true.into(),
        12.5.into(),
        1.into(),
    ])
    .unwrap();
    rel.insert(vec![
        "Mikro Brewery".into(),
        "brewery".into(),
        false.into(),
        0.0.into(),
        2.into(),
    ])
    .unwrap();
    let mut db = ContextualDb::builder()
        .env(env)
        .relation(rel)
        .cache_capacity(17)
        .build()
        .unwrap();
    db.insert_preference_eq(
        "location = Plaka and temperature in {warm, hot}",
        "name",
        "Acropolis".into(),
        0.8,
    )
    .unwrap();
    db.insert_preference_eq(
        "accompanying_people = friends",
        "type",
        "brewery".into(),
        0.9,
    )
    .unwrap();
    db.insert_preference_cmp(
        "temperature in [mild, hot]",
        "cost",
        CompareOp::Le,
        10.0.into(),
        0.45,
    )
    .unwrap();
    db
}

#[test]
fn database_roundtrip_preserves_everything() {
    let db = demo_db();
    let mut buf = Vec::new();
    write_database(&mut buf, &db).unwrap();
    let text = String::from_utf8(buf.clone()).unwrap();
    assert!(text.starts_with("ctxpref v1"));
    let restored = read_database(&buf[..]).unwrap();

    assert_eq!(restored.profile().len(), db.profile().len());
    assert_eq!(restored.relation().len(), db.relation().len());
    assert_eq!(restored.relation().name(), "Points of Interest");
    assert_eq!(restored.cache_capacity(), 17);
    assert_eq!(
        restored.tree().order().params(),
        db.tree().order().params(),
        "tree ordering survives"
    );
    assert_eq!(restored.tree_stats(), db.tree_stats());

    // Identical answers on the reference contexts.
    for names in [["Plaka", "warm", "friends"], ["Perama", "cold", "family"]] {
        let q = ContextState::parse(db.env(), &names).unwrap();
        let q2 = ContextState::parse(restored.env(), &names).unwrap();
        let a = db.query_state(&q).unwrap();
        let b = restored.query_state(&q2).unwrap();
        assert_eq!(a.results.entries(), b.results.entries());
    }
}

#[test]
fn second_roundtrip_is_identical_text() {
    let db = demo_db();
    let mut buf1 = Vec::new();
    write_database(&mut buf1, &db).unwrap();
    let restored = read_database(&buf1[..]).unwrap();
    let mut buf2 = Vec::new();
    write_database(&mut buf2, &restored).unwrap();
    assert_eq!(
        String::from_utf8(buf1).unwrap(),
        String::from_utf8(buf2).unwrap(),
        "format is a fixed point after one roundtrip"
    );
}

#[test]
fn hierarchy_roundtrip() {
    let env = poi_env();
    for (_, h) in env.iter() {
        let mut buf = Vec::new();
        write_hierarchy(&mut buf, h).unwrap();
        let restored = read_hierarchy(&buf[..]).unwrap();
        assert_eq!(restored.name(), h.name());
        assert_eq!(restored.level_count(), h.level_count());
        assert_eq!(restored.edom_size(), h.edom_size());
        for v in h.edom() {
            let rv = restored.lookup(h.value_name(v)).unwrap();
            assert_eq!(restored.level_of(rv), h.level_of(v));
            assert_eq!(restored.leaf_count(rv), h.leaf_count(v));
        }
        restored.validate().unwrap();
    }
}

#[test]
fn relation_roundtrip_with_awkward_strings() {
    let schema = Schema::new(&[("s", AttrType::Str), ("f", AttrType::Float)]).unwrap();
    let mut rel = Relation::new("weird name\twith tab", schema);
    for s in [
        "",
        "spa ces",
        "tab\tand\nnewline",
        "back\\slash",
        "ünïcode πλάκα",
    ] {
        rel.insert(vec![s.into(), 0.1.into()]).unwrap();
    }
    rel.insert(vec!["neg".into(), (-1.5e-9).into()]).unwrap();
    let mut buf = Vec::new();
    write_relation(&mut buf, &rel).unwrap();
    let restored = read_relation(&buf[..]).unwrap();
    assert_eq!(restored.name(), rel.name());
    assert_eq!(restored.tuples(), rel.tuples());
}

#[test]
fn profile_roundtrip_on_large_generated_profile() {
    let env = real_profile_env();
    let profile = real_profile(&env, 5);
    let schema = Schema::new(&[
        ("pid", AttrType::Int),
        ("name", AttrType::Str),
        ("type", AttrType::Str),
    ])
    .unwrap();
    let rel = Relation::new("poi", schema);
    let mut buf = Vec::new();
    write_profile(&mut buf, &profile, &rel).unwrap();
    let restored = read_profile(&buf[..], &env, &rel).unwrap();
    assert_eq!(restored.len(), profile.len());
    for (a, b) in profile.iter().zip(restored.iter()) {
        assert_eq!(a, b);
    }
}

#[test]
fn full_poi_database_roundtrip_resolves_identically() {
    let env = poi_env();
    let rel = poi_relation(&env, 11, 4);
    let mut db = ContextualDb::builder()
        .env(env.clone())
        .relation(rel)
        .build()
        .unwrap();
    for (cod, ty, score) in [
        ("temperature = good", "monument", 0.8),
        (
            "temperature = bad and accompanying_people = alone",
            "museum",
            0.85,
        ),
        ("location = Thessaloniki", "market", 0.75),
    ] {
        db.insert_preference_eq(cod, "type", ty.into(), score)
            .unwrap();
    }
    let mut buf = Vec::new();
    write_database(&mut buf, &db).unwrap();
    let restored = read_database(&buf[..]).unwrap();
    for q in random_query_states(&env, 30, 0.4, 3) {
        let a = db.query_state(&q).unwrap();
        let b = restored.query_state(&q).unwrap();
        assert_eq!(
            a.results.entries(),
            b.results.entries(),
            "q = {}",
            q.display(&env)
        );
    }
}

#[test]
fn save_and_load_via_files() {
    let dir = std::env::temp_dir().join(format!("ctxpref_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("db.ctxpref");
    let db = demo_db();
    ctxpref_storage::save_database(&path, &db).unwrap();
    let restored = ctxpref_storage::load_database(&path).unwrap();
    assert_eq!(restored.profile().len(), db.profile().len());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_inputs_report_lines() {
    // Wrong header.
    match read_database(&b"ctxpref v99\n"[..]) {
        Err(StorageError::BadHeader(h)) => assert_eq!(h, "ctxpref v99"),
        other => panic!("expected BadHeader, got {other:?}"),
    }
    // Truncated hierarchy.
    let text = "ctxpref v1\nhierarchy loc\nlevels City\nv City Athens -\n";
    match read_database(text.as_bytes()) {
        Err(StorageError::Syntax { message, .. }) => {
            assert!(message.contains("unterminated"), "{message}")
        }
        other => panic!("expected Syntax, got {other:?}"),
    }
    // Bad value token in a tuple.
    let text = "ctxpref v1\nhierarchy w\nlevels L\nv L a -\nend\n\
                relation r\nattr x int\nt z:9\nend\norder w\nprofile\nend\n";
    match read_database(text.as_bytes()) {
        Err(StorageError::Syntax { line, message }) => {
            assert_eq!(line, 8);
            assert!(message.contains("unknown value tag"));
        }
        other => panic!("expected Syntax at line 8, got {other:?}"),
    }
    // Conflicting preferences are a model error.
    let text = "ctxpref v1\nhierarchy w\nlevels L\nv L a -\nend\n\
                relation r\nattr x str\nend\norder w\nprofile\n\
                pref 0.5 x eq s:v w eq a\npref 0.9 x eq s:v w eq a\nend\n";
    match read_database(text.as_bytes()) {
        Err(StorageError::Model { message, .. }) => {
            assert!(message.contains("conflict"), "{message}")
        }
        other => panic!("expected Model, got {other:?}"),
    }
    // Unknown context value in a pref.
    let text = "ctxpref v1\nhierarchy w\nlevels L\nv L a -\nend\n\
                relation r\nattr x str\nend\norder w\nprofile\n\
                pref 0.5 x eq s:v w eq ghost\nend\n";
    match read_database(text.as_bytes()) {
        Err(StorageError::Model { message, .. }) => {
            assert!(message.contains("ghost"), "{message}")
        }
        other => panic!("expected Model, got {other:?}"),
    }
    // Trailing garbage.
    let text = "ctxpref v1\nhierarchy w\nlevels L\nv L a -\nend\n\
                relation r\nattr x str\nend\norder w\nprofile\nend\nwat\n";
    match read_database(text.as_bytes()) {
        Err(StorageError::Syntax { message, .. }) => {
            assert!(message.contains("trailing"), "{message}")
        }
        other => panic!("expected Syntax, got {other:?}"),
    }
}

#[test]
fn comments_and_blank_lines_are_ignored() {
    let db = demo_db();
    let mut buf = Vec::new();
    write_database(&mut buf, &db).unwrap();
    let mut text = String::from_utf8(buf).unwrap();
    text = text.replace("ctxpref v1\n", "ctxpref v1\n\n# a comment\n\n");
    let restored = read_database(text.as_bytes()).unwrap();
    assert_eq!(restored.profile().len(), db.profile().len());
}

#[test]
fn float_scores_roundtrip_exactly() {
    let env = reference_env();
    let schema = Schema::new(&[("x", AttrType::Str)]).unwrap();
    let rel = Relation::new("r", schema);
    let mut db = ContextualDb::builder()
        .env(env.clone())
        .relation(rel)
        .build()
        .unwrap();
    for (i, score) in [
        0.1,
        1.0 / 3.0,
        std::f64::consts::FRAC_1_SQRT_2,
        f64::MIN_POSITIVE,
        1.0,
    ]
    .iter()
    .enumerate()
    {
        db.insert_preference_eq(
            &format!(
                "temperature = {}",
                ["freezing", "cold", "mild", "warm", "hot"][i]
            ),
            "x",
            Value::str(&format!("v{i}")),
            *score,
        )
        .unwrap();
    }
    let mut buf = Vec::new();
    write_database(&mut buf, &db).unwrap();
    let restored = read_database(&buf[..]).unwrap();
    for (a, b) in db.profile().iter().zip(restored.profile().iter()) {
        assert_eq!(a.score().to_bits(), b.score().to_bits());
    }
}
