//! Round-tripping multi-user databases through the `ctxpref v1` format.

use ctxpref_context::ContextState;
use ctxpref_core::MultiUserDb;
use ctxpref_storage::{read_multi_user, write_multi_user, StorageError};
use ctxpref_workload::reference::{poi_env, poi_relation};
use ctxpref_workload::user_study::{all_demographics, default_profile};

fn study_db() -> MultiUserDb {
    let env = poi_env();
    let rel = poi_relation(&env, 7, 4);
    let mut db = MultiUserDb::new(env.clone(), rel, 8);
    for (i, demo) in all_demographics().into_iter().take(4).enumerate() {
        let profile = default_profile(&env, db.relation(), demo);
        db.add_user_with_profile(&format!("user{i}"), profile)
            .unwrap();
    }
    db
}

#[test]
fn multi_user_roundtrip_preserves_users_and_answers() {
    let db = study_db();
    let mut buf = Vec::new();
    write_multi_user(&mut buf, &db).unwrap();
    let restored = read_multi_user(&buf[..]).unwrap();

    assert_eq!(restored.user_count(), db.user_count());
    assert_eq!(restored.cache_capacity(), db.cache_capacity());
    assert_eq!(restored.users_sorted(), db.users_sorted());
    for user in db.users_sorted() {
        assert_eq!(
            restored.profile(user).unwrap().len(),
            db.profile(user).unwrap().len(),
            "profile size for {user}"
        );
        assert_eq!(
            restored.tree_stats(user).unwrap(),
            db.tree_stats(user).unwrap(),
            "tree stats for {user}"
        );
    }

    // Answers agree per user.
    let env = db.env().clone();
    for names in [["Plaka", "warm", "friends"], ["Ladadika", "cold", "family"]] {
        let state = ContextState::parse(&env, &names).unwrap();
        for user in db.users_sorted() {
            let a = db.query_state(user, &state).unwrap();
            let b = restored.query_state(user, &state).unwrap();
            assert_eq!(
                a.results.entries(),
                b.results.entries(),
                "{user} @ {names:?}"
            );
        }
    }
}

#[test]
fn second_multi_user_roundtrip_is_identical_text() {
    let db = study_db();
    let mut buf1 = Vec::new();
    write_multi_user(&mut buf1, &db).unwrap();
    let restored = read_multi_user(&buf1[..]).unwrap();
    let mut buf2 = Vec::new();
    write_multi_user(&mut buf2, &restored).unwrap();
    assert_eq!(
        String::from_utf8(buf1).unwrap(),
        String::from_utf8(buf2).unwrap()
    );
}

#[test]
fn malformed_multi_user_inputs_report_errors() {
    // user marker without a profile section.
    let text = "ctxpref v1\nhierarchy w\nlevels L\nv L a -\nend\n\
                relation r\nattr x str\nend\nuser alice\n";
    match read_multi_user(text.as_bytes()) {
        Err(StorageError::Syntax { message, .. }) => {
            assert!(message.contains("profile"), "{message}")
        }
        other => panic!("expected Syntax, got {other:?}"),
    }
    // Duplicate users.
    let text = "ctxpref v1\nhierarchy w\nlevels L\nv L a -\nend\n\
                relation r\nattr x str\nend\n\
                user alice\nprofile\nend\nuser alice\nprofile\nend\n";
    match read_multi_user(text.as_bytes()) {
        Err(StorageError::Model { message, .. }) => {
            assert!(message.contains("alice"), "{message}")
        }
        other => panic!("expected Model, got {other:?}"),
    }
    // Garbage after a user's profile.
    let text = "ctxpref v1\nhierarchy w\nlevels L\nv L a -\nend\n\
                relation r\nattr x str\nend\n\
                user alice\nprofile\nend\nwat\n";
    match read_multi_user(text.as_bytes()) {
        Err(StorageError::Syntax { message, .. }) => {
            assert!(message.contains("user"), "{message}")
        }
        other => panic!("expected Syntax, got {other:?}"),
    }
    // An empty multi-user database (no users) round-trips too.
    let text = "ctxpref v1\nhierarchy w\nlevels L\nv L a -\nend\n\
                relation r\nattr x str\nend\n";
    let db = read_multi_user(text.as_bytes()).unwrap();
    assert_eq!(db.user_count(), 0);
}
