//! Property-based round-tripping of generated workloads through the
//! `ctxpref v1` format.

use ctxpref_profile::Profile;
use ctxpref_relation::{AttrType, Relation, Schema, Value};
use ctxpref_storage::{read_profile, read_relation, write_profile, write_relation};
use ctxpref_workload::synthetic::{SyntheticSpec, ValueDist};
use proptest::prelude::*;

fn value_strategy(ty: AttrType) -> BoxedStrategy<Value> {
    match ty {
        AttrType::Int => any::<i64>().prop_map(Value::Int).boxed(),
        AttrType::Float => any::<f64>()
            .prop_filter("NaN breaks equality in test comparisons only", |f| {
                !f.is_nan()
            })
            .prop_map(Value::Float)
            .boxed(),
        AttrType::Str => ".{0,20}".prop_map(|s| Value::str(&s)).boxed(),
        AttrType::Bool => any::<bool>().prop_map(Value::Bool).boxed(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Relations with arbitrary values round-trip exactly.
    #[test]
    fn relation_roundtrip(
        name in ".{1,20}",
        rows in proptest::collection::vec(
            (any::<i64>(), any::<bool>(), ".{0,24}", any::<f64>()),
            0..20,
        ),
    ) {
        let schema = Schema::new(&[
            ("k", AttrType::Int),
            ("flag", AttrType::Bool),
            ("label", AttrType::Str),
            ("weight", AttrType::Float),
        ])
        .unwrap();
        let mut rel = Relation::new(&name, schema);
        for (k, flag, label, weight) in rows {
            let weight = if weight.is_nan() { 0.0 } else { weight };
            rel.insert(vec![k.into(), flag.into(), Value::str(&label), weight.into()]).unwrap();
        }
        let mut buf = Vec::new();
        write_relation(&mut buf, &rel).unwrap();
        let restored = read_relation(&buf[..]).unwrap();
        prop_assert_eq!(restored.name(), rel.name());
        prop_assert_eq!(restored.tuples(), rel.tuples());
        let _ = value_strategy(AttrType::Int); // keep helper exercised
    }

    /// Synthetic profiles of every shape round-trip preference by
    /// preference.
    #[test]
    fn profile_roundtrip(seed in 0u64..500, n in 1usize..80) {
        let spec = SyntheticSpec {
            domains: vec![vec![8, 4], vec![6], vec![10, 5, 2]],
            dists: vec![ValueDist::Zipf(1.0); 3],
            num_prefs: n,
            clause_values: 6,
            seed,
        };
        let env = spec.build_env();
        let profile: Profile = spec.build_profile(&env);
        let schema = Schema::new(&[("a1", AttrType::Str)]).unwrap();
        let rel = Relation::new("r", schema);
        let mut buf = Vec::new();
        write_profile(&mut buf, &profile, &rel).unwrap();
        let restored = read_profile(&buf[..], &env, &rel).unwrap();
        prop_assert_eq!(restored.len(), profile.len());
        for (a, b) in profile.iter().zip(restored.iter()) {
            prop_assert_eq!(a, b);
        }
    }
}
