//! Token escaping: fields are space-separated, so spaces and control
//! characters inside names/values are escaped with a `\`-prefix scheme.

/// Escape a string into a single whitespace-free token. The empty
/// string encodes as `\e` so tokens are never empty. All Unicode
/// whitespace is escaped (`split_whitespace` splits on any character
/// with the `White_Space` property, not just ASCII).
pub fn escape(s: &str) -> String {
    if s.is_empty() {
        return r"\e".to_string();
    }
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str(r"\\"),
            ' ' => out.push_str(r"\s"),
            '\t' => out.push_str(r"\t"),
            '\n' => out.push_str(r"\n"),
            '\r' => out.push_str(r"\r"),
            c if c.is_whitespace() => {
                out.push_str(&format!(r"\u{{{:x}}}", c as u32));
            }
            _ => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape`]. Returns `None` on a dangling or unknown
/// escape sequence.
pub fn unescape(s: &str) -> Option<String> {
    if s == r"\e" {
        return Some(String::new());
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            's' => out.push(' '),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            'u' => {
                if chars.next()? != '{' {
                    return None;
                }
                let mut hex = String::new();
                loop {
                    match chars.next()? {
                        '}' => break,
                        c => hex.push(c),
                    }
                }
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basics() {
        assert_eq!(escape("Plaka"), "Plaka");
        assert_eq!(escape("Ano Poli"), r"Ano\sPoli");
        assert_eq!(escape(""), r"\e");
        assert_eq!(unescape(r"Ano\sPoli").as_deref(), Some("Ano Poli"));
        assert_eq!(unescape(r"\e").as_deref(), Some(""));
        assert_eq!(unescape(r"bad\x"), None);
        assert_eq!(unescape("trailing\\"), None);
    }

    proptest! {
        #[test]
        fn roundtrip(s in ".*") {
            let e = escape(&s);
            prop_assert!(!e.chars().any(char::is_whitespace), "escaped token contains whitespace");
            prop_assert!(!e.is_empty());
            let back = unescape(&e);
            prop_assert_eq!(back.as_deref(), Some(s.as_str()));
        }
    }
}
