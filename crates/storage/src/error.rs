use std::error::Error;
use std::fmt;

/// Errors of the persistence layer.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// Malformed input at a 1-based line number.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The input parsed but violates a model invariant (bad hierarchy,
    /// conflicting preference, type mismatch, …).
    Model {
        /// 1-based line number.
        line: usize,
        /// The violated invariant.
        message: String,
    },
    /// Wrong or missing format header.
    BadHeader(String),
    /// The file body does not match the checksum recorded in its header
    /// (truncated or bit-rotted file).
    Corrupt {
        /// Checksum recorded in the header.
        expected: String,
        /// Checksum computed over the body as read.
        actual: String,
    },
}

impl StorageError {
    pub(crate) fn syntax(line: usize, message: impl Into<String>) -> Self {
        Self::Syntax {
            line,
            message: message.into(),
        }
    }

    pub(crate) fn model(line: usize, message: impl fmt::Display) -> Self {
        Self::Model {
            line,
            message: message.to_string(),
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io error: {e}"),
            Self::Syntax { line, message } => write!(f, "syntax error at line {line}: {message}"),
            Self::Model { line, message } => {
                write!(f, "invalid content at line {line}: {message}")
            }
            Self::BadHeader(h) => write!(f, "unsupported format header {h:?}"),
            Self::Corrupt { expected, actual } => write!(
                f,
                "corrupt file: body checksum {actual} does not match recorded {expected}"
            ),
        }
    }
}

impl Error for StorageError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}
