//! Deserialization: `ctxpref v1` text → logical components.

use std::io::BufRead;

use ctxpref_context::{ContextDescriptor, ContextEnvironment, ParameterDescriptor};
use ctxpref_core::ContextualDb;
use ctxpref_hierarchy::{Hierarchy, HierarchyBuilder};
use ctxpref_profile::{AttributeClause, ContextualPreference, ParamOrder, Profile};
use ctxpref_relation::{AttrType, CompareOp, Relation, Schema, Value};

use crate::escape::unescape;
use crate::{StorageError, HEADER};

/// Numbered, non-empty, non-comment lines.
struct Lines<I> {
    inner: I,
    line: usize,
    peeked: Option<(usize, String)>,
}

impl<I: Iterator<Item = std::io::Result<String>>> Lines<I> {
    fn new(inner: I) -> Self {
        Self {
            inner,
            line: 0,
            peeked: None,
        }
    }

    fn next_line(&mut self) -> Result<Option<(usize, String)>, StorageError> {
        if let Some(p) = self.peeked.take() {
            return Ok(Some(p));
        }
        loop {
            let Some(raw) = self.inner.next() else {
                return Ok(None);
            };
            self.line += 1;
            let raw = raw?;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            return Ok(Some((self.line, trimmed.to_string())));
        }
    }

    fn push_back(&mut self, item: (usize, String)) {
        self.peeked = Some(item);
    }
}

/// Consume the optional `checksum <hex>` line the file-level save
/// functions write after the header. Streaming readers skip it — the
/// checksum covers raw bytes, so only [`crate::load_database`] /
/// [`crate::load_multi_user`] (which see the whole file) verify it.
fn skip_checksum_line<I: Iterator<Item = std::io::Result<String>>>(
    lines: &mut Lines<I>,
) -> Result<(), StorageError> {
    if let Some((line, text)) = lines.next_line()? {
        if !text.starts_with("checksum ") {
            lines.push_back((line, text));
        }
    }
    Ok(())
}

fn untoken(line: usize, tok: &str) -> Result<String, StorageError> {
    unescape(tok).ok_or_else(|| StorageError::syntax(line, format!("bad escape in {tok:?}")))
}

fn parse_value(line: usize, tok: &str) -> Result<Value, StorageError> {
    let (tag, body) = tok
        .split_once(':')
        .ok_or_else(|| StorageError::syntax(line, format!("expected typed value, got {tok:?}")))?;
    match tag {
        "i" => body
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| StorageError::syntax(line, format!("bad int {body:?}"))),
        "f" => body
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| StorageError::syntax(line, format!("bad float {body:?}"))),
        "s" => Ok(Value::Str(untoken(line, body)?.into())),
        "b" => match body {
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            _ => Err(StorageError::syntax(line, format!("bad bool {body:?}"))),
        },
        _ => Err(StorageError::syntax(
            line,
            format!("unknown value tag {tag:?}"),
        )),
    }
}

fn parse_op(line: usize, tok: &str) -> Result<CompareOp, StorageError> {
    Ok(match tok {
        "eq" => CompareOp::Eq,
        "ne" => CompareOp::Ne,
        "lt" => CompareOp::Lt,
        "le" => CompareOp::Le,
        "gt" => CompareOp::Gt,
        "ge" => CompareOp::Ge,
        _ => {
            return Err(StorageError::syntax(
                line,
                format!("unknown operator {tok:?}"),
            ))
        }
    })
}

fn parse_type(line: usize, tok: &str) -> Result<AttrType, StorageError> {
    Ok(match tok {
        "int" => AttrType::Int,
        "float" => AttrType::Float,
        "str" => AttrType::Str,
        "bool" => AttrType::Bool,
        _ => return Err(StorageError::syntax(line, format!("unknown type {tok:?}"))),
    })
}

/// Read one `hierarchy … end` section; the `hierarchy <name>` line must
/// already have been consumed and is passed via `name`.
fn read_hierarchy_body<I: Iterator<Item = std::io::Result<String>>>(
    lines: &mut Lines<I>,
    header_line: usize,
    name: &str,
) -> Result<Hierarchy, StorageError> {
    let Some((lvl_line, levels_line)) = lines.next_line()? else {
        return Err(StorageError::syntax(
            header_line,
            "unterminated hierarchy section",
        ));
    };
    let mut toks = levels_line.split_whitespace();
    if toks.next() != Some("levels") {
        return Err(StorageError::syntax(lvl_line, "expected `levels …`"));
    }
    let level_names: Vec<String> = toks
        .map(|t| untoken(lvl_line, t))
        .collect::<Result<_, _>>()?;
    let refs: Vec<&str> = level_names.iter().map(String::as_str).collect();
    let mut b = HierarchyBuilder::new(name, &refs);

    loop {
        let Some((line, text)) = lines.next_line()? else {
            return Err(StorageError::syntax(
                header_line,
                "unterminated hierarchy section",
            ));
        };
        if text == "end" {
            break;
        }
        let toks: Vec<&str> = text.split_whitespace().collect();
        match toks.as_slice() {
            ["v", level, value, parent] => {
                let level = untoken(line, level)?;
                let value = untoken(line, value)?;
                let parent = if *parent == "-" {
                    None
                } else {
                    Some(untoken(line, parent)?)
                };
                b.add(&level, &value, parent.as_deref())
                    .map_err(|e| StorageError::model(line, e))?;
            }
            _ => {
                return Err(StorageError::syntax(
                    line,
                    "expected `v <level> <value> <parent|->`",
                ))
            }
        }
    }
    b.build().map_err(|e| StorageError::model(header_line, e))
}

/// Read one standalone hierarchy (starting at its `hierarchy` line).
pub fn read_hierarchy(r: impl BufRead) -> Result<Hierarchy, StorageError> {
    let mut lines = Lines::new(r.lines());
    let Some((line, text)) = lines.next_line()? else {
        return Err(StorageError::syntax(0, "empty input"));
    };
    let name = text
        .strip_prefix("hierarchy ")
        .ok_or_else(|| StorageError::syntax(line, "expected `hierarchy <name>`"))?;
    let name = untoken(line, name.trim())?;
    read_hierarchy_body(&mut lines, line, &name)
}

fn read_relation_body<I: Iterator<Item = std::io::Result<String>>>(
    lines: &mut Lines<I>,
    header_line: usize,
    name: &str,
) -> Result<Relation, StorageError> {
    let mut attrs: Vec<(String, AttrType)> = Vec::new();
    let mut rel: Option<Relation> = None;
    loop {
        let Some((line, text)) = lines.next_line()? else {
            return Err(StorageError::syntax(
                header_line,
                "unterminated relation section",
            ));
        };
        if text == "end" {
            break;
        }
        let toks: Vec<&str> = text.split_whitespace().collect();
        match toks.as_slice() {
            ["attr", aname, ty] => {
                if rel.is_some() {
                    return Err(StorageError::syntax(line, "attr after first tuple"));
                }
                attrs.push((untoken(line, aname)?, parse_type(line, ty)?));
            }
            ["t", rest @ ..] => {
                let r = match rel.as_mut() {
                    Some(r) => r,
                    None => {
                        let borrowed: Vec<(&str, AttrType)> =
                            attrs.iter().map(|(n, t)| (n.as_str(), *t)).collect();
                        let schema =
                            Schema::new(&borrowed).map_err(|e| StorageError::model(line, e))?;
                        rel.insert(Relation::new(name, schema))
                    }
                };
                let values: Vec<Value> = rest
                    .iter()
                    .map(|t| parse_value(line, t))
                    .collect::<Result<_, _>>()?;
                r.insert(values).map_err(|e| StorageError::model(line, e))?;
            }
            _ => return Err(StorageError::syntax(line, "expected `attr …` or `t …`")),
        }
    }
    rel.map(Ok).unwrap_or_else(|| {
        let borrowed: Vec<(&str, AttrType)> = attrs.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        Schema::new(&borrowed)
            .map(|s| Relation::new(name, s))
            .map_err(|e| StorageError::model(header_line, e))
    })
}

/// Read one standalone relation (starting at its `relation` line).
pub fn read_relation(r: impl BufRead) -> Result<Relation, StorageError> {
    let mut lines = Lines::new(r.lines());
    let Some((line, text)) = lines.next_line()? else {
        return Err(StorageError::syntax(0, "empty input"));
    };
    let name = text
        .strip_prefix("relation ")
        .ok_or_else(|| StorageError::syntax(line, "expected `relation <name>`"))?;
    let name = untoken(line, name.trim())?;
    read_relation_body(&mut lines, line, &name)
}

fn parse_pref(
    line: usize,
    toks: &[&str],
    env: &ContextEnvironment,
    rel: &Relation,
) -> Result<ContextualPreference, StorageError> {
    // pref <score> <attr> <op> <value> (<param> (eq v | in n v… | range a b))*
    if toks.len() < 4 {
        return Err(StorageError::syntax(line, "truncated pref line"));
    }
    let score: f64 = toks[0]
        .parse()
        .map_err(|_| StorageError::syntax(line, format!("bad score {:?}", toks[0])))?;
    let attr_name = untoken(line, toks[1])?;
    let attr = rel
        .schema()
        .require_attr(&attr_name)
        .map_err(|e| StorageError::model(line, e))?;
    let op = parse_op(line, toks[2])?;
    let value = parse_value(line, toks[3])?;

    let mut cod = ContextDescriptor::empty();
    let mut i = 4;
    while i < toks.len() {
        let pname = untoken(line, toks[i])?;
        let p = env
            .require_param(&pname)
            .map_err(|e| StorageError::model(line, e))?;
        let h = env.hierarchy(p);
        let lookup = |t: &str| -> Result<ctxpref_context::CtxValue, StorageError> {
            let n = untoken(line, t)?;
            h.lookup(&n).ok_or_else(|| {
                StorageError::model(line, format!("unknown value {n:?} for {pname:?}"))
            })
        };
        i += 1;
        let kind = toks
            .get(i)
            .ok_or_else(|| StorageError::syntax(line, "truncated clause"))?;
        i += 1;
        let pd = match *kind {
            "eq" => {
                let v = lookup(
                    toks.get(i)
                        .ok_or_else(|| StorageError::syntax(line, "missing value"))?,
                )?;
                i += 1;
                ParameterDescriptor::Eq(v)
            }
            "in" => {
                let n: usize = toks
                    .get(i)
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| StorageError::syntax(line, "bad set length"))?;
                i += 1;
                let mut vs = Vec::with_capacity(n);
                for _ in 0..n {
                    vs.push(lookup(
                        toks.get(i)
                            .ok_or_else(|| StorageError::syntax(line, "truncated set"))?,
                    )?);
                    i += 1;
                }
                ParameterDescriptor::In(vs)
            }
            "range" => {
                let a = lookup(
                    toks.get(i)
                        .ok_or_else(|| StorageError::syntax(line, "missing range lo"))?,
                )?;
                let b = lookup(
                    toks.get(i + 1)
                        .ok_or_else(|| StorageError::syntax(line, "missing range hi"))?,
                )?;
                i += 2;
                ParameterDescriptor::Range(a, b)
            }
            other => {
                return Err(StorageError::syntax(
                    line,
                    format!("unknown clause kind {other:?}"),
                ))
            }
        };
        cod = cod.with(p, pd);
    }
    ContextualPreference::new(cod, AttributeClause::new(attr, op, value), score)
        .map_err(|e| StorageError::model(line, e))
}

/// Parse the token list of one serialized preference — a `pref` line
/// minus the leading keyword — against an existing environment and
/// relation. Inverse of [`crate::pref_tokens`]; the write-ahead log
/// reuses this to decode mutation payloads.
pub fn parse_pref_tokens(
    tokens: &[&str],
    env: &ContextEnvironment,
    rel: &Relation,
) -> Result<ContextualPreference, StorageError> {
    parse_pref(0, tokens, env, rel)
}

/// Read one standalone profile section (starting at its `profile` line)
/// against an existing environment and relation.
pub fn read_profile(
    r: impl BufRead,
    env: &ContextEnvironment,
    rel: &Relation,
) -> Result<Profile, StorageError> {
    let mut lines = Lines::new(r.lines());
    let Some((line, text)) = lines.next_line()? else {
        return Err(StorageError::syntax(0, "empty input"));
    };
    if text != "profile" {
        return Err(StorageError::syntax(line, "expected `profile`"));
    }
    read_profile_body(&mut lines, line, env, rel)
}

fn read_profile_body<I: Iterator<Item = std::io::Result<String>>>(
    lines: &mut Lines<I>,
    header_line: usize,
    env: &ContextEnvironment,
    rel: &Relation,
) -> Result<Profile, StorageError> {
    let mut profile = Profile::new(env.clone());
    loop {
        let Some((line, text)) = lines.next_line()? else {
            return Err(StorageError::syntax(
                header_line,
                "unterminated profile section",
            ));
        };
        if text == "end" {
            break;
        }
        let toks: Vec<&str> = text.split_whitespace().collect();
        match toks.split_first() {
            Some((&"pref", rest)) => {
                let pref = parse_pref(line, rest, env, rel)?;
                // `insert` both checks Definition-6 conflicts and
                // detects exact duplicates. Duplicates are legal in a
                // logical profile (users may restate preferences), so a
                // faithful reader preserves them.
                match profile.insert(pref.clone()) {
                    Ok(true) => {}
                    Ok(false) => profile.insert_unchecked(pref),
                    Err(e) => return Err(StorageError::model(line, e)),
                }
            }
            _ => return Err(StorageError::syntax(line, "expected `pref …`")),
        }
    }
    Ok(profile)
}

/// Read a multi-user database written by [`crate::write_multi_user`].
pub fn read_multi_user(r: impl BufRead) -> Result<ctxpref_core::MultiUserDb, StorageError> {
    let mut lines = Lines::new(r.lines());
    match lines.next_line()? {
        Some((_, h)) if h == HEADER => {}
        Some((_, h)) => return Err(StorageError::BadHeader(h)),
        None => return Err(StorageError::BadHeader(String::new())),
    }
    skip_checksum_line(&mut lines)?;
    let mut hierarchies: Vec<Hierarchy> = Vec::new();
    let mut relation: Option<Relation> = None;
    let mut cache = 0usize;
    let mut pending_user: Option<(usize, String)> = None;
    while let Some((line, text)) = lines.next_line()? {
        let toks: Vec<&str> = text.split_whitespace().collect();
        match toks.split_first() {
            Some((&"hierarchy", [name])) => {
                let name = untoken(line, name)?;
                hierarchies.push(read_hierarchy_body(&mut lines, line, &name)?);
            }
            Some((&"relation", [name])) => {
                let name = untoken(line, name)?;
                relation = Some(read_relation_body(&mut lines, line, &name)?);
            }
            Some((&"cache", [n])) => {
                cache = n
                    .parse()
                    .map_err(|_| StorageError::syntax(line, "bad cache capacity"))?;
            }
            Some((&"user", [name])) => {
                pending_user = Some((line, untoken(line, name)?));
                break;
            }
            _ => {
                return Err(StorageError::syntax(
                    line,
                    format!("unexpected line {text:?}"),
                ))
            }
        }
    }
    let env =
        ContextEnvironment::new(hierarchies).map_err(|e| StorageError::model(lines.line, e))?;
    let relation =
        relation.ok_or_else(|| StorageError::syntax(lines.line, "missing relation section"))?;
    let mut db = ctxpref_core::MultiUserDb::new(env.clone(), relation, cache);

    while let Some((uline, user)) = pending_user.take() {
        // Expect a `profile` header then the section body.
        let Some((pline, ptext)) = lines.next_line()? else {
            return Err(StorageError::syntax(
                uline,
                "user without a profile section",
            ));
        };
        if ptext != "profile" {
            return Err(StorageError::syntax(
                pline,
                "expected `profile` after `user`",
            ));
        }
        let profile = read_profile_body(&mut lines, pline, &env, db.relation())?;
        db.add_user_with_profile(&user, profile)
            .map_err(|e| StorageError::model(uline, e))?;
        // Next `user` marker or EOF.
        match lines.next_line()? {
            None => break,
            Some((line, text)) => {
                let toks: Vec<&str> = text.split_whitespace().collect();
                match toks.split_first() {
                    Some((&"user", [name])) => {
                        pending_user = Some((line, untoken(line, name)?));
                    }
                    _ => {
                        return Err(StorageError::syntax(
                            line,
                            format!("expected `user …` or end of file, got {text:?}"),
                        ))
                    }
                }
            }
        }
    }
    Ok(db)
}

/// Read a whole database written by [`crate::write_database`].
pub fn read_database(r: impl BufRead) -> Result<ContextualDb, StorageError> {
    let mut lines = Lines::new(r.lines());
    match lines.next_line()? {
        Some((_, h)) if h == HEADER => {}
        Some((_, h)) => return Err(StorageError::BadHeader(h)),
        None => return Err(StorageError::BadHeader(String::new())),
    }
    skip_checksum_line(&mut lines)?;

    let mut hierarchies: Vec<Hierarchy> = Vec::new();
    let mut relation: Option<Relation> = None;
    let mut order_names: Option<(usize, Vec<String>)> = None;
    let mut cache = 0usize;
    let profile_line;

    // First pass: sections up to (and including) `profile`, which needs
    // the environment, so it is parsed after the env is assembled.
    loop {
        let Some((line, text)) = lines.next_line()? else {
            return Err(StorageError::syntax(lines.line, "missing profile section"));
        };
        let toks: Vec<&str> = text.split_whitespace().collect();
        match toks.split_first() {
            Some((&"hierarchy", [name])) => {
                let name = untoken(line, name)?;
                hierarchies.push(read_hierarchy_body(&mut lines, line, &name)?);
            }
            Some((&"relation", [name])) => {
                let name = untoken(line, name)?;
                relation = Some(read_relation_body(&mut lines, line, &name)?);
            }
            Some((&"order", names)) => {
                order_names = Some((
                    line,
                    names
                        .iter()
                        .map(|t| untoken(line, t))
                        .collect::<Result<_, _>>()?,
                ));
            }
            Some((&"cache", [n])) => {
                cache = n
                    .parse()
                    .map_err(|_| StorageError::syntax(line, "bad cache capacity"))?;
            }
            Some((&"profile", [])) => {
                profile_line = line;
                break;
            }
            _ => {
                return Err(StorageError::syntax(
                    line,
                    format!("unexpected line {text:?}"),
                ))
            }
        }
    }
    let env =
        ContextEnvironment::new(hierarchies).map_err(|e| StorageError::model(lines.line, e))?;
    let relation =
        relation.ok_or_else(|| StorageError::syntax(lines.line, "missing relation section"))?;

    let profile = read_profile_body(&mut lines, profile_line, &env, &relation)?;

    // Trailing garbage?
    if let Some((line, text)) = lines.next_line()? {
        lines.push_back((line, text.clone()));
        return Err(StorageError::syntax(
            line,
            format!("trailing content {text:?}"),
        ));
    }

    let mut builder = ContextualDb::builder().env(env.clone()).relation(relation);
    if let Some((line, names)) = order_names {
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let order = ParamOrder::by_names(&env, &refs).map_err(|e| StorageError::model(line, e))?;
        builder = builder.order(order);
    }
    if cache > 0 {
        builder = builder.cache_capacity(cache);
    }
    let mut db = builder.build().map_err(|e| StorageError::model(0, e))?;
    for pref in profile.iter() {
        db.insert_preference(pref.clone())
            .map_err(|e| StorageError::model(0, e))?;
    }
    Ok(db)
}
