//! Serialization: logical components → `ctxpref v1` text.

use std::io::Write;

use ctxpref_core::ContextualDb;
use ctxpref_hierarchy::{Hierarchy, LevelId};
use ctxpref_profile::Profile;
use ctxpref_relation::{AttrType, CompareOp, Relation, Value};

use crate::escape::escape;
use crate::{StorageError, HEADER};

fn value_token(v: &Value) -> String {
    match v {
        Value::Int(i) => format!("i:{i}"),
        // `{:?}` prints the shortest representation that round-trips.
        Value::Float(f) => format!("f:{f:?}"),
        Value::Str(s) => format!("s:{}", escape(s)),
        Value::Bool(b) => format!("b:{b}"),
    }
}

fn op_token(op: CompareOp) -> &'static str {
    match op {
        CompareOp::Eq => "eq",
        CompareOp::Ne => "ne",
        CompareOp::Lt => "lt",
        CompareOp::Le => "le",
        CompareOp::Gt => "gt",
        CompareOp::Ge => "ge",
    }
}

fn type_token(t: AttrType) -> &'static str {
    match t {
        AttrType::Int => "int",
        AttrType::Float => "float",
        AttrType::Str => "str",
        AttrType::Bool => "bool",
    }
}

/// Write one hierarchy as a `hierarchy … end` section.
pub fn write_hierarchy(w: &mut impl Write, h: &Hierarchy) -> Result<(), StorageError> {
    writeln!(w, "hierarchy {}", escape(h.name()))?;
    let user_levels: Vec<String> = (0..h.level_count() - 1)
        .map(|l| escape(h.level_name(LevelId(l as u8))))
        .collect();
    writeln!(w, "levels {}", user_levels.join(" "))?;
    // Top-down so parents exist before children in a streaming reader
    // (the builder tolerates any order, but top-down reads naturally).
    for lvl in (0..h.level_count() - 1).rev() {
        let level = LevelId(lvl as u8);
        for &v in h.domain(level) {
            let parent = match h.parent(v) {
                Some(p) if p != h.all_value() => escape(h.value_name(p)),
                _ => "-".to_string(),
            };
            writeln!(
                w,
                "v {} {} {parent}",
                escape(h.level_name(level)),
                escape(h.value_name(v))
            )?;
        }
    }
    writeln!(w, "end")?;
    Ok(())
}

/// Write a relation as a `relation … end` section.
pub fn write_relation(w: &mut impl Write, rel: &Relation) -> Result<(), StorageError> {
    writeln!(w, "relation {}", escape(rel.name()))?;
    for (_, name, ty) in rel.schema().iter() {
        writeln!(w, "attr {} {}", escape(name), type_token(ty))?;
    }
    for t in rel.tuples() {
        let fields: Vec<String> = t.values().iter().map(value_token).collect();
        writeln!(w, "t {}", fields.join(" "))?;
    }
    writeln!(w, "end")?;
    Ok(())
}

/// Serialize one preference as the token list of a `pref` line (minus
/// the leading keyword): `<score> <attr> <op> <value>` followed by the
/// descriptor's structural clauses (`eq` / `in` / `range` with value
/// names, so arbitrary names round-trip without quoting rules).
/// Inverse of [`crate::parse_pref_tokens`]; the write-ahead log reuses
/// this to encode mutation payloads.
pub fn pref_tokens(
    pref: &ctxpref_profile::ContextualPreference,
    env: &ctxpref_context::ContextEnvironment,
    rel: &Relation,
) -> String {
    let clause = pref.clause();
    let mut line = format!(
        "{:?} {} {} {}",
        pref.score(),
        escape(rel.schema().attr_name(clause.attr)),
        op_token(clause.op),
        value_token(&clause.value),
    );
    for (p, pd) in pref.descriptor().clauses() {
        let h = env.hierarchy(p);
        line.push_str(&format!(" {}", escape(h.name())));
        match pd {
            ctxpref_context::ParameterDescriptor::Eq(v) => {
                line.push_str(&format!(" eq {}", escape(h.value_name(*v))));
            }
            ctxpref_context::ParameterDescriptor::In(vs) => {
                line.push_str(&format!(" in {}", vs.len()));
                for v in vs {
                    line.push_str(&format!(" {}", escape(h.value_name(*v))));
                }
            }
            ctxpref_context::ParameterDescriptor::Range(a, b) => {
                line.push_str(&format!(
                    " range {} {}",
                    escape(h.value_name(*a)),
                    escape(h.value_name(*b))
                ));
            }
        }
    }
    line
}

/// Write a profile as a `profile … end` section. Descriptor clauses are
/// serialized structurally (`eq` / `in` / `range` with value names) so
/// arbitrary names round-trip without quoting rules.
pub fn write_profile(
    w: &mut impl Write,
    profile: &Profile,
    rel: &Relation,
) -> Result<(), StorageError> {
    let env = profile.env();
    writeln!(w, "profile")?;
    for pref in profile.iter() {
        writeln!(w, "pref {}", pref_tokens(pref, env, rel))?;
    }
    writeln!(w, "end")?;
    Ok(())
}

/// Write a multi-user database: header, hierarchies, relation, cache
/// setting, then one `user <name>` marker + profile section per user
/// (sorted by name for deterministic output).
pub fn write_multi_user(
    w: &mut impl Write,
    db: &ctxpref_core::MultiUserDb,
) -> Result<(), StorageError> {
    writeln!(w, "{HEADER}")?;
    write_multi_user_body(w, db)
}

/// Everything after the header line ([`crate::save_multi_user`] inserts
/// a checksum line between header and body).
pub(crate) fn write_multi_user_body(
    w: &mut impl Write,
    db: &ctxpref_core::MultiUserDb,
) -> Result<(), StorageError> {
    for (_, h) in db.env().iter() {
        write_hierarchy(w, h)?;
    }
    write_relation(w, db.relation())?;
    if db.cache_capacity() > 0 {
        writeln!(w, "cache {}", db.cache_capacity())?;
    }
    for name in db.users_sorted() {
        writeln!(w, "user {}", escape(name))?;
        let profile = db.profile(name).expect("users_sorted lists existing users");
        write_profile(w, profile, db.relation())?;
    }
    Ok(())
}

/// Write a whole database: header, hierarchies, relation, tree order,
/// cache setting, profile.
pub fn write_database(w: &mut impl Write, db: &ContextualDb) -> Result<(), StorageError> {
    writeln!(w, "{HEADER}")?;
    write_database_body(w, db)
}

/// Everything after the header line ([`crate::save_database`] inserts a
/// checksum line between header and body).
pub(crate) fn write_database_body(
    w: &mut impl Write,
    db: &ContextualDb,
) -> Result<(), StorageError> {
    for (_, h) in db.env().iter() {
        write_hierarchy(w, h)?;
    }
    write_relation(w, db.relation())?;
    let order: Vec<String> = db
        .tree()
        .order()
        .params()
        .iter()
        .map(|&p| escape(db.env().hierarchy(p).name()))
        .collect();
    writeln!(w, "order {}", order.join(" "))?;
    if let Some(stats) = db.cache_stats() {
        let _ = stats;
        writeln!(w, "cache {}", db.cache_capacity())?;
    }
    write_profile(w, db.profile(), db.relation())?;
    Ok(())
}
