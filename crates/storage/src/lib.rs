#![warn(missing_docs)]
//! Persistence for contextual preference databases.
//!
//! The paper evaluates an in-memory system; any deployment of it needs
//! its profiles to survive restarts. This crate provides a versioned,
//! line-oriented text format (`ctxpref v1`) covering every logical
//! component — hierarchies, context environments, relations, profiles,
//! and whole [`ctxpref_core::ContextualDb`] instances — with exact
//! round-tripping (value names, θ-operators, float scores, parameter
//! orders, cache settings).
//!
//! Design notes:
//!
//! * **Logical, not physical**: the profile tree and the query cache are
//!   derived structures; the format stores the profile and rebuilds the
//!   indexes on load (conflict detection re-runs as an integrity check).
//! * **Text, token-escaped**: every name/value is escaped
//!   ([`escape`]/[`unescape`]) so arbitrary strings — spaces, tabs,
//!   newlines — round-trip; the format stays diffable and greppable.
//! * **Self-describing**: the header carries a version; unknown versions
//!   are rejected up front.
//!
//! ```
//! use ctxpref_storage::{read_database, write_database};
//! # use ctxpref_core::ContextualDb;
//! # use ctxpref_context::ContextEnvironment;
//! # use ctxpref_hierarchy::Hierarchy;
//! # use ctxpref_relation::{AttrType, Relation, Schema};
//! # let env = ContextEnvironment::new(vec![
//! #     Hierarchy::flat("weather", &["cold", "warm"]).unwrap(),
//! # ]).unwrap();
//! # let schema = Schema::new(&[("name", AttrType::Str)]).unwrap();
//! # let mut rel = Relation::new("poi", schema);
//! # rel.insert(vec!["Acropolis".into()]).unwrap();
//! # let mut db = ContextualDb::builder().env(env).relation(rel).build().unwrap();
//! # db.insert_preference_eq("weather = warm", "name", "Acropolis".into(), 0.8).unwrap();
//! let mut buf = Vec::new();
//! write_database(&mut buf, &db).unwrap();
//! let restored = read_database(&buf[..]).unwrap();
//! assert_eq!(restored.profile().len(), db.profile().len());
//! ```

mod error;
mod escape;
mod reader;
mod writer;

pub use error::StorageError;
pub use escape::{escape, unescape};
pub use reader::{read_database, read_hierarchy, read_multi_user, read_profile, read_relation};
pub use writer::{write_database, write_hierarchy, write_multi_user, write_profile, write_relation};

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

use ctxpref_core::ContextualDb;

/// Magic header of the format.
pub const HEADER: &str = "ctxpref v1";

/// Save a database to a file.
pub fn save_database(path: impl AsRef<Path>, db: &ContextualDb) -> Result<(), StorageError> {
    let mut w = BufWriter::new(File::create(path)?);
    write_database(&mut w, db)
}

/// Load a database from a file.
pub fn load_database(path: impl AsRef<Path>) -> Result<ContextualDb, StorageError> {
    read_database(BufReader::new(File::open(path)?))
}
