#![warn(missing_docs)]
//! Persistence for contextual preference databases.
//!
//! The paper evaluates an in-memory system; any deployment of it needs
//! its profiles to survive restarts. This crate provides a versioned,
//! line-oriented text format (`ctxpref v1`) covering every logical
//! component — hierarchies, context environments, relations, profiles,
//! and whole [`ctxpref_core::ContextualDb`] instances — with exact
//! round-tripping (value names, θ-operators, float scores, parameter
//! orders, cache settings).
//!
//! Design notes:
//!
//! * **Logical, not physical**: the profile tree and the query cache are
//!   derived structures; the format stores the profile and rebuilds the
//!   indexes on load (conflict detection re-runs as an integrity check).
//! * **Text, token-escaped**: every name/value is escaped
//!   ([`escape`]/[`unescape`]) so arbitrary strings — spaces, tabs,
//!   newlines — round-trip; the format stays diffable and greppable.
//! * **Self-describing**: the header carries a version; unknown versions
//!   are rejected up front.
//!
//! ```
//! use ctxpref_storage::{read_database, write_database};
//! # use ctxpref_core::ContextualDb;
//! # use ctxpref_context::ContextEnvironment;
//! # use ctxpref_hierarchy::Hierarchy;
//! # use ctxpref_relation::{AttrType, Relation, Schema};
//! # let env = ContextEnvironment::new(vec![
//! #     Hierarchy::flat("weather", &["cold", "warm"]).unwrap(),
//! # ]).unwrap();
//! # let schema = Schema::new(&[("name", AttrType::Str)]).unwrap();
//! # let mut rel = Relation::new("poi", schema);
//! # rel.insert(vec!["Acropolis".into()]).unwrap();
//! # let mut db = ContextualDb::builder().env(env).relation(rel).build().unwrap();
//! # db.insert_preference_eq("weather = warm", "name", "Acropolis".into(), 0.8).unwrap();
//! let mut buf = Vec::new();
//! write_database(&mut buf, &db).unwrap();
//! let restored = read_database(&buf[..]).unwrap();
//! assert_eq!(restored.profile().len(), db.profile().len());
//! ```

mod error;
mod escape;
mod reader;
mod writer;

pub use error::StorageError;
pub use escape::{escape, unescape};
pub use reader::{
    parse_pref_tokens, read_database, read_hierarchy, read_multi_user, read_profile, read_relation,
};
pub use writer::{
    pref_tokens, write_database, write_hierarchy, write_multi_user, write_profile, write_relation,
};

use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use ctxpref_core::{ContextualDb, MultiUserDb};

/// Magic header of the format.
pub const HEADER: &str = "ctxpref v1";

/// FNV-1a 64 over raw bytes — the body checksum recorded in saved
/// files and in write-ahead-log record frames.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A temp path in the same directory as `path` (rename must not cross
/// filesystems), unique per call so concurrent saves cannot clobber
/// each other's in-flight temp files.
fn temp_sibling(path: &Path) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut name = path
        .file_name()
        .map(|f| f.to_os_string())
        .unwrap_or_default();
    name.push(format!(".tmp.{}.{n}", std::process::id()));
    path.with_file_name(name)
}

/// Write `header + checksum + body` to a sibling temp file, fsync it,
/// then atomically rename over `path`. A crash (or injected fault) at
/// any point leaves `path` either untouched or fully replaced — never a
/// partial file.
///
/// Fault sites: `storage.save.open`, `storage.save.write` (honours
/// truncation faults — the temp file keeps only a prefix and the save
/// fails before the rename), `storage.save.sync`, `storage.save.rename`.
fn atomic_write(path: &Path, body: &[u8]) -> Result<(), StorageError> {
    let mut payload = Vec::with_capacity(body.len() + HEADER.len() + 32);
    writeln!(payload, "{HEADER}")?;
    writeln!(payload, "checksum {:016x}", fnv1a64(body))?;
    payload.extend_from_slice(body);

    let tmp = temp_sibling(path);
    ctxpref_faults::hit_io("storage.save.open")?;
    let mut f = File::create(&tmp)?;
    let keep = ctxpref_faults::truncated_len("storage.save.write", payload.len());
    f.write_all(&payload[..keep])?;
    if keep < payload.len() {
        // Injected partial write: simulate a crash mid-save. The temp
        // file holds a prefix; the destination is untouched.
        let _ = f.sync_all();
        drop(f);
        return Err(StorageError::Io(std::io::Error::other(format!(
            "injected partial write: {keep} of {} bytes persisted",
            payload.len()
        ))));
    }
    ctxpref_faults::hit_io("storage.save.sync")?;
    f.sync_all()?;
    drop(f);
    ctxpref_faults::hit_io("storage.save.rename")?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// If the file starts with `HEADER` + a `checksum` line, verify the
/// body against it. Files without a checksum line (streamed output of
/// [`write_database`] / [`write_multi_user`], or pre-checksum files)
/// pass through unverified for backwards compatibility.
fn verify_checksum(bytes: &[u8]) -> Result<(), StorageError> {
    let Some(rest) = bytes.strip_prefix(HEADER.as_bytes()) else {
        return Ok(());
    };
    let Some(rest) = rest.strip_prefix(b"\n") else {
        return Ok(());
    };
    let Some(line_end) = rest.iter().position(|&b| b == b'\n') else {
        return Ok(());
    };
    let Ok(line) = std::str::from_utf8(&rest[..line_end]) else {
        return Ok(());
    };
    let Some(expected) = line.strip_prefix("checksum ") else {
        return Ok(());
    };
    let body = &rest[line_end + 1..];
    let actual = format!("{:016x}", fnv1a64(body));
    if expected.trim() != actual {
        return Err(StorageError::Corrupt {
            expected: expected.trim().to_string(),
            actual,
        });
    }
    Ok(())
}

fn read_file(path: &Path) -> Result<Vec<u8>, StorageError> {
    ctxpref_faults::hit_io("storage.load.open")?;
    let bytes = std::fs::read(path)?;
    ctxpref_faults::hit_io("storage.load.read")?;
    Ok(bytes)
}

/// Save a database to a file: atomic (temp file + fsync + rename) with
/// a body checksum recorded in the header and verified on load.
pub fn save_database(path: impl AsRef<Path>, db: &ContextualDb) -> Result<(), StorageError> {
    let mut body = Vec::new();
    writer::write_database_body(&mut body, db)?;
    atomic_write(path.as_ref(), &body)
}

/// Load a database from a file, verifying its checksum if present.
pub fn load_database(path: impl AsRef<Path>) -> Result<ContextualDb, StorageError> {
    let bytes = read_file(path.as_ref())?;
    verify_checksum(&bytes)?;
    read_database(&bytes[..])
}

/// Save a multi-user database to a file: atomic (temp file + fsync +
/// rename) with a body checksum recorded in the header.
pub fn save_multi_user(path: impl AsRef<Path>, db: &MultiUserDb) -> Result<(), StorageError> {
    let mut body = Vec::new();
    writer::write_multi_user_body(&mut body, db)?;
    atomic_write(path.as_ref(), &body)
}

/// Load a multi-user database from a file, verifying its checksum if
/// present.
pub fn load_multi_user(path: impl AsRef<Path>) -> Result<MultiUserDb, StorageError> {
    let bytes = read_file(path.as_ref())?;
    verify_checksum(&bytes)?;
    read_multi_user(&bytes[..])
}
