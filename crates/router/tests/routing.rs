//! Router integration: forwarding, endpoint failover, the circuit
//! breaker, and the live-migration happy path over real sockets.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ctxpref_core::MultiUserDb;
use ctxpref_net::{NetServer, NetServerConfig};
use ctxpref_router::{BreakerConfig, BreakerState, Router, RouterConfig, RouterError};
use ctxpref_service::{CtxPrefService, DurabilityConfig, ServiceConfig};
use ctxpref_wal::{tiny_env, tiny_relation};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("ctxpref-router-{}-{tag}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One durable single-node "cluster" under `dir`, fronted by a socket
/// server.
fn durable_cluster(dir: &std::path::Path) -> (Arc<CtxPrefService>, NetServer) {
    let db = MultiUserDb::new(tiny_env(), tiny_relation(), 4);
    let mut dcfg = DurabilityConfig::new(dir);
    dcfg.checkpoint_interval = None;
    let service = Arc::new(
        CtxPrefService::new_durable(db, ServiceConfig::default(), dcfg).expect("durable service"),
    );
    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&service),
        NetServerConfig::default(),
    )
    .expect("bind loopback");
    (service, server)
}

fn quick_router(endpoints: Vec<Vec<String>>) -> Router {
    Router::new(
        endpoints,
        RouterConfig {
            transient_retries: 20,
            transient_backoff: Duration::from_millis(10),
            ..RouterConfig::default()
        },
    )
}

#[test]
fn router_forwards_to_the_owning_cluster() {
    let tmp_a = TempDir::new("fwd-a");
    let tmp_b = TempDir::new("fwd-b");
    let (service_a, server_a) = durable_cluster(&tmp_a.0);
    let (service_b, server_b) = durable_cluster(&tmp_b.0);
    let mut router = quick_router(vec![
        vec![server_a.local_addr().to_string()],
        vec![server_b.local_addr().to_string()],
    ]);

    // A spread of users: each lands on exactly the cluster the table
    // names, and nowhere else.
    for i in 0..20 {
        let user = format!("user-{i}");
        router.add_user(&user).expect("routed add_user");
        router
            .insert_preference(&user, "*", "name", "a", 0.5)
            .expect("routed insert");
    }
    let services = [&service_a, &service_b];
    for i in 0..20 {
        let user = format!("user-{i}");
        let owner = router.cluster_of(&user);
        assert!(
            services[owner].with_db(|db| db.profile(&user).is_ok()),
            "{user} missing from its owning cluster {owner}"
        );
        assert!(
            !services[1 - owner].with_db(|db| db.profile(&user).is_ok()),
            "{user} leaked onto the non-owning cluster"
        );
        let answer = router
            .query(&user, "name", 3, Duration::from_millis(250), &["low"])
            .expect("routed query");
        assert!(!answer.step.is_empty());
    }

    server_a.shutdown();
    server_b.shutdown();
}

#[test]
fn breaker_opens_against_a_dead_cluster_and_recovers() {
    let tmp = TempDir::new("breaker");
    let (_service, server) = durable_cluster(&tmp.0);
    let live = server.local_addr().to_string();
    // Cluster 0 points at a port nobody listens on.
    let dead = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().to_string()
        // the listener drops here, freeing the port
    };
    let mut router = Router::new(
        vec![vec![dead], vec![live]],
        RouterConfig {
            client: ctxpref_net::NetClientConfig {
                connect_timeout: Duration::from_millis(200),
                attempts: 1,
                ..ctxpref_net::NetClientConfig::default()
            },
            breaker: BreakerConfig {
                threshold: 2,
                cooldown: Duration::from_millis(100),
            },
            ..RouterConfig::default()
        },
    );

    // Drive requests at the dead cluster until the breaker trips.
    let mut open = false;
    for _ in 0..5 {
        match router.route_status(0) {
            Err(RouterError::CircuitOpen { cluster: 0 }) => {
                open = true;
                break;
            }
            Err(RouterError::ClusterUnavailable { .. }) => {}
            other => panic!("dead cluster answered: {other:?}"),
        }
    }
    assert!(open, "breaker never opened against the dead cluster");
    assert_eq!(router.breaker_state(0), BreakerState::Open);

    // While open: fail fast, no connect timeout burned.
    let started = std::time::Instant::now();
    assert!(matches!(
        router.route_status(0),
        Err(RouterError::CircuitOpen { cluster: 0 })
    ));
    assert!(
        started.elapsed() < Duration::from_millis(50),
        "open circuit still dialed: {:?}",
        started.elapsed()
    );

    // The live cluster is unaffected.
    let info = router.route_status(1).expect("live cluster probes fine");
    assert!(info.has_primary);

    // After the cooldown the half-open probe goes through — still to a
    // dead address, so it re-opens; health is per cluster and the
    // router keeps serving cluster 1 throughout.
    std::thread::sleep(Duration::from_millis(120));
    assert!(matches!(
        router.route_status(0),
        Err(RouterError::ClusterUnavailable { .. })
    ));
    assert_eq!(router.breaker_state(0), BreakerState::Open);

    server.shutdown();
}

#[test]
fn live_migration_moves_a_user_without_losing_writes() {
    let tmp_a = TempDir::new("mig-a");
    let tmp_b = TempDir::new("mig-b");
    let (service_a, server_a) = durable_cluster(&tmp_a.0);
    let (service_b, server_b) = durable_cluster(&tmp_b.0);
    let mut router = quick_router(vec![
        vec![server_a.local_addr().to_string()],
        vec![server_b.local_addr().to_string()],
    ]);
    let services = [&service_a, &service_b];

    let user = "wanderer";
    router.add_user(user).expect("create");
    for i in 0..10 {
        router
            .insert_preference(user, "*", "name", &format!("v-{i}"), 0.1 * i as f64)
            .expect("seed preference");
    }
    let src = router.cluster_of(user);
    let dst = 1 - src;
    let epoch_before = router.epoch();

    let report = router.migrate_user(user, dst).expect("migration completes");
    assert!(report.moved);
    assert_eq!(report.from, src);
    assert_eq!(report.to, dst);
    assert!(report.epoch > epoch_before);
    assert_eq!(router.epoch(), report.epoch);
    assert_eq!(router.cluster_of(user), dst);

    // The user now lives on the destination — and only there.
    assert!(services[dst].with_db(|db| db.profile(user).is_ok()));
    assert!(
        !services[src].with_db(|db| db.profile(user).is_ok()),
        "source kept a copy after cut-over"
    );

    // Writes keep working through the router (they land on dst)...
    router
        .insert_preference(user, "*", "name", "post-move", 0.9)
        .expect("post-migration write");
    assert_eq!(
        services[dst].with_db(|db| db.profile(user).map(|p| p.preferences().len()).unwrap_or(0)),
        11
    );

    // ...while a stale client writing straight to the source gets the
    // typed migration refusal from the tombstone, not a silent fork.
    let err = services[src].add_user(user).unwrap_err();
    assert!(
        matches!(err, ctxpref_service::ServiceError::Migrating { .. }),
        "stale source write got {err:?}"
    );

    // Migrating back also works (a second epoch).
    let back = router.migrate_user(user, src).expect("migrate back");
    assert!(back.epoch > report.epoch);
    assert_eq!(router.cluster_of(user), src);
    assert!(services[src].with_db(|db| db.profile(user).is_ok()));
    assert!(!services[dst].with_db(|db| db.profile(user).is_ok()));

    // A no-op migration (already home) reports moved = false.
    let noop = router.migrate_user(user, src).expect("no-op migration");
    assert!(!noop.moved);

    server_a.shutdown();
    server_b.shutdown();
}

#[test]
fn writes_during_migration_are_never_dropped() {
    // Writes race the migration from another thread (through a cloned
    // router sharing the table): every write that was acked must be on
    // the destination afterwards, exactly once.
    let tmp_a = TempDir::new("race-a");
    let tmp_b = TempDir::new("race-b");
    let (service_a, server_a) = durable_cluster(&tmp_a.0);
    let (service_b, server_b) = durable_cluster(&tmp_b.0);
    let mut router = quick_router(vec![
        vec![server_a.local_addr().to_string()],
        vec![server_b.local_addr().to_string()],
    ]);
    let services = [&service_a, &service_b];

    let user = "racer";
    router.add_user(user).expect("create");
    for i in 0..5 {
        router
            .insert_preference(user, "*", "name", &format!("seed-{i}"), 0.5)
            .expect("seed");
    }
    let dst = 1 - router.cluster_of(user);

    let writer = {
        let mut router = router.clone();
        std::thread::spawn(move || {
            let mut acked = 0usize;
            for i in 0..40 {
                match router.insert_preference("racer", "*", "name", &format!("race-{i}"), 0.25) {
                    Ok(()) => acked += 1,
                    // A refusal past the retry budget is allowed —
                    // the write was never applied, so it is simply
                    // not counted as acked.
                    Err(RouterError::UserMigrating { .. }) => {}
                    Err(e) => panic!("writer hit a non-migration error: {e}"),
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            acked
        })
    };

    std::thread::sleep(Duration::from_millis(10));
    let report = router
        .migrate_user(user, dst)
        .expect("migration under load");
    assert!(report.moved);
    let acked = writer.join().expect("writer thread");

    // Every acked write (5 seeded + the racers) is on the destination.
    let final_prefs =
        services[dst].with_db(|db| db.profile(user).map(|p| p.preferences().len()).unwrap_or(0));
    assert_eq!(
        final_prefs,
        5 + acked,
        "acked writes lost or duplicated across the migration"
    );
    assert!(!services[1 - dst].with_db(|db| db.profile(user).is_ok()));

    server_a.shutdown();
    server_b.shutdown();
}

#[test]
fn ambiguous_mutation_is_not_replayed_on_the_next_endpoint() {
    // An endpoint that accepts connections and immediately closes them
    // produces transport failures of unknown outcome: the request may
    // have been read and applied before the connection died. A
    // mutation must stop there with `AmbiguousWrite` — replaying it on
    // the next endpoint could double-apply — while an idempotent probe
    // keeps walking and reaches the live endpoint.
    let tmp = TempDir::new("ambig");
    let (service, server) = durable_cluster(&tmp.0);
    let live = server.local_addr().to_string();
    let closer = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let closer_addr = closer.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        for conn in closer.incoming() {
            drop(conn);
        }
    });

    // One cluster, two endpoints: the connection-closer is preferred.
    let mut router = quick_router(vec![vec![closer_addr, live]]);

    match router.add_user("ann") {
        Err(RouterError::AmbiguousWrite { cluster: 0, .. }) => {}
        other => panic!("mutation through a dying connection got {other:?}"),
    }
    assert!(
        !service.with_db(|db| db.profile("ann").is_ok()),
        "the mutation reached the live endpoint despite the ambiguous failure"
    );

    // The idempotent probe walks past the dead endpoint and marks the
    // live one preferred; mutations flow again.
    router
        .route_status(0)
        .expect("probe walks to the live endpoint");
    router
        .add_user("ann")
        .expect("mutation against the preferred live endpoint");
    assert!(service.with_db(|db| db.profile("ann").is_ok()));

    server.shutdown();
}
