//! The migration chaos matrix: live migrations racing mixed traffic
//! across two replicated clusters over real loopback sockets, with
//! injected transport, replication, and migration-step faults plus
//! forced primary kills — 32 seeds by default.
//!
//! Invariants:
//!
//! 1. **Zero acked-write loss** (quorum seeds): every write the router
//!    acked is visible on the cluster the routing table names as the
//!    user's owner, after the storm settles — migrations included.
//! 2. **Single writable owner** (all seeds): a user's profile may
//!    linger on a deposed cluster only under a migration entry (fence,
//!    import, or tombstone) that refuses client writes — no silent
//!    fork, ever.
//! 3. **Epoch monotonicity** (all seeds): committed migrations carry
//!    strictly ascending routing epochs. (Each completed migration also
//!    proved src/dst digest equality before its cut-over — the driver
//!    refuses to flip otherwise.)
//! 4. **Liveness**: once faults lift, every user accepts a write and
//!    answers a query through the router, migrating fence leftovers
//!    out of the way if an aborted move left one behind.
//!
//! Override the matrix with `CTXPREF_FUZZ_SEEDS=start..end`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use ctxpref_context::ContextDescriptor;
use ctxpref_core::MultiUserDb;
use ctxpref_faults::sites::{
    NET_CONN_DROP, NET_FRAME_READ, NET_FRAME_WRITE, REPL_HEARTBEAT_DROP, REPL_SEND_DELAY,
    REPL_SEND_DROP, REPL_SEND_DUPLICATE, ROUTER_MIGRATE_CATCHUP, ROUTER_MIGRATE_COPY,
    ROUTER_MIGRATE_CUTOVER,
};
use ctxpref_faults::FaultPlan;
use ctxpref_net::{NetClientConfig, NetServer, NetServerConfig};
use ctxpref_profile::{AttributeClause, ContextualPreference};
use ctxpref_router::{Router, RouterConfig, RouterError};
use ctxpref_service::{CtxPrefService, ReplicatedConfig, ServiceConfig};
use ctxpref_storage::pref_tokens;
use ctxpref_wal::{tiny_env, tiny_relation};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Fault plans are process-global: serialize every test that installs
/// one.
fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "ctxpref-router-chaos-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const CLUSTERS: usize = 2;
const NODES: usize = 3;
/// Every preference in the storm carries this score: 0.5 round-trips
/// exactly through the wire's decimal encoding, so the token-level
/// effect check never trips over float formatting.
const SCORE: f64 = 0.5;

/// One replicated cluster under `dir`, fronted by a socket server.
/// Quorum acks iff the seed is even (only those seeds assert acked
/// durability); fsync policy varies with `seed / 2` — the same matrix
/// discipline as the replication chaos suites.
fn chaos_cluster(dir: &std::path::Path, seed: u64) -> (Arc<CtxPrefService>, NetServer) {
    let db = MultiUserDb::new(tiny_env(), tiny_relation(), 4);
    let cfg = ServiceConfig {
        workers: 1,
        shards: 4,
        ..ServiceConfig::default()
    };
    let mut rcfg = ReplicatedConfig::new(dir, NODES);
    rcfg.segment_max_bytes = 512;
    rcfg.heartbeat_threshold = 2;
    if !seed.is_multiple_of(2) {
        rcfg = rcfg.async_acks();
    }
    if !(seed / 2).is_multiple_of(2) {
        rcfg = rcfg.group_commit(Duration::from_millis(5));
    }
    let service =
        Arc::new(CtxPrefService::new_replicated(db, cfg, rcfg).expect("replicated service"));
    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&service),
        NetServerConfig::default(),
    )
    .expect("bind loopback");
    (service, server)
}

fn chaos_router(endpoints: Vec<Vec<String>>) -> Router {
    Router::new(
        endpoints,
        RouterConfig {
            client: NetClientConfig {
                connect_timeout: Duration::from_millis(250),
                attempts: 2,
                backoff: Duration::from_millis(5),
                jitter: Duration::from_millis(2),
                ..NetClientConfig::default()
            },
            transient_retries: 30,
            transient_backoff: Duration::from_millis(10),
            ..RouterConfig::default()
        },
    )
}

/// One write the router acknowledged. Users and clause values are
/// globally unique and never removed, so "this op's effect is visible"
/// is a well-defined final-state predicate across failovers *and*
/// migrations.
#[derive(Debug, Clone)]
enum AckedOp {
    User(String),
    Pref { user: String, value: String },
}

impl AckedOp {
    fn user(&self) -> &str {
        match self {
            AckedOp::User(u) => u,
            AckedOp::Pref { user, .. } => user,
        }
    }
}

/// A post-storm liveness call. The faults are uninstalled and the
/// clusters healed, but the chaos can leave transport debris behind —
/// pooled connections the storm half-closed, a breaker still in its
/// cooldown — so transport-level failures get a bounded retry before
/// they count as a liveness violation. That includes `AmbiguousWrite`
/// (a mutation on a dead pooled connection): the probes use globally
/// unique values checked by presence, so re-issuing one here is safe
/// even if the first attempt landed. Typed refusals (`Remote`,
/// `UserMigrating`) surface immediately: those are answers.
fn eventually<T>(mut call: impl FnMut() -> Result<T, RouterError>) -> Result<T, RouterError> {
    let mut last = call();
    for _ in 0..20 {
        match &last {
            Err(RouterError::ClusterUnavailable { .. })
            | Err(RouterError::CircuitOpen { .. })
            | Err(RouterError::NoPrimary { .. })
            | Err(RouterError::AmbiguousWrite { .. }) => {
                std::thread::sleep(Duration::from_millis(50));
                last = call();
            }
            _ => break,
        }
    }
    last
}

fn effect_visible(service: &CtxPrefService, op: &AckedOp) -> bool {
    match op {
        AckedOp::User(user) => service.with_db(|db| db.profile(user).is_ok()),
        AckedOp::Pref { user, value } => service.with_db(|db| {
            let Ok(profile) = db.profile(user) else {
                return false;
            };
            let attr = db.relation().schema().require_attr("name").unwrap();
            let want = ContextualPreference::new(
                ContextDescriptor::empty(),
                AttributeClause::eq(attr, value.clone().into()),
                SCORE,
            )
            .unwrap();
            let want = pref_tokens(&want, db.env(), db.relation());
            profile
                .preferences()
                .iter()
                .any(|p| pref_tokens(p, db.env(), db.relation()) == want)
        }),
    }
}

/// Mixed traffic hammered through a cloned router (same routing table,
/// its own connections) while the main thread migrates users and kills
/// primaries. Every op uses a globally unique user or clause value.
/// Errors are tolerated — an op counts only when the router acked it.
fn writer_storm(
    mut router: Router,
    migration_users: Vec<String>,
    seed: u64,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<(Vec<AckedOp>, Vec<String>)> {
    std::thread::spawn(move || {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x00de_ad00);
        let mut acked: Vec<AckedOp> = Vec::new();
        let mut own_users: Vec<String> = Vec::new();
        let mut n = 0u64;
        while !stop.load(Ordering::Relaxed) {
            n += 1;
            let roll = rng.random_range(0..100u32);
            if own_users.is_empty() || roll < 20 {
                let user = format!("w{n}");
                if router.add_user(&user).is_ok() {
                    own_users.push(user.clone());
                    acked.push(AckedOp::User(user));
                }
            } else {
                // Half the preference traffic targets the users being
                // migrated, so writes genuinely race fences, imports,
                // and cut-overs.
                let user = if roll < 60 {
                    migration_users[rng.random_range(0..migration_users.len())].clone()
                } else {
                    own_users[rng.random_range(0..own_users.len())].clone()
                };
                let value = format!("v{n}");
                if router
                    .insert_preference(&user, "*", "name", &value, SCORE)
                    .is_ok()
                {
                    acked.push(AckedOp::Pref { user, value });
                }
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        (acked, own_users)
    })
}

/// Heal a cluster after the storm: restart every crashed node, then
/// wait for a primary with zero lag (the background tick does the
/// promotion and shipping).
fn settle(service: &CtxPrefService, cluster_idx: usize) -> Result<(), String> {
    let cluster = service.cluster().expect("replicated");
    cluster.heal_all();
    for id in 0..NODES {
        if cluster.node(id).is_none() {
            cluster
                .restart_node(id)
                .map_err(|e| format!("cluster {cluster_idx}: restart node {id}: {e}"))?;
        }
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let _ = service.pump_replication();
        let status = cluster.status();
        if status.primary.is_some() && status.max_lag == 0 {
            break;
        }
        if Instant::now() > deadline {
            return Err(format!(
                "LIVENESS: cluster {cluster_idx} never settled after healing: {status:?}"
            ));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    for _ in 0..10 {
        if service.anti_entropy().is_ok() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let _ = service.pump_replication();
    Ok(())
}

/// One chaos seed: boot two clusters, storm, heal, assert.
fn run_migration_chaos_seed(seed: u64) -> Result<(), String> {
    let ctx = |what: &str| format!("seed={seed}: {what}");
    let quorum = seed.is_multiple_of(2);
    let tmp_a = TempDir::new(&format!("seed{seed}-a"));
    let tmp_b = TempDir::new(&format!("seed{seed}-b"));
    let (service_a, server_a) = chaos_cluster(&tmp_a.0, seed);
    let (service_b, server_b) = chaos_cluster(&tmp_b.0, seed);
    let services = [&service_a, &service_b];
    let mut router = chaos_router(vec![
        vec![server_a.local_addr().to_string()],
        vec![server_b.local_addr().to_string()],
    ]);

    // Users the main thread will migrate back and forth, created before
    // the violence starts.
    let migration_users: Vec<String> = (0..3).map(|i| format!("m{i}")).collect();
    for user in &migration_users {
        router
            .add_user(user)
            .map_err(|e| ctx(&format!("seeding {user}: {e}")))?;
    }

    let stop = Arc::new(AtomicBool::new(false));
    let writer = writer_storm(
        router.clone(),
        migration_users.clone(),
        seed,
        Arc::clone(&stop),
    );

    // The storm: transport faults (torn frames, dead connections),
    // replication faults (dropped sends and heartbeats), and failures
    // injected into the migration driver's own steps.
    let plan = FaultPlan::builder(seed)
        .fail(REPL_SEND_DROP, 0.03)
        .fail(REPL_HEARTBEAT_DROP, 0.03)
        .fail(REPL_SEND_DUPLICATE, 0.05)
        .delay(REPL_SEND_DELAY, 0.05, Duration::from_micros(50))
        .fail(NET_FRAME_READ, 0.005)
        .fail(NET_FRAME_WRITE, 0.005)
        .fail(NET_CONN_DROP, 0.01)
        .fail(ROUTER_MIGRATE_COPY, 0.02)
        .fail(ROUTER_MIGRATE_CATCHUP, 0.02)
        .fail(ROUTER_MIGRATE_CUTOVER, 0.02)
        .build();
    let guard = ctxpref_faults::install(Arc::clone(&plan));

    let mut rng = StdRng::seed_from_u64(seed ^ 0x0bad_cafe);
    let mut epochs: Vec<u64> = Vec::new();
    let mut migrations_ok = 0u32;
    let mut migrations_failed = 0u32;
    for i in 0..24 {
        let roll = rng.random_range(0..100u32);
        if i % 8 == 3 || roll < 10 {
            // Migrate a random user to a random side (possibly a no-op)
            // while the writer hammers it. A failed migration is
            // tolerated — the abort path must leave the user writable,
            // which invariant 4 checks after the storm.
            let user = &migration_users[rng.random_range(0..migration_users.len())];
            let dest = rng.random_range(0..CLUSTERS);
            match router.migrate_user(user, dest) {
                Ok(report) => {
                    if report.moved {
                        epochs.push(report.epoch);
                        migrations_ok += 1;
                    }
                }
                Err(_) => migrations_failed += 1,
            }
        } else if roll < 40 {
            // Kill a primary mid-traffic (and mid-migration): the
            // router and the migration driver must both ride through
            // the failover. A majority stays up, so the background
            // tick promotes a replica.
            let c = rng.random_range(0..CLUSTERS);
            let cluster = services[c].cluster().expect("replicated");
            let down = (0..NODES).filter(|&id| cluster.node(id).is_none()).count();
            if down == 0 {
                cluster.crash_primary();
            }
        } else if roll < 60 {
            let c = rng.random_range(0..CLUSTERS);
            let cluster = services[c].cluster().expect("replicated");
            for id in 0..NODES {
                if cluster.node(id).is_none() {
                    let _ = cluster.restart_node(id);
                }
            }
        } else if roll < 70 {
            let c = rng.random_range(0..CLUSTERS);
            let a = rng.random_range(0..NODES);
            let b = rng.random_range(0..NODES);
            if a != b {
                services[c].cluster().expect("replicated").partition(a, b);
            }
        } else if roll < 85 {
            let c = rng.random_range(0..CLUSTERS);
            services[c].cluster().expect("replicated").heal_all();
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    // The storm passes: faults off, writer stopped, clusters healed.
    drop(guard);
    stop.store(true, Ordering::Relaxed);
    let (mut acked, own_users) = writer.join().expect("writer thread");
    for (idx, service) in services.iter().enumerate() {
        settle(service, idx).map_err(|e| ctx(&e))?;
    }

    // 4. Liveness, plus rescue: every user takes a write through the
    // router. An aborted migration may have left a fence behind (its
    // abort message can be a fault casualty) — a fresh migration mints
    // a newer epoch, supersedes the stale entry, and frees the user.
    let all_users: Vec<String> = migration_users.iter().cloned().chain(own_users).collect();
    for (i, user) in all_users.iter().enumerate() {
        let value = format!("probe-{i}");
        let mut outcome = eventually(|| router.insert_preference(user, "*", "name", &value, SCORE));
        if matches!(outcome, Err(RouterError::UserMigrating { .. })) {
            let dest = 1 - router.cluster_of(user);
            let report = eventually(|| router.migrate_user(user, dest))
                .map_err(|e| ctx(&format!("rescue migration of fenced {user}: {e}")))?;
            if report.moved {
                epochs.push(report.epoch);
            }
            outcome = eventually(|| router.insert_preference(user, "*", "name", &value, SCORE));
        }
        if !quorum {
            if let Err(RouterError::Remote { ref kind, .. }) = outcome {
                if kind == "core" {
                    // Async acks may drop an acked user on a primary
                    // crash — replication's documented contract, not a
                    // migration fork. Re-create and keep probing the
                    // write path.
                    let _ = router.add_user(user);
                    outcome =
                        eventually(|| router.insert_preference(user, "*", "name", &value, SCORE));
                }
            }
        }
        outcome.map_err(|e| ctx(&format!("LIVENESS: {user} refused a post-storm write: {e}")))?;
        acked.push(AckedOp::Pref {
            user: user.clone(),
            value,
        });
    }
    // Ship the probe writes everywhere before reading: queries serve
    // the local node's view, which follows the primary with a small
    // shipping lag by design.
    for (idx, service) in services.iter().enumerate() {
        settle(service, idx).map_err(|e| ctx(&e))?;
    }
    for user in &all_users {
        eventually(|| router.query(user, "name", 3, Duration::from_millis(500), &["low"]))
            .map_err(|e| {
                let presence: Vec<bool> = services
                    .iter()
                    .map(|s| s.with_db(|db| db.profile(user).is_ok()))
                    .collect();
                let entries: Vec<_> = services.iter().map(|s| s.migration_entries()).collect();
                ctx(&format!(
                    "LIVENESS: {user} refused a post-storm query: {e}\n\
                     owner={} overrides={:?} present={presence:?} entries={entries:?}",
                    router.cluster_of(user),
                    router.overrides(),
                ))
            })?;
    }

    // 1. Zero acked-write loss: every acked op is visible on the
    // cluster the routing table names as the user's owner.
    if quorum {
        for (i, op) in acked.iter().enumerate() {
            let owner = router.cluster_of(op.user());
            if !effect_visible(services[owner], op) {
                return Err(ctx(&format!(
                    "LOST ACKED WRITE: acked op #{i} {op:?} is missing from owning \
                     cluster {owner} ({migrations_ok} migrations, {migrations_failed} \
                     aborted)"
                )));
            }
        }
    }

    // 2. Single writable owner: a profile lingering on the non-owning
    // cluster is only legal under a migration entry that refuses
    // client writes (lost `finish`/`abort` messages leave exactly
    // that). Anything else is a fork.
    for user in &all_users {
        let owner = router.cluster_of(user);
        let other = 1 - owner;
        let lingering = services[other].with_db(|db| db.profile(user).is_ok());
        if lingering {
            let fenced = services[other]
                .migration_entries()
                .iter()
                .any(|(u, _)| u == user);
            if !fenced {
                return Err(ctx(&format!(
                    "DUAL OWNER: {user} is owned by cluster {owner} but cluster \
                     {other} holds a writable copy"
                )));
            }
        }
    }

    // 3. Committed migrations carry strictly ascending epochs.
    for pair in epochs.windows(2) {
        if pair[1] <= pair[0] {
            return Err(ctx(&format!(
                "EPOCH REGRESSION: committed migration epochs {epochs:?} are not \
                 strictly ascending"
            )));
        }
    }

    server_a.shutdown();
    server_b.shutdown();
    Ok(())
}

/// The matrix: `CTXPREF_FUZZ_SEEDS=a..b` overrides the default 0..32.
fn seed_range() -> std::ops::Range<u64> {
    let Ok(spec) = std::env::var("CTXPREF_FUZZ_SEEDS") else {
        return 0..32;
    };
    let parse = |s: &str| s.trim().parse::<u64>().ok();
    match spec.split_once("..").map(|(a, b)| (parse(a), parse(b))) {
        Some((Some(a), Some(b))) if a < b => a..b,
        _ => panic!("CTXPREF_FUZZ_SEEDS must look like '0..32', got {spec:?}"),
    }
}

#[test]
fn migration_chaos_matrix() {
    let _serial = fault_lock();
    for seed in seed_range() {
        if let Err(violation) = run_migration_chaos_seed(seed) {
            panic!(
                "MIGRATION VIOLATION (reproduce with CTXPREF_FUZZ_SEEDS={seed}..{}):\n\
                 {violation}",
                seed + 1
            );
        }
    }
}
