//! The router's typed failure vocabulary.

use std::fmt;

use ctxpref_net::NetError;

/// Everything that can go wrong routing a request or driving a
/// migration.
#[derive(Debug)]
pub enum RouterError {
    /// The cluster's circuit breaker is open: it failed too many
    /// consecutive transport attempts and the cooldown has not elapsed.
    CircuitOpen {
        /// The cluster whose circuit is open.
        cluster: usize,
    },
    /// Every endpoint of the cluster failed at the transport layer.
    ClusterUnavailable {
        /// The cluster that could not be reached.
        cluster: usize,
        /// The last endpoint's failure, rendered.
        last: String,
    },
    /// A non-idempotent mutation hit a transport failure of unknown
    /// outcome: the endpoint may have applied it before the connection
    /// died, so the router neither retried it nor walked to another
    /// endpoint (a replay could double-apply). The caller must re-read
    /// before re-issuing.
    AmbiguousWrite {
        /// The cluster whose endpoint failed mid-exchange.
        cluster: usize,
        /// The transport failure, rendered.
        last: String,
    },
    /// The cluster answered, but had no primary for longer than the
    /// router's retry budget (failover still in flight).
    NoPrimary {
        /// The cluster without a primary.
        cluster: usize,
    },
    /// The user stayed fenced (mid-migration) past the router's retry
    /// budget.
    UserMigrating {
        /// The fenced user.
        user: String,
        /// Retries spent waiting for the cut-over to complete.
        retries: u32,
    },
    /// The serving side returned a typed error (the request reached a
    /// healthy server and was refused — not a routing failure).
    Remote {
        /// The error kind token.
        kind: String,
        /// The server-rendered message.
        message: String,
    },
    /// A transport-level error that is not retried (protocol
    /// confusion, unexpected response shape).
    Net(NetError),
    /// A migration step failed; the driver aborted and rolled back.
    Migration {
        /// Which protocol step failed.
        step: &'static str,
        /// Why, rendered.
        reason: String,
    },
}

impl fmt::Display for RouterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::CircuitOpen { cluster } => {
                write!(f, "cluster {cluster}: circuit open (failing fast)")
            }
            Self::ClusterUnavailable { cluster, last } => {
                write!(f, "cluster {cluster}: every endpoint failed (last: {last})")
            }
            Self::AmbiguousWrite { cluster, last } => {
                write!(
                    f,
                    "cluster {cluster}: mutation outcome unknown ({last}); \
                     not replayed — re-read before re-issuing"
                )
            }
            Self::NoPrimary { cluster } => {
                write!(f, "cluster {cluster}: no primary (failover in flight)")
            }
            Self::UserMigrating { user, retries } => write!(
                f,
                "user {user:?} still fenced after {retries} retries (migration in flight)"
            ),
            Self::Remote { kind, message } => write!(f, "remote error [{kind}]: {message}"),
            Self::Net(e) => write!(f, "network: {e}"),
            Self::Migration { step, reason } => {
                write!(f, "migration step {step:?} failed: {reason}")
            }
        }
    }
}

impl std::error::Error for RouterError {}

impl From<NetError> for RouterError {
    fn from(e: NetError) -> Self {
        match e {
            NetError::Remote { kind, message } => Self::Remote { kind, message },
            other => Self::Net(other),
        }
    }
}
