//! The live-migration driver: move one user between clusters without
//! dropping an acked write.
//!
//! The driver runs inside the router and speaks the `migrate` wire
//! verbs to both sides. The phases, and what each guarantees:
//!
//! 1. **Copying** — a consistent snapshot of the user (profile
//!    rendered as WAL-op payloads, plus the source shard's LSN at the
//!    cut) is imported on the destination. Writes keep flowing on the
//!    source the whole time.
//! 2. **Catch-up** — the source's WAL suffix after the cut, filtered
//!    to the user, is pulled page by page and replayed on the
//!    destination. The destination's import watermark (highest source
//!    LSN applied) makes every page idempotent, so pages can be
//!    retried blindly over fresh connections. A `gone` answer (the
//!    suffix was checkpointed away) restarts from a fresh snapshot.
//! 3. **Cut-over** — the source **fences** the user: writes for that
//!    one user get the typed, retry-able `migrating` refusal (never a
//!    hang, and crucially *pre-apply*, so a refused write was never
//!    acked). The driver drains the remaining suffix up to the fenced
//!    LSN, verifies the FNV **digest** of both sides' profiles match,
//!    flips the routing table, activates the destination, and only
//!    then tells the source to drop its copy (leaving a `moved`
//!    tombstone for stale clients). The flip commits *before* the
//!    activation so a deposed driver (flip refused) has never made
//!    its destination writable — its partial copy dies under the
//!    import entry that still blocks client writes.
//!
//! Why no acked write can be lost: a write acked before the fence is
//! either in the snapshot (≤ cut LSN) or in the WAL suffix the drain
//! replays (> cut LSN — the fence freezes the user's suffix, so the
//! drain's end is a fixed point); a write after the fence was refused
//! pre-apply and retried by the router against the destination after
//! the flip. Why no write is duplicated: pages replay under the
//! watermark, and the destination applies through its own write path
//! exactly once.
//!
//! Every step carries the **routing epoch** minted for the migration;
//! the serving side refuses older epochs, so a deposed driver (one
//! that stalled while a newer migration of the same user ran) can
//! never fence, import, or apply stale state. Any pre-flip failure
//! aborts: both sides drop their migration entries, the destination
//! deletes its partial copy (while its import entry still blocks
//! client writes), and the routing table never flips.

use std::time::{Duration, Instant};

use ctxpref_faults::hit;
use ctxpref_faults::sites::{ROUTER_MIGRATE_CATCHUP, ROUTER_MIGRATE_COPY, ROUTER_MIGRATE_CUTOVER};
use ctxpref_net::{MigrateAction, Request, Response};

use crate::error::RouterError;
use crate::router::Router;

/// Catch-up page size (records per pull).
const PAGE: u64 = 64;
/// Pre-fence catch-up rounds before cutting over regardless of lag
/// (the fence drain closes whatever gap remains).
const CATCHUP_ROUNDS: usize = 16;
/// Snapshot restarts tolerated when the WAL suffix is checkpointed
/// away mid-catch-up.
const MAX_RESTARTS: u32 = 3;
/// Attempts per individual migration step (absorbs `not-primary`
/// windows during a source/destination failover and transport blips).
const STEP_ATTEMPTS: u32 = 60;
/// Backoff between step attempts.
const STEP_BACKOFF: Duration = Duration::from_millis(25);

/// What a completed (or skipped) migration did.
#[derive(Debug, Clone)]
pub struct MigrationReport {
    /// The migrated user.
    pub user: String,
    /// Source cluster.
    pub from: usize,
    /// Destination cluster.
    pub to: usize,
    /// The routing epoch the migration committed under (the table's
    /// current epoch for a skipped move).
    pub epoch: u64,
    /// Whether anything moved (`false` when source == destination).
    pub moved: bool,
    /// How long the user's writes were fenced at cut-over.
    pub fence: Duration,
    /// Catch-up pages replayed (pre-fence and drain).
    pub pages: u64,
    /// Snapshot restarts after the WAL suffix was checkpointed away.
    pub restarts: u32,
}

impl Router {
    /// One migration step against `cluster`, retried (the verbs are
    /// idempotent: epoch- and watermark-guarded) through `not-primary`
    /// windows and transient transport failures.
    fn migrate_step(
        &mut self,
        cluster: usize,
        user: &str,
        epoch: u64,
        action: &MigrateAction,
        step: &'static str,
    ) -> Result<Response, RouterError> {
        let req = Request::MigrateUser {
            user: user.to_string(),
            epoch,
            action: action.clone(),
        };
        let mut last = String::new();
        for attempt in 1..=STEP_ATTEMPTS {
            match self.call_cluster(cluster, &req) {
                Ok(Response::NotPrimary) => last = "not-primary".to_string(),
                Ok(resp) => return Ok(resp),
                // The serving side refused with a decision (stale
                // epoch, missing user, not durable): retrying cannot
                // change it.
                Err(e @ RouterError::Remote { .. }) => return Err(e),
                Err(
                    e @ (RouterError::ClusterUnavailable { .. } | RouterError::CircuitOpen { .. }),
                ) => {
                    last = e.to_string();
                }
                Err(e) => return Err(e),
            }
            if attempt < STEP_ATTEMPTS {
                std::thread::sleep(STEP_BACKOFF * attempt.min(8));
            }
        }
        Err(RouterError::Migration {
            step,
            reason: format!("step exhausted {STEP_ATTEMPTS} attempts (last: {last})"),
        })
    }

    /// Move `user` to cluster `dest` live: snapshot + catch-up while
    /// writes flow, a brief per-user fence at cut-over, digest
    /// verification, then the routing flip. On any pre-flip failure
    /// the migration aborts cleanly on both sides and the error comes
    /// back; ownership never changes on an aborted move.
    pub fn migrate_user(
        &mut self,
        user: &str,
        dest: usize,
    ) -> Result<MigrationReport, RouterError> {
        assert!(dest < self.clusters(), "destination cluster out of range");
        let from = self.cluster_of(user);
        if from == dest {
            return Ok(MigrationReport {
                user: user.to_string(),
                from,
                to: dest,
                epoch: self.epoch(),
                moved: false,
                fence: Duration::ZERO,
                pages: 0,
                restarts: 0,
            });
        }
        let epoch = self.table().lock().mint_epoch();
        let mut report = MigrationReport {
            user: user.to_string(),
            from,
            to: dest,
            epoch,
            moved: true,
            fence: Duration::ZERO,
            pages: 0,
            restarts: 0,
        };
        match self.drive(user, from, dest, epoch, &mut report) {
            Ok(()) => Ok(report),
            Err(e) => {
                // Roll back: lift the fence (if placed), drop the
                // destination's partial copy. Best-effort — the
                // epoch guard means a newer migration is never
                // touched, and entries this abort cannot reach keep
                // blocking writes (safe, just not clean) until a
                // retry or a newer migration supersedes them.
                let _ = self.migrate_step(from, user, epoch, &MigrateAction::Abort, "abort");
                let _ = self.migrate_step(dest, user, epoch, &MigrateAction::Abort, "abort");
                Err(e)
            }
        }
    }

    fn drive(
        &mut self,
        user: &str,
        from: usize,
        dest: usize,
        epoch: u64,
        report: &mut MigrationReport,
    ) -> Result<(), RouterError> {
        let fail = |step: &'static str, reason: String| RouterError::Migration { step, reason };

        'restart: loop {
            // ---- Copying: consistent snapshot → destination import.
            hit(ROUTER_MIGRATE_COPY).map_err(|e| fail("copy", e.to_string()))?;
            let (src_lsn, ops) =
                match self.migrate_step(from, user, epoch, &MigrateAction::Snapshot, "snapshot")? {
                    Response::Snapshot { src_lsn, ops } => (src_lsn, ops),
                    other => return Err(fail("snapshot", format!("unexpected reply {other:?}"))),
                };
            match self.migrate_step(
                dest,
                user,
                epoch,
                &MigrateAction::Import {
                    src_lsn,
                    ops: ops.clone(),
                },
                "import",
            )? {
                Response::Ok => {}
                other => return Err(fail("import", format!("unexpected reply {other:?}"))),
            }

            // ---- Catch-up: replay the live WAL suffix page by page.
            let mut cursor = src_lsn + 1;
            for _ in 0..CATCHUP_ROUNDS {
                hit(ROUTER_MIGRATE_CATCHUP).map_err(|e| fail("catch-up", e.to_string()))?;
                let target =
                    match self.migrate_step(from, user, epoch, &MigrateAction::Export, "export")? {
                        Response::UserCut { last_lsn, .. } => last_lsn,
                        other => return Err(fail("export", format!("unexpected reply {other:?}"))),
                    };
                if cursor > target {
                    break;
                }
                match self.pull_apply(user, from, dest, epoch, &mut cursor, target, report)? {
                    PullOutcome::Caught => {}
                    PullOutcome::Gone => {
                        report.restarts += 1;
                        if report.restarts > MAX_RESTARTS {
                            return Err(fail(
                                "catch-up",
                                format!("WAL suffix checkpointed away {MAX_RESTARTS} times"),
                            ));
                        }
                        continue 'restart;
                    }
                }
            }

            // ---- Cut-over: fence, drain to the fenced LSN, verify,
            // flip.
            hit(ROUTER_MIGRATE_CUTOVER).map_err(|e| fail("cut-over", e.to_string()))?;
            match self.migrate_step(from, user, epoch, &MigrateAction::Fence, "fence")? {
                Response::Ok => {}
                other => return Err(fail("fence", format!("unexpected reply {other:?}"))),
            }
            let fence_start = Instant::now();

            // The fence froze the user's suffix: records for this user
            // past the fenced shard LSN cannot exist, so the drain's
            // end is a fixed point, not a chase.
            let (fenced_lsn, src_digest) =
                match self.migrate_step(from, user, epoch, &MigrateAction::Export, "drain")? {
                    Response::UserCut {
                        last_lsn, digest, ..
                    } => (last_lsn, digest),
                    other => return Err(fail("drain", format!("unexpected reply {other:?}"))),
                };
            if cursor <= fenced_lsn {
                match self.pull_apply(user, from, dest, epoch, &mut cursor, fenced_lsn, report)? {
                    PullOutcome::Caught => {}
                    PullOutcome::Gone => {
                        // Checkpointed away mid-drain: abort (the
                        // caller lifts the fence) rather than holding
                        // the fence across a full re-copy.
                        return Err(fail(
                            "drain",
                            "WAL suffix checkpointed away under the fence".to_string(),
                        ));
                    }
                }
            }

            // Digest check: both sides must hold the same profile
            // before ownership moves.
            let dst_digest =
                match self.migrate_step(dest, user, epoch, &MigrateAction::Export, "verify")? {
                    Response::UserCut { digest, .. } => digest,
                    other => return Err(fail("verify", format!("unexpected reply {other:?}"))),
                };
            if src_digest != dst_digest {
                return Err(fail(
                    "verify",
                    format!(
                        "digest mismatch after drain: source {src_digest:#x} vs \
                         destination {dst_digest:#x}"
                    ),
                ));
            }

            // Flip the routing table first, then activate the
            // destination. Commit-before-activate means a deposed
            // driver (its commit refused because a newer migration
            // owns the user) has never unblocked its destination: the
            // import entry is still in place, so the caller's abort
            // removes the partial copy and no writable stale replica
            // of the user can survive deposal. Between the flip and
            // the activation the user's writes land on the destination
            // and get the typed retry-able `migrating` refusal; the
            // router's forward loop re-resolves and retries, so the
            // window stays bounded by one activation round-trip.
            if !self.table().lock().commit(user, dest, epoch) {
                // A newer migration owns the user: this driver is
                // deposed. Its destination copy is aborted by the
                // caller; the newer epoch's entries are untouchable.
                return Err(fail(
                    "commit",
                    "routing table refused the flip (newer migration owns the user)".to_string(),
                ));
            }

            // Ownership has moved: from here on nothing may abort (an
            // abort would delete the destination's — now authoritative
            // — copy). Activation and the source's cleanup are
            // idempotent and epoch-guarded; a failure leaves an entry
            // that keeps refusing that one user's writes with the
            // retry-able `migrating` reply (safe, just not clean)
            // until a later migration supersedes it.
            let _ = self.migrate_step(dest, user, epoch, &MigrateAction::Activate, "activate");
            report.fence = fence_start.elapsed();

            // The source drops its copy under the fence and leaves a
            // tombstone telling stale clients to refresh.
            let _ = self.migrate_step(from, user, epoch, &MigrateAction::Finish, "finish");
            return Ok(());
        }
    }

    /// Pull-and-apply pages until `cursor` passes `target`. Advances
    /// `cursor` past every scanned record; applies under the
    /// destination's watermark (idempotent on retry).
    #[allow(clippy::too_many_arguments)]
    fn pull_apply(
        &mut self,
        user: &str,
        from: usize,
        dest: usize,
        epoch: u64,
        cursor: &mut u64,
        target: u64,
        report: &mut MigrationReport,
    ) -> Result<PullOutcome, RouterError> {
        let fail = |step: &'static str, reason: String| RouterError::Migration { step, reason };
        while *cursor <= target {
            let (through, records) = match self.migrate_step(
                from,
                user,
                epoch,
                &MigrateAction::Pull {
                    from_lsn: *cursor,
                    max: PAGE,
                },
                "pull",
            )? {
                Response::Records { through, records } => (through, records),
                Response::Gone => return Ok(PullOutcome::Gone),
                other => return Err(fail("pull", format!("unexpected reply {other:?}"))),
            };
            match self.migrate_step(
                dest,
                user,
                epoch,
                &MigrateAction::Apply { through, records },
                "apply",
            )? {
                Response::Applied { .. } => {}
                other => return Err(fail("apply", format!("unexpected reply {other:?}"))),
            }
            report.pages += 1;
            if through < *cursor {
                // Nothing at or past the cursor yet (suffix fully
                // consumed): the caller's export decides whether the
                // target moved.
                break;
            }
            *cursor = through + 1;
        }
        Ok(PullOutcome::Caught)
    }
}

enum PullOutcome {
    Caught,
    Gone,
}
