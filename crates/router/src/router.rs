//! The router proper: failure-aware forwarding of client operations
//! to the cluster that owns each user.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ctxpref_net::{
    NetClient, NetClientConfig, NetError, Priority, RemoteAnswer, Request, Response,
};
use parking_lot::Mutex;

use crate::error::RouterError;
use crate::health::{Breaker, BreakerConfig, BreakerState};
use crate::table::RoutingTable;

/// Router tuning.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Per-endpoint client tuning (timeouts, transport retry, jitter).
    pub client: NetClientConfig,
    /// Per-cluster circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Virtual ring points per cluster.
    pub vnodes: usize,
    /// How many times a request refused with `migrating` or
    /// `not-primary` is retried (the condition is transient by
    /// construction: a cut-over completes or a failover promotes).
    pub transient_retries: u32,
    /// Backoff between those retries, multiplied by the attempt
    /// number (capped at 8×).
    pub transient_backoff: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            client: NetClientConfig::default(),
            breaker: BreakerConfig::default(),
            vnodes: 16,
            transient_retries: 40,
            transient_backoff: Duration::from_millis(25),
        }
    }
}

/// Mutable per-cluster routing state: the breaker plus the endpoint
/// index that last answered (tried first on the next request).
struct ClusterState {
    breaker: Breaker,
    preferred: usize,
}

/// State shared by every clone of a router: the endpoints, the
/// routing table, and per-cluster health.
struct Shared {
    /// `endpoints[cluster]` = the addresses fronting that cluster.
    endpoints: Vec<Vec<String>>,
    cfg: RouterConfig,
    table: Mutex<RoutingTable>,
    health: Vec<Mutex<ClusterState>>,
}

/// A user-partitioned router over several serving clusters.
///
/// Each user is owned by exactly one cluster (consistent hashing plus
/// migration overrides — see [`RoutingTable`]); requests forward to
/// the owner over [`NetClient`]s. Failure handling, per layer:
///
/// * **Endpoint down** — for idempotent requests the next endpoint of
///   the same cluster is tried and the one that answers becomes
///   preferred; a mutation whose transport failed mid-exchange is
///   **not** replayed (unknown outcome — see
///   [`RouterError::AmbiguousWrite`]).
/// * **Whole cluster unreachable** — a per-cluster circuit breaker
///   opens after consecutive all-endpoint transport failures, fails
///   fast while open, and half-opens a probe after a cooldown.
/// * **`not-primary`** — the cluster is mid-failover; the router
///   backs off and retries (bounded), because promotion is seconds
///   away, not an error.
/// * **`migrating`** — the user is mid-cut-over; the refusal is typed
///   and pre-apply, so the router backs off, re-reads its routing
///   table (the flip may have landed), and retries — **safe even for
///   mutations**, because a fenced write was never applied.
///
/// Clones share the routing table and health state but keep their own
/// connection cache, so one clone per thread is the intended pattern.
pub struct Router {
    shared: Arc<Shared>,
    clients: HashMap<String, NetClient>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("clusters", &self.shared.endpoints.len())
            .field("epoch", &self.epoch())
            .finish()
    }
}

impl Clone for Router {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
            clients: HashMap::new(),
        }
    }
}

impl Router {
    /// A router over `endpoints[cluster]` address lists.
    pub fn new(endpoints: Vec<Vec<String>>, cfg: RouterConfig) -> Self {
        assert!(
            !endpoints.is_empty() && endpoints.iter().all(|e| !e.is_empty()),
            "every cluster needs at least one endpoint"
        );
        let clusters = endpoints.len();
        let health = (0..clusters)
            .map(|_| {
                Mutex::new(ClusterState {
                    breaker: Breaker::new(cfg.breaker),
                    preferred: 0,
                })
            })
            .collect();
        Self {
            shared: Arc::new(Shared {
                endpoints,
                table: Mutex::new(RoutingTable::new(clusters, cfg.vnodes)),
                health,
                cfg,
            }),
            clients: HashMap::new(),
        }
    }

    /// Number of clusters behind this router.
    pub fn clusters(&self) -> usize {
        self.shared.endpoints.len()
    }

    /// The current routing epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.table.lock().epoch()
    }

    /// The cluster that currently owns `user`.
    pub fn cluster_of(&self, user: &str) -> usize {
        self.shared.table.lock().cluster_of(user)
    }

    /// Every migration override, sorted by user.
    pub fn overrides(&self) -> Vec<(String, usize, u64)> {
        self.shared.table.lock().overrides()
    }

    /// The shared routing table (the migration driver commits flips
    /// through this).
    pub(crate) fn table(&self) -> &Mutex<RoutingTable> {
        &self.shared.table
    }

    /// The breaker state of `cluster` right now.
    pub fn breaker_state(&self, cluster: usize) -> BreakerState {
        self.shared.health[cluster].lock().breaker.state()
    }

    fn client(&mut self, addr: &str) -> &mut NetClient {
        let cfg = self.shared.cfg.client;
        self.clients
            .entry(addr.to_string())
            .or_insert_with(|| NetClient::connect(addr.to_string(), cfg))
    }

    /// One request against `cluster`: walk its endpoints starting at
    /// the preferred one, feed the breaker, and hand back whatever the
    /// cluster answered. `not-primary` from an endpoint rotates to the
    /// next (another access point may sit closer to the new primary);
    /// if every live endpoint says `not-primary` that is the answer —
    /// the cluster is alive but leaderless, which the caller retries.
    ///
    /// The walk only continues past a transport failure of *unknown*
    /// outcome for idempotent requests; a mutation stops there with
    /// [`RouterError::AmbiguousWrite`], because the dead connection
    /// may have carried an applied-but-unacked write and replaying it
    /// elsewhere would double-apply. Typed refusals (`not-primary`,
    /// `busy`) are pre-apply, so they rotate for every request kind.
    pub(crate) fn call_cluster(
        &mut self,
        cluster: usize,
        req: &Request,
    ) -> Result<Response, RouterError> {
        self.call_cluster_enveloped(cluster, req, None, Priority::Interactive)
    }

    /// [`Self::call_cluster`] with an end-to-end deadline and a
    /// priority tier. Each endpoint attempt is handed only the budget
    /// that remains at that instant — the walk itself (and the retries
    /// inside each [`NetClient`]) spends it — so a hop never asks a
    /// server for more work than the original caller is still waiting
    /// for. When the budget is gone the client surfaces the typed
    /// [`NetError::BudgetExhausted`] instead of dialing.
    pub(crate) fn call_cluster_enveloped(
        &mut self,
        cluster: usize,
        req: &Request,
        deadline: Option<Instant>,
        tier: Priority,
    ) -> Result<Response, RouterError> {
        if !self.shared.health[cluster].lock().breaker.allow() {
            return Err(RouterError::CircuitOpen { cluster });
        }
        let n = self.shared.endpoints[cluster].len();
        let start = self.shared.health[cluster].lock().preferred;
        let idempotent = req.is_idempotent();
        let mut last_transport: Option<String> = None;
        let mut saw_not_primary = false;
        let mut saw_busy: Option<(usize, Duration)> = None;
        for i in 0..n {
            let idx = (start + i) % n;
            let addr = self.shared.endpoints[cluster][idx].clone();
            let remaining = deadline.map(|d| d.saturating_duration_since(Instant::now()));
            match self.client(&addr).request_enveloped(req, remaining, tier) {
                Ok(Response::NotPrimary) => {
                    saw_not_primary = true;
                    continue;
                }
                Ok(resp) => {
                    let mut h = self.shared.health[cluster].lock();
                    h.breaker.on_success();
                    h.preferred = idx;
                    return Ok(resp);
                }
                // A typed refusal is an answer: the transport works,
                // the server decided. Health credit, no failover.
                Err(NetError::Remote { kind, message }) => {
                    let mut h = self.shared.health[cluster].lock();
                    h.breaker.on_success();
                    h.preferred = idx;
                    return Err(RouterError::Remote { kind, message });
                }
                // Saturated endpoint: the busy frame is a pre-apply
                // refusal (the server shed the request before touching
                // it), so another access point of the same cluster may
                // have capacity — safe to walk on even for mutations.
                Err(NetError::ServerBusy { limit, retry_after }) => {
                    saw_busy = Some((limit, retry_after));
                }
                Err(
                    e @ (NetError::Io(_) | NetError::Frame(_) | NetError::RetriesExhausted { .. }),
                ) => {
                    // Unknown outcome: the endpoint may have applied
                    // the request before the transport died. Replaying
                    // a non-idempotent mutation against the next
                    // endpoint could apply it twice (a replayed
                    // `remove-pref` removes a second, unrelated
                    // preference), so only idempotent requests keep
                    // walking; mutations surface the ambiguity to the
                    // caller, who must re-read before re-issuing.
                    if !idempotent {
                        self.shared.health[cluster].lock().breaker.on_failure();
                        return Err(RouterError::AmbiguousWrite {
                            cluster,
                            last: e.to_string(),
                        });
                    }
                    last_transport = Some(e.to_string());
                }
                // Protocol confusion is not transient; surface it.
                Err(e) => return Err(RouterError::Net(e)),
            }
        }
        if saw_not_primary {
            // The cluster answered — leaderless is a state, not a
            // transport failure.
            self.shared.health[cluster].lock().breaker.on_success();
            return Ok(Response::NotPrimary);
        }
        if let Some((limit, retry_after)) = saw_busy {
            // Every endpoint shed the request: the cluster is alive
            // and deciding, just saturated. This must NOT feed the
            // breaker's failure path — tripping the circuit on load
            // shedding would turn a brownout into a full outage for
            // the tiers the server was still willing to serve.
            self.shared.health[cluster].lock().breaker.on_success();
            return Err(RouterError::Net(NetError::ServerBusy {
                limit,
                retry_after,
            }));
        }
        self.shared.health[cluster].lock().breaker.on_failure();
        Err(RouterError::ClusterUnavailable {
            cluster,
            last: last_transport.unwrap_or_else(|| "no endpoints".to_string()),
        })
    }

    /// Forward one per-user request to its owner, absorbing the two
    /// transient refusals (`migrating`, `not-primary`) with bounded
    /// backoff. The owner is re-resolved on every attempt, so a
    /// routing flip that lands mid-retry redirects the request.
    fn forward(&mut self, user: &str, req: &Request) -> Result<Response, RouterError> {
        self.forward_enveloped(user, req, None, Priority::Interactive)
    }

    /// [`Self::forward`] with an end-to-end budget and a priority
    /// tier. The budget starts ticking on entry and is spent by every
    /// hop, endpoint walk, and transient-refusal backoff below; sleeps
    /// are clamped so a retry never outlives what the caller still
    /// waits for, and exhaustion surfaces as the typed
    /// [`NetError::BudgetExhausted`].
    fn forward_enveloped(
        &mut self,
        user: &str,
        req: &Request,
        budget: Option<Duration>,
        tier: Priority,
    ) -> Result<Response, RouterError> {
        let deadline = budget.map(|b| Instant::now() + b);
        let retries = self.shared.cfg.transient_retries;
        let backoff = self.shared.cfg.transient_backoff;
        let mut attempt = 0u32;
        loop {
            let cluster = self.cluster_of(user);
            match self.call_cluster_enveloped(cluster, req, deadline, tier)? {
                Response::Migrating { .. } => {
                    attempt += 1;
                    if attempt > retries {
                        return Err(RouterError::UserMigrating {
                            user: user.to_string(),
                            retries: attempt - 1,
                        });
                    }
                }
                Response::NotPrimary => {
                    attempt += 1;
                    if attempt > retries {
                        return Err(RouterError::NoPrimary { cluster });
                    }
                }
                resp => return Ok(resp),
            }
            let mut sleep = backoff * attempt.min(8);
            if let Some(d) = deadline {
                let remaining = d.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(RouterError::Net(NetError::BudgetExhausted {
                        budget: budget.unwrap_or_default(),
                    }));
                }
                sleep = sleep.min(remaining);
            }
            std::thread::sleep(sleep);
        }
    }

    fn expect_ok(&mut self, user: &str, req: &Request) -> Result<(), RouterError> {
        match self.forward(user, req)? {
            Response::Ok => Ok(()),
            other => Err(RouterError::Net(NetError::UnexpectedResponse {
                got: format!("{other:?}"),
            })),
        }
    }

    /// Create `user` on their owning cluster.
    pub fn add_user(&mut self, user: &str) -> Result<(), RouterError> {
        self.expect_ok(
            user,
            &Request::AddUser {
                user: user.to_string(),
            },
        )
    }

    /// Remove `user` from their owning cluster.
    pub fn remove_user(&mut self, user: &str) -> Result<(), RouterError> {
        self.expect_ok(
            user,
            &Request::RemoveUser {
                user: user.to_string(),
            },
        )
    }

    /// Insert an equality preference on `user`'s owning cluster.
    pub fn insert_preference(
        &mut self,
        user: &str,
        descriptor: &str,
        attr: &str,
        value: &str,
        score: f64,
    ) -> Result<(), RouterError> {
        self.expect_ok(
            user,
            &Request::InsertPref {
                user: user.to_string(),
                descriptor: descriptor.to_string(),
                attr: attr.to_string(),
                value: value.to_string(),
                score,
            },
        )
    }

    /// Bulk-insert equality preferences for `user` —
    /// `(descriptor, attr, value, score)` per item — as **one**
    /// [`Request::Batch`] frame to the owning cluster, saving a wire
    /// round-trip per item. Returns how many applied.
    ///
    /// The server stops the batch at its first failing item, so the
    /// transient refusals need position-aware handling: a refusal
    /// *before any item applied* is wholly pre-apply and retries with
    /// the usual bounded backoff (re-resolving the owner each time); a
    /// refusal *after* a prefix applied must not replay the batch —
    /// the applied prefix would double-insert — and surfaces as a
    /// typed `partial-batch` error carrying the applied count.
    pub fn insert_preferences(
        &mut self,
        user: &str,
        items: &[(&str, &str, &str, f64)],
    ) -> Result<usize, RouterError> {
        if items.is_empty() {
            return Ok(0);
        }
        let req = Request::Batch {
            requests: items
                .iter()
                .map(|(descriptor, attr, value, score)| Request::InsertPref {
                    user: user.to_string(),
                    descriptor: descriptor.to_string(),
                    attr: attr.to_string(),
                    value: value.to_string(),
                    score: *score,
                })
                .collect(),
        };
        let retries = self.shared.cfg.transient_retries;
        let backoff = self.shared.cfg.transient_backoff;
        let mut attempt = 0u32;
        loop {
            let cluster = self.cluster_of(user);
            let responses = match self.call_cluster(cluster, &req)? {
                Response::Batch { responses } => responses,
                // Whole-batch pre-apply refusals, same as `forward`.
                Response::Migrating { .. } | Response::NotPrimary => Vec::new(),
                other => {
                    return Err(RouterError::Net(NetError::UnexpectedResponse {
                        got: format!("{other:?}"),
                    }))
                }
            };
            let applied = responses
                .iter()
                .take_while(|r| matches!(r, Response::Ok))
                .count();
            if applied == items.len() {
                return Ok(applied);
            }
            match responses.get(applied) {
                None | Some(Response::Migrating { .. }) | Some(Response::NotPrimary)
                    if applied == 0 =>
                {
                    attempt += 1;
                    if attempt > retries {
                        return Err(RouterError::UserMigrating {
                            user: user.to_string(),
                            retries: attempt - 1,
                        });
                    }
                    std::thread::sleep(backoff * attempt.min(8));
                }
                Some(Response::Migrating { .. }) | Some(Response::NotPrimary) => {
                    return Err(RouterError::Remote {
                        kind: "partial-batch".to_string(),
                        message: format!(
                            "{applied} of {} items applied before a transient refusal; \
                             re-read the profile before re-issuing the remainder",
                            items.len()
                        ),
                    })
                }
                Some(Response::Err { kind, message }) => {
                    return Err(RouterError::Remote {
                        kind: kind.clone(),
                        message: format!("after {applied} item(s) applied: {message}"),
                    })
                }
                other => {
                    return Err(RouterError::Net(NetError::UnexpectedResponse {
                        got: format!("{other:?}"),
                    }))
                }
            }
        }
    }

    /// Remove `user`'s preference at `index`, returning its score.
    pub fn remove_preference(&mut self, user: &str, index: usize) -> Result<f64, RouterError> {
        match self.forward(
            user,
            &Request::RemovePref {
                user: user.to_string(),
                index,
            },
        )? {
            Response::Removed { score } => Ok(score),
            other => Err(RouterError::Net(NetError::UnexpectedResponse {
                got: format!("{other:?}"),
            })),
        }
    }

    /// Re-score `user`'s preference at `index`.
    pub fn update_score(
        &mut self,
        user: &str,
        index: usize,
        score: f64,
    ) -> Result<(), RouterError> {
        self.expect_ok(
            user,
            &Request::UpdateScore {
                user: user.to_string(),
                index,
                score,
            },
        )
    }

    /// Rank `user`'s tuples by `attr` under a context state, on their
    /// owning cluster.
    ///
    /// `deadline` doubles as the end-to-end budget: it ticks from this
    /// call onward, every hop and retry below spends it, and the
    /// serving cluster clamps its execution deadline to what survives
    /// the trip.
    pub fn query(
        &mut self,
        user: &str,
        attr: &str,
        k: usize,
        deadline: Duration,
        state: &[&str],
    ) -> Result<RemoteAnswer, RouterError> {
        self.query_tiered(user, attr, k, deadline, state, Priority::Interactive)
    }

    /// [`Self::query`] at an explicit priority tier. Under overload
    /// the cluster sheds maintenance first, then bulk; interactive
    /// queries are shed only by the hard in-flight backstop.
    pub fn query_tiered(
        &mut self,
        user: &str,
        attr: &str,
        k: usize,
        deadline: Duration,
        state: &[&str],
        tier: Priority,
    ) -> Result<RemoteAnswer, RouterError> {
        let req = Request::Query {
            user: user.to_string(),
            attr: attr.to_string(),
            k,
            deadline_ms: deadline.as_millis().min(u128::from(u64::MAX)) as u64,
            state: state.iter().map(|s| s.to_string()).collect(),
        };
        match self.forward_enveloped(user, &req, Some(deadline), tier)? {
            Response::Answer(a) => Ok(a),
            other => Err(RouterError::Net(NetError::UnexpectedResponse {
                got: format!("{other:?}"),
            })),
        }
    }

    /// Top-k pushdown variant of [`Self::query`]: the serving shard
    /// answers from a materialized view when one is fresh, and the
    /// wire carries only `k` rows either way.
    pub fn query_topk(
        &mut self,
        user: &str,
        attr: &str,
        k: usize,
        deadline: Duration,
        state: &[&str],
    ) -> Result<RemoteAnswer, RouterError> {
        self.query_topk_tiered(user, attr, k, deadline, state, Priority::Interactive)
    }

    /// [`Self::query_topk`] at an explicit priority tier, with the
    /// same budget envelope as [`Self::query_tiered`].
    pub fn query_topk_tiered(
        &mut self,
        user: &str,
        attr: &str,
        k: usize,
        deadline: Duration,
        state: &[&str],
        tier: Priority,
    ) -> Result<RemoteAnswer, RouterError> {
        let req = Request::TopK {
            user: user.to_string(),
            attr: attr.to_string(),
            k,
            deadline_ms: deadline.as_millis().min(u128::from(u64::MAX)) as u64,
            state: state.iter().map(|s| s.to_string()).collect(),
        };
        match self.forward_enveloped(user, &req, Some(deadline), tier)? {
            Response::Answer(a) => Ok(a),
            other => Err(RouterError::Net(NetError::UnexpectedResponse {
                got: format!("{other:?}"),
            })),
        }
    }

    /// Materialized-view status report from `cluster`: aggregate
    /// view-serving counters plus per-user pinned states.
    pub fn views_status(&mut self, cluster: usize) -> Result<String, RouterError> {
        match self.call_cluster(cluster, &Request::ViewsStatus)? {
            Response::Text { body } => Ok(body),
            other => Err(RouterError::Net(NetError::UnexpectedResponse {
                got: format!("{other:?}"),
            })),
        }
    }

    /// Probe `cluster`: primary presence, replication epoch, state
    /// counts. Feeds the same health machinery as regular requests.
    pub fn route_status(
        &mut self,
        cluster: usize,
    ) -> Result<ctxpref_service::RouteInfo, RouterError> {
        match self.call_cluster(cluster, &Request::RouteStatus)? {
            Response::RouteInfo {
                has_primary,
                epoch,
                users,
                migrations,
            } => Ok(ctxpref_service::RouteInfo {
                has_primary,
                epoch,
                users,
                migrations,
            }),
            Response::NotPrimary => Ok(ctxpref_service::RouteInfo {
                has_primary: false,
                epoch: 0,
                users: 0,
                migrations: 0,
            }),
            other => Err(RouterError::Net(NetError::UnexpectedResponse {
                got: format!("{other:?}"),
            })),
        }
    }
}
