#![warn(missing_docs)]
//! User-partitioned routing tier over several serving clusters.
//!
//! The serving stack so far scales *one* cluster: a replicated
//! primary with failover behind TCP endpoints. This crate partitions
//! **users** across several such clusters and keeps the partitioning
//! a live, repairable thing:
//!
//! * [`RoutingTable`] — consistent hashing assigns every user a home
//!   cluster; per-user overrides (installed by migrations) win over
//!   the ring; a routing **epoch** advances on every committed flip.
//! * [`Router`] — forwards client operations to each user's owner
//!   over [`NetClient`](ctxpref_net::NetClient)s, with per-endpoint
//!   failover, primary rediscovery on `not-primary` answers, bounded
//!   backoff through `migrating` fences, and a per-cluster circuit
//!   breaker ([`Breaker`]) that fails fast while a cluster is down.
//! * [`Router::migrate_user`] — live migration: consistent snapshot,
//!   WAL-suffix catch-up, a brief per-user write fence at cut-over,
//!   FNV digest verification across the move, then the routing flip —
//!   with abort/rollback at every pre-flip step and epoch fencing so
//!   a deposed driver can never clobber a newer migration. The chaos
//!   suite (`tests/chaos.rs`) drives migrations under injected
//!   network/replication faults and primary kills, asserting no acked
//!   write is ever lost or duplicated.

mod error;
mod health;
mod migrate;
mod router;
mod table;

pub use error::RouterError;
pub use health::{Breaker, BreakerConfig, BreakerState};
pub use migrate::MigrationReport;
pub use router::{Router, RouterConfig};
pub use table::{fnv1a, RoutingTable};
