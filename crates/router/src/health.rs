//! Per-cluster health: a circuit breaker fed by request outcomes.
//!
//! The router counts consecutive **transport** failures per cluster
//! (typed refusals are answers, not failures). Past the threshold the
//! breaker opens and requests fail fast with a typed
//! [`RouterError::CircuitOpen`](crate::RouterError::CircuitOpen)
//! instead of burning a connect timeout per call against a dead
//! cluster. After the cooldown one probe request is let through
//! (half-open); its outcome closes or re-opens the circuit.

use std::time::{Duration, Instant};

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive transport failures before the circuit opens.
    pub threshold: u32,
    /// How long an open circuit rejects before letting one probe
    /// through.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            threshold: 3,
            cooldown: Duration::from_millis(250),
        }
    }
}

/// The observable state of one cluster's circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests fail fast until the cooldown elapses.
    Open,
    /// Cooldown elapsed: one probe is in flight; its outcome decides.
    HalfOpen,
}

/// One cluster's circuit breaker.
#[derive(Debug)]
pub struct Breaker {
    cfg: BreakerConfig,
    state: BreakerState,
    failures: u32,
    opened_at: Option<Instant>,
}

impl Breaker {
    /// A closed breaker with the given tuning.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self {
            cfg,
            state: BreakerState::Closed,
            failures: 0,
            opened_at: None,
        }
    }

    /// The current state (transitions Open → HalfOpen lazily, on
    /// inspection).
    pub fn state(&mut self) -> BreakerState {
        if self.state == BreakerState::Open {
            let elapsed = self
                .opened_at
                .map(|t| t.elapsed())
                .unwrap_or(Duration::ZERO);
            if elapsed >= self.cfg.cooldown {
                self.state = BreakerState::HalfOpen;
            }
        }
        self.state
    }

    /// Whether a request may proceed right now. An open circuit whose
    /// cooldown has elapsed flips to half-open and admits the probe.
    pub fn allow(&mut self) -> bool {
        self.state() != BreakerState::Open
    }

    /// A request reached the cluster and got an answer (any typed
    /// answer counts — the transport works).
    pub fn on_success(&mut self) {
        self.failures = 0;
        self.state = BreakerState::Closed;
        self.opened_at = None;
    }

    /// A request failed at the transport layer on every endpoint.
    pub fn on_failure(&mut self) {
        match self.state() {
            // The half-open probe failed: straight back to open, fresh
            // cooldown.
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                self.opened_at = Some(Instant::now());
            }
            BreakerState::Open => {}
            BreakerState::Closed => {
                self.failures += 1;
                if self.failures >= self.cfg.threshold {
                    self.state = BreakerState::Open;
                    self.opened_at = Some(Instant::now());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_and_half_opens_after_cooldown() {
        let mut b = Breaker::new(BreakerConfig {
            threshold: 2,
            cooldown: Duration::from_millis(20),
        });
        assert!(b.allow());
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());

        std::thread::sleep(Duration::from_millis(25));
        assert!(b.allow(), "cooldown elapsed: the probe must be admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);

        // Probe fails: straight back to open.
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);

        std::thread::sleep(Duration::from_millis(25));
        assert!(b.allow());
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = Breaker::new(BreakerConfig {
            threshold: 3,
            cooldown: Duration::from_millis(10),
        });
        b.on_failure();
        b.on_failure();
        b.on_success();
        b.on_failure();
        b.on_failure();
        assert_eq!(
            b.state(),
            BreakerState::Closed,
            "the streak must reset on success"
        );
    }
}
