//! The routing table: a consistent-hash ring over clusters, per-user
//! ownership overrides, and the routing epoch.
//!
//! Every user has a **home** cluster given by consistent hashing over
//! the ring; a completed migration records an **override** that wins
//! over the home. The table's **epoch** advances on every committed
//! migration, and each override remembers the epoch that installed it,
//! so a commit from a deposed (older-epoch) migration driver is
//! refused instead of clobbering newer ownership. At any epoch each
//! user maps to exactly one cluster — the single-owner invariant the
//! chaos suite asserts.

use std::collections::HashMap;

/// FNV-1a over `bytes` — the same digest family the WAL frames and
/// anti-entropy stripes use, chosen here for determinism across runs
/// and platforms (the ring must not move between restarts).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A ring point for `bytes`: FNV-1a pushed through a 64-bit avalanche
/// finalizer. Raw FNV of short keys that differ only in their last
/// characters clusters into narrow bands (the trailing bytes see too
/// few multiplies), which makes a consistent-hash ring wildly
/// unbalanced; the finalizer spreads those bands over the full space.
fn ring_point(bytes: &[u8]) -> u64 {
    let mut x = fnv1a(bytes);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// A consistent-hash routing table over `clusters` clusters.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    /// `(point, cluster)` sorted by point: the ring.
    ring: Vec<(u64, usize)>,
    clusters: usize,
    /// Per-user ownership overrides: `user -> (cluster, epoch)`.
    overrides: HashMap<String, (usize, u64)>,
    epoch: u64,
    next_epoch: u64,
}

impl RoutingTable {
    /// A ring over `clusters` clusters with `vnodes` virtual points
    /// each (more points → smoother balance, larger binary searches).
    pub fn new(clusters: usize, vnodes: usize) -> Self {
        assert!(clusters > 0, "a routing table needs at least one cluster");
        let vnodes = vnodes.max(1);
        let mut ring = Vec::with_capacity(clusters * vnodes);
        for cluster in 0..clusters {
            for v in 0..vnodes {
                let point = ring_point(format!("cluster-{cluster}-vnode-{v}").as_bytes());
                ring.push((point, cluster));
            }
        }
        ring.sort_unstable();
        Self {
            ring,
            clusters,
            overrides: HashMap::new(),
            epoch: 0,
            next_epoch: 0,
        }
    }

    /// Number of clusters behind the ring.
    pub fn clusters(&self) -> usize {
        self.clusters
    }

    /// The current routing epoch (advances on every committed
    /// migration).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// `user`'s home cluster from the ring alone, ignoring overrides.
    pub fn home_of(&self, user: &str) -> usize {
        let point = ring_point(user.as_bytes());
        let idx = self.ring.partition_point(|&(p, _)| p < point);
        self.ring[idx % self.ring.len()].1
    }

    /// The cluster that currently owns `user`: the migration override
    /// if one exists, the ring's home otherwise.
    pub fn cluster_of(&self, user: &str) -> usize {
        match self.overrides.get(user) {
            Some(&(cluster, _)) => cluster,
            None => self.home_of(user),
        }
    }

    /// Mint a fresh routing epoch for a migration about to start. The
    /// epoch travels with every protocol step so the serving side can
    /// refuse a deposed driver's stale actions.
    pub fn mint_epoch(&mut self) -> u64 {
        self.next_epoch = self.next_epoch.max(self.epoch) + 1;
        self.next_epoch
    }

    /// Commit a migration: `user` now lives on `dest`, owned by
    /// `epoch`. Refused (returns `false`) when a newer migration
    /// already owns the user's override — the deposed driver must not
    /// clobber it. On success the table epoch advances to at least
    /// `epoch`.
    pub fn commit(&mut self, user: &str, dest: usize, epoch: u64) -> bool {
        if let Some(&(_, owner)) = self.overrides.get(user) {
            if owner >= epoch {
                return false;
            }
        }
        self.overrides.insert(user.to_string(), (dest, epoch));
        self.epoch = self.epoch.max(epoch);
        true
    }

    /// Every override, sorted by user (for status rendering).
    pub fn overrides(&self) -> Vec<(String, usize, u64)> {
        let mut v: Vec<_> = self
            .overrides
            .iter()
            .map(|(u, &(c, e))| (u.clone(), c, e))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic_and_total() {
        let a = RoutingTable::new(3, 16);
        let b = RoutingTable::new(3, 16);
        for i in 0..200 {
            let user = format!("user-{i}");
            let c = a.cluster_of(&user);
            assert_eq!(c, b.cluster_of(&user), "ring moved between builds");
            assert!(c < 3);
        }
    }

    #[test]
    fn ring_spreads_users_across_clusters() {
        let table = RoutingTable::new(4, 32);
        let mut counts = [0usize; 4];
        for i in 0..400 {
            counts[table.cluster_of(&format!("user-{i}"))] += 1;
        }
        for (cluster, &n) in counts.iter().enumerate() {
            assert!(n > 0, "cluster {cluster} received no users: {counts:?}");
        }
    }

    #[test]
    fn override_wins_over_home_and_stale_commit_is_refused() {
        let mut table = RoutingTable::new(2, 8);
        let home = table.home_of("alice");
        let dest = 1 - home;

        let e1 = table.mint_epoch();
        let e2 = table.mint_epoch();
        assert!(e2 > e1);

        assert!(table.commit("alice", dest, e2));
        assert_eq!(table.cluster_of("alice"), dest);
        assert_eq!(table.epoch(), e2);

        // The deposed driver's older-epoch commit must not clobber.
        assert!(!table.commit("alice", home, e1));
        assert_eq!(table.cluster_of("alice"), dest);

        // A newer migration moves the user again.
        let e3 = table.mint_epoch();
        assert!(table.commit("alice", home, e3));
        assert_eq!(table.cluster_of("alice"), home);
    }
}
