#![warn(missing_docs)]
//! Deterministic, seedable fault injection.
//!
//! Production code marks **named sites** — `faults::hit("storage.write.flush")?`
//! — at the points where real deployments fail: I/O boundaries, cache
//! lookups, query execution. A test installs a [`FaultPlan`] describing
//! *which* sites misbehave and *how* (typed errors, injected delays,
//! forced panics, truncated writes); without an installed plan every
//! site is a single relaxed atomic load, so the instrumentation is free
//! in production.
//!
//! Decisions are **deterministic**: a probability rule at a site fires
//! purely as a function of `(plan seed, rule, site name, per-site hit
//! index)`, so a seeded chaos run injects the same faults at the same
//! operations every time, regardless of unrelated interleavings.
//!
//! ```
//! use ctxpref_faults::{FaultPlan, hit};
//!
//! let plan = FaultPlan::builder(42).fail("demo.op", 0.5).build();
//! let injected = plan.run(|| {
//!     (0..100).filter(|_| hit("demo.op").is_err()).count()
//! });
//! assert!(injected > 20 && injected < 80);
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Duration;

/// The registry of named fault sites threaded through the workspace.
///
/// Sites are plain strings — nothing stops a crate from marking a new
/// one — but the durability test matrix ("inject a kill at *every*
/// registered site") needs an authoritative list, so write-path sites
/// are declared here next to the machinery that drives them.
pub mod sites {
    /// Opening the temp file of an atomic snapshot save.
    pub const STORAGE_SAVE_OPEN: &str = "storage.save.open";
    /// Writing the payload of an atomic snapshot save (honours
    /// truncation faults: only a prefix persists).
    pub const STORAGE_SAVE_WRITE: &str = "storage.save.write";
    /// Fsyncing the temp file of an atomic snapshot save.
    pub const STORAGE_SAVE_SYNC: &str = "storage.save.sync";
    /// Renaming the temp file over the destination.
    pub const STORAGE_SAVE_RENAME: &str = "storage.save.rename";
    /// Opening a snapshot file for loading.
    pub const STORAGE_LOAD_OPEN: &str = "storage.load.open";
    /// Reading a snapshot file's bytes.
    pub const STORAGE_LOAD_READ: &str = "storage.load.read";
    /// Writing a framed record to a WAL segment (honours truncation
    /// faults: a torn tail persists).
    pub const WAL_APPEND_WRITE: &str = "wal.append.write";
    /// Fsyncing a WAL segment (per-record append sync and group-commit
    /// flush both pass through here).
    pub const WAL_APPEND_SYNC: &str = "wal.append.sync";
    /// Rotating a WAL shard onto a fresh segment file.
    pub const WAL_ROTATE: &str = "wal.rotate";
    /// Atomically swapping the checkpoint manifest into place.
    pub const MANIFEST_SWAP: &str = "manifest.swap";
    /// A replication message leaving the sender: an injected error
    /// drops the message on the floor (the network ate it).
    pub const REPL_SEND_DROP: &str = "repl.send.drop";
    /// A replication message in flight: an injected delay holds it
    /// before delivery, modelling a slow or congested link.
    pub const REPL_SEND_DELAY: &str = "repl.send.delay";
    /// A replication message that the network delivers twice; the
    /// receiver's LSN cursor must deduplicate it.
    pub const REPL_SEND_DUPLICATE: &str = "repl.send.duplicate";
    /// A full network partition between two nodes: while the fault
    /// fires, every message (and heartbeat) between them is dropped.
    pub const REPL_PARTITION: &str = "repl.partition";
    /// A heartbeat that the network drops without affecting data
    /// traffic, exercising failure-detector false positives.
    pub const REPL_HEARTBEAT_DROP: &str = "repl.heartbeat.drop";

    /// Accepting one TCP connection on a serving or replication
    /// listener: an injected error refuses the connection (the accept
    /// loop stays up and keeps serving).
    pub const NET_ACCEPT: &str = "net.accept";
    /// Reading one wire frame off a socket: an injected error surfaces
    /// as a connection-level I/O failure on the reader.
    pub const NET_FRAME_READ: &str = "net.frame.read";
    /// Writing one wire frame onto a socket: an injected error surfaces
    /// as a connection-level I/O failure on the writer.
    pub const NET_FRAME_WRITE: &str = "net.frame.write";
    /// A live connection stalling: an injected delay holds the next
    /// frame exchange, modelling a congested or half-dead link.
    pub const NET_CONN_DELAY: &str = "net.conn.delay";
    /// A live connection dying mid-exchange: an injected error severs
    /// it, forcing the peer onto its reconnect path.
    pub const NET_CONN_DROP: &str = "net.conn.drop";

    /// A service worker picking a job off the queue: an injected delay
    /// stalls the whole pool, letting overload tests grow queue
    /// sojourn deterministically (expired-in-queue jobs must be
    /// counted and dropped, never executed).
    pub const SVC_WORKER_DEQUEUE: &str = "svc.worker.dequeue";

    /// The migration driver's snapshot/copy step (export + import of
    /// the user's profile): an injected error aborts the migration,
    /// which must roll back cleanly and leave the source serving.
    pub const ROUTER_MIGRATE_COPY: &str = "router.migrate.copy";
    /// One catch-up round of the migration driver (pulling and
    /// applying a page of the user's WAL suffix): an injected error
    /// forces a retry or an abort, never a stale apply.
    pub const ROUTER_MIGRATE_CATCHUP: &str = "router.migrate.catchup";
    /// The cut-over step (fence → final drain → digest check → flip):
    /// an injected error here must either complete the flip or unfence
    /// the source — never strand the user unowned.
    pub const ROUTER_MIGRATE_CUTOVER: &str = "router.migrate.cutover";

    /// Every registered routing-tier migration site: the router chaos
    /// matrix injects failures at each migration phase and asserts the
    /// single-owner and acked-write invariants still hold.
    pub const ROUTER_SITES: &[&str] = &[
        ROUTER_MIGRATE_COPY,
        ROUTER_MIGRATE_CATCHUP,
        ROUTER_MIGRATE_CUTOVER,
    ];

    /// Reading framed records back out of a WAL segment (recovery
    /// replay and catch-up reads): an injected error models a read
    /// I/O failure — the sector is there but the disk won't serve it.
    pub const WAL_READ: &str = "wal.read";
    /// One file visited by the background scrubber: an injected error
    /// models a transient read failure during verification (the
    /// scrubber must skip the file, count it, and keep walking — a
    /// flaky read is not corruption and must not quarantine).
    pub const WAL_SCRUB: &str = "wal.scrub";
    /// Loading a checkpoint snapshot for scrub verification or
    /// recovery: an injected error models an unreadable snapshot.
    pub const CHECKPOINT_READ: &str = "checkpoint.read";
    /// The volume running out of space: while the fault fires, WAL
    /// appends shed with a typed retryable `DiskFull` error; reads
    /// keep serving and writes resume when the window closes.
    pub const DISK_FULL: &str = "disk.full";

    /// Every registered disk-fault site: the disk-chaos matrix drives
    /// ENOSPC windows, read I/O errors, and at-rest corruption through
    /// these, and the self-healing invariants (no acked-write loss
    /// while a healthy replica exists, no panic, digest convergence
    /// after repair) must hold under any combination.
    pub const DISK_SITES: &[&str] = &[WAL_READ, WAL_SCRUB, CHECKPOINT_READ, DISK_FULL];

    /// Every registered TCP serving-layer site: the socket chaos tests
    /// drive refused accepts, torn frames, stalls, and dropped
    /// connections through these, and the serving/replication
    /// invariants must hold under any combination.
    pub const NET_SITES: &[&str] = &[
        NET_ACCEPT,
        NET_FRAME_READ,
        NET_FRAME_WRITE,
        NET_CONN_DELAY,
        NET_CONN_DROP,
    ];

    /// Every registered replication *network* site: the seeded chaos
    /// matrix drives partitions, message loss, duplication, and delay
    /// through these, and the replication invariants (no acked-write
    /// loss, epoch-monotonic promotions, digest convergence) must hold
    /// under any combination.
    pub const NETWORK_SITES: &[&str] = &[
        REPL_SEND_DROP,
        REPL_SEND_DELAY,
        REPL_SEND_DUPLICATE,
        REPL_PARTITION,
        REPL_HEARTBEAT_DROP,
    ];

    /// Every registered *write-path* site: a crash injected at any of
    /// these must never lose an acknowledged mutation. This is the
    /// matrix the crash-recovery fuzz walks.
    pub const DURABILITY_SITES: &[&str] = &[
        STORAGE_SAVE_OPEN,
        STORAGE_SAVE_WRITE,
        STORAGE_SAVE_SYNC,
        STORAGE_SAVE_RENAME,
        WAL_APPEND_WRITE,
        WAL_APPEND_SYNC,
        WAL_ROTATE,
        MANIFEST_SWAP,
    ];
}

/// What an injected fault did (or would do) at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation reports a (typed, recoverable) failure.
    Error,
    /// The operation panics, as a corrupted invariant would.
    Panic,
    /// The operation is delayed before proceeding.
    Delay,
    /// A write persists only a prefix of its payload.
    Truncate,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Error => write!(f, "error"),
            Self::Panic => write!(f, "panic"),
            Self::Delay => write!(f, "delay"),
            Self::Truncate => write!(f, "truncate"),
        }
    }
}

/// The typed error produced when a site is told to fail.
#[derive(Debug, Clone)]
pub struct InjectedFault {
    /// The site that failed.
    pub site: String,
    /// 1-based index of the hit at that site that failed.
    pub hit: u64,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at {} (hit #{})", self.site, self.hit)
    }
}

impl Error for InjectedFault {}

/// When a rule fires.
#[derive(Debug, Clone)]
enum Trigger {
    /// Deterministically, with the given per-hit probability.
    Probability(f64),
    /// Exactly at these 1-based hit indices of the site.
    AtHits(Vec<u64>),
    /// Every `n`-th hit (n ≥ 1).
    EveryNth(u64),
    /// Every hit in the inclusive 1-based window `[first, last]` — a
    /// sustained condition (a full disk, a long brown-out) rather than
    /// a point fault.
    HitWindow(u64, u64),
}

#[derive(Debug, Clone)]
struct Rule {
    /// Site name, or a prefix ending in `*`.
    pattern: String,
    trigger: Trigger,
    kind: FaultKind,
    delay: Duration,
    /// For [`FaultKind::Truncate`]: keep this fraction of the payload.
    keep_fraction: f64,
}

impl Rule {
    fn matches(&self, site: &str) -> bool {
        match self.pattern.strip_suffix('*') {
            Some(prefix) => site.starts_with(prefix),
            None => self.pattern == site,
        }
    }

    /// Deterministic decision for hit `hit` of `site` under `seed`.
    /// `salt` is the rule's index in the plan, so several probability
    /// rules on the same site draw independently instead of sharing one
    /// uniform value (which would let the first rule shadow the rest).
    fn fires(&self, seed: u64, site: &str, hit: u64, salt: u64) -> bool {
        match &self.trigger {
            Trigger::Probability(p) => {
                let salt = salt.wrapping_mul(0xa24b_aed4_963e_e407);
                let h = mix(seed ^ fnv(site) ^ fnv(&self.pattern) ^ salt, hit);
                (h >> 11) as f64 / (1u64 << 53) as f64 * 1.0 < *p
            }
            Trigger::AtHits(hits) => hits.contains(&hit),
            Trigger::EveryNth(n) => hit.is_multiple_of((*n).max(1)),
            Trigger::HitWindow(first, last) => (*first..=*last).contains(&hit),
        }
    }
}

fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn mix(seed: u64, n: u64) -> u64 {
    let mut z = seed.wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Counters of what a plan injected, for test assertions.
#[derive(Debug, Clone, Default)]
pub struct FaultStats {
    /// Injected typed errors, per site.
    pub errors: HashMap<String, u64>,
    /// Forced panics, per site.
    pub panics: HashMap<String, u64>,
    /// Injected delays, per site.
    pub delays: HashMap<String, u64>,
    /// Truncated writes, per site.
    pub truncations: HashMap<String, u64>,
}

impl FaultStats {
    /// Total number of injected faults of every kind.
    pub fn total(&self) -> u64 {
        [&self.errors, &self.panics, &self.delays, &self.truncations]
            .iter()
            .flat_map(|m| m.values())
            .sum()
    }
}

#[derive(Debug, Default)]
struct PlanState {
    hits: HashMap<String, u64>,
    stats: FaultStats,
}

/// A deterministic, seedable description of which sites fail and how.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<Rule>,
    state: Mutex<PlanState>,
}

/// Builder for [`FaultPlan`].
#[derive(Debug)]
pub struct FaultPlanBuilder {
    seed: u64,
    rules: Vec<Rule>,
}

impl FaultPlanBuilder {
    fn rule(mut self, pattern: &str, trigger: Trigger, kind: FaultKind) -> Self {
        self.rules.push(Rule {
            pattern: pattern.to_string(),
            trigger,
            kind,
            delay: Duration::from_millis(1),
            keep_fraction: 0.5,
        });
        self
    }

    /// Fail `site` (exact name, or prefix ending in `*`) with per-hit
    /// probability `p`.
    #[must_use]
    pub fn fail(self, site: &str, p: f64) -> Self {
        self.rule(site, Trigger::Probability(p), FaultKind::Error)
    }

    /// Fail `site` exactly at the given 1-based hit indices.
    #[must_use]
    pub fn fail_at(self, site: &str, hits: &[u64]) -> Self {
        self.rule(site, Trigger::AtHits(hits.to_vec()), FaultKind::Error)
    }

    /// Fail every `n`-th hit of `site` (n ≥ 1).
    #[must_use]
    pub fn fail_every(self, site: &str, n: u64) -> Self {
        self.rule(site, Trigger::EveryNth(n), FaultKind::Error)
    }

    /// Fail every hit of `site` inside the inclusive 1-based window
    /// `[first, last]` — a sustained outage (ENOSPC until space is
    /// freed) rather than a point fault. Hits before and after the
    /// window succeed, so recovery-after-the-condition-clears is
    /// exercised in the same run.
    #[must_use]
    pub fn fail_between(self, site: &str, first: u64, last: u64) -> Self {
        self.rule(site, Trigger::HitWindow(first, last), FaultKind::Error)
    }

    /// Panic at `site` with per-hit probability `p`.
    #[must_use]
    pub fn panic(self, site: &str, p: f64) -> Self {
        self.rule(site, Trigger::Probability(p), FaultKind::Panic)
    }

    /// Panic at `site` exactly at the given 1-based hit indices.
    #[must_use]
    pub fn panic_at(self, site: &str, hits: &[u64]) -> Self {
        self.rule(site, Trigger::AtHits(hits.to_vec()), FaultKind::Panic)
    }

    /// Sleep `delay` at `site` with per-hit probability `p`.
    #[must_use]
    pub fn delay(mut self, site: &str, p: f64, delay: Duration) -> Self {
        self = self.rule(site, Trigger::Probability(p), FaultKind::Delay);
        self.rules.last_mut().expect("rule just pushed").delay = delay;
        self
    }

    /// Sleep `delay` at `site` exactly at the given 1-based hit
    /// indices (the deterministic sibling of [`Self::delay`], for
    /// tests that must slow one specific operation — e.g. the first
    /// request of a pipelined burst — and no other).
    #[must_use]
    pub fn delay_at(mut self, site: &str, hits: &[u64], delay: Duration) -> Self {
        self = self.rule(site, Trigger::AtHits(hits.to_vec()), FaultKind::Delay);
        self.rules.last_mut().expect("rule just pushed").delay = delay;
        self
    }

    /// Truncate writes at `site` with per-hit probability `p`, keeping
    /// `keep_fraction` of the payload.
    #[must_use]
    pub fn truncate(mut self, site: &str, p: f64, keep_fraction: f64) -> Self {
        self = self.rule(site, Trigger::Probability(p), FaultKind::Truncate);
        self.rules
            .last_mut()
            .expect("rule just pushed")
            .keep_fraction = keep_fraction.clamp(0.0, 1.0);
        self
    }

    /// Truncate writes at `site` exactly at the given 1-based hits.
    #[must_use]
    pub fn truncate_at(mut self, site: &str, hits: &[u64], keep_fraction: f64) -> Self {
        self = self.rule(site, Trigger::AtHits(hits.to_vec()), FaultKind::Truncate);
        self.rules
            .last_mut()
            .expect("rule just pushed")
            .keep_fraction = keep_fraction.clamp(0.0, 1.0);
        self
    }

    /// Finish the plan.
    pub fn build(self) -> Arc<FaultPlan> {
        Arc::new(FaultPlan {
            seed: self.seed,
            rules: self.rules,
            state: Mutex::default(),
        })
    }
}

impl FaultPlan {
    /// Start building a plan whose probability decisions derive from
    /// `seed`.
    pub fn builder(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder {
            seed,
            rules: Vec::new(),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Counters of everything injected so far.
    pub fn stats(&self) -> FaultStats {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .stats
            .clone()
    }

    /// How many times `site` has been *hit* under this plan (whether or
    /// not anything was injected). A calibration run under an empty
    /// plan uses this to learn how many kill points a workload exposes
    /// at each site before targeting one of them.
    pub fn hit_count(&self, site: &str) -> u64 {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .hits
            .get(site)
            .copied()
            .unwrap_or(0)
    }

    /// Hit counters for every site touched under this plan.
    pub fn hit_counts(&self) -> HashMap<String, u64> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .hits
            .clone()
    }

    /// Install this plan globally, run `f`, then restore the previous
    /// plan (panic-safe). Returns `f`'s result.
    pub fn run<R>(self: &Arc<Self>, f: impl FnOnce() -> R) -> R {
        let _guard = install(Arc::clone(self));
        f()
    }

    /// Record a hit of `site`; decide what, if anything, to inject.
    fn decide(&self, site: &str) -> Option<(FaultKind, Duration, f64, u64)> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let hit = {
            let h = state.hits.entry(site.to_string()).or_insert(0);
            *h += 1;
            *h
        };
        for (idx, rule) in self.rules.iter().enumerate() {
            if rule.matches(site) && rule.fires(self.seed, site, hit, idx as u64) {
                let counter = match rule.kind {
                    FaultKind::Error => &mut state.stats.errors,
                    FaultKind::Panic => &mut state.stats.panics,
                    FaultKind::Delay => &mut state.stats.delays,
                    FaultKind::Truncate => &mut state.stats.truncations,
                };
                *counter.entry(site.to_string()).or_insert(0) += 1;
                return Some((rule.kind, rule.delay, rule.keep_fraction, hit));
            }
        }
        None
    }
}

fn global() -> &'static RwLock<Option<Arc<FaultPlan>>> {
    static PLAN: OnceLock<RwLock<Option<Arc<FaultPlan>>>> = OnceLock::new();
    PLAN.get_or_init(|| RwLock::new(None))
}

static ACTIVE: AtomicBool = AtomicBool::new(false);

/// RAII guard restoring the previously installed plan on drop.
pub struct PlanGuard {
    previous: Option<Arc<FaultPlan>>,
}

impl Drop for PlanGuard {
    fn drop(&mut self) {
        let mut slot = global().write().unwrap_or_else(|e| e.into_inner());
        ACTIVE.store(self.previous.is_some(), Ordering::Release);
        *slot = self.previous.take();
    }
}

/// Install `plan` as the process-wide fault plan until the returned
/// guard drops. Nested installs restore the outer plan.
pub fn install(plan: Arc<FaultPlan>) -> PlanGuard {
    let mut slot = global().write().unwrap_or_else(|e| e.into_inner());
    let previous = slot.replace(plan);
    ACTIVE.store(true, Ordering::Release);
    PlanGuard { previous }
}

/// The currently installed plan, if any.
pub fn current() -> Option<Arc<FaultPlan>> {
    if !ACTIVE.load(Ordering::Acquire) {
        return None;
    }
    global().read().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Mark a fault site. With no plan installed this is one atomic load.
/// Under a plan it may sleep (delay faults), panic (forced panics), or
/// return the typed [`InjectedFault`] (error faults).
pub fn hit(site: &str) -> Result<(), InjectedFault> {
    let Some(plan) = current() else { return Ok(()) };
    match plan.decide(site) {
        None => Ok(()),
        Some((FaultKind::Delay, d, _, _)) => {
            std::thread::sleep(d);
            Ok(())
        }
        Some((FaultKind::Panic, _, _, hit)) => {
            panic!("injected panic at {site} (hit #{hit})");
        }
        Some((FaultKind::Error, _, _, hit)) => Err(InjectedFault {
            site: site.to_string(),
            hit,
        }),
        // Truncation is only meaningful through `truncated_len`; at a
        // plain site it degrades to an error.
        Some((FaultKind::Truncate, _, _, hit)) => Err(InjectedFault {
            site: site.to_string(),
            hit,
        }),
    }
}

/// Mark a *write* site of `full_len` bytes: returns the number of bytes
/// that should actually be persisted. `full_len` when no truncation
/// fault fires.
pub fn truncated_len(site: &str, full_len: usize) -> usize {
    let Some(plan) = current() else {
        return full_len;
    };
    match plan.decide(site) {
        Some((FaultKind::Truncate, _, keep, _)) => ((full_len as f64) * keep).floor() as usize,
        Some((FaultKind::Delay, d, _, _)) => {
            std::thread::sleep(d);
            full_len
        }
        _ => full_len,
    }
}

/// `hit` adapted to `std::io`: injected faults become `io::Error` (kind
/// `Other`) with the [`InjectedFault`] as source, so I/O plumbing can
/// propagate them unchanged.
pub fn hit_io(site: &str) -> std::io::Result<()> {
    hit(site).map_err(std::io::Error::other)
}

/// At-rest corruption: deterministic bit flips and truncations of
/// named files *between* operations, modelling media decay rather than
/// in-flight I/O faults. The disk-chaos matrix damages sealed WAL
/// segments and checkpoint snapshots through these and asserts the
/// scrubber quarantines (and replication repairs) every injury.
pub mod at_rest {
    use std::fs::OpenOptions;
    use std::io::{Read, Seek, SeekFrom, Write};
    use std::path::Path;

    use super::{fnv, mix};

    /// Where a file was damaged, for test logs and assertions.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Damage {
        /// One bit at this byte offset was inverted.
        BitFlip {
            /// Byte offset of the flipped bit.
            offset: u64,
        },
        /// The file was cut down to this length.
        Truncated {
            /// The file's new length.
            len: u64,
        },
    }

    /// Seed material that is stable across runs: the file *name* (not
    /// the tempdir-prefixed path) and length.
    fn file_salt(path: &Path, len: u64) -> u64 {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        mix(fnv(&name), len)
    }

    /// Deterministically invert one bit of `path`, skipping the first
    /// `min_offset` bytes (so a test can spare a header and target
    /// payload bytes). Returns `None` without touching the file when
    /// it has no bytes past `min_offset`. The damaged offset depends
    /// only on `(seed, file name, file length)`.
    pub fn flip_bit(path: &Path, seed: u64, min_offset: u64) -> std::io::Result<Option<Damage>> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len <= min_offset {
            return Ok(None);
        }
        let h = mix(seed ^ file_salt(path, len), 0x1);
        let offset = min_offset + h % (len - min_offset);
        let bit = (h >> 32) % 8;
        let mut byte = [0u8];
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(&mut byte)?;
        byte[0] ^= 1 << bit;
        file.seek(SeekFrom::Start(offset))?;
        file.write_all(&byte)?;
        file.sync_all()?;
        Ok(Some(Damage::BitFlip { offset }))
    }

    /// Deterministically truncate `path` to a length in
    /// `[min_offset, len)`. Returns `None` without touching the file
    /// when it has no bytes past `min_offset`. The cut point depends
    /// only on `(seed, file name, file length)`.
    pub fn truncate(path: &Path, seed: u64, min_offset: u64) -> std::io::Result<Option<Damage>> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len <= min_offset {
            return Ok(None);
        }
        let h = mix(seed ^ file_salt(path, len), 0x2);
        let new_len = min_offset + h % (len - min_offset);
        file.set_len(new_len)?;
        file.sync_all()?;
        Ok(Some(Damage::Truncated { len: new_len }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_plan_is_free_and_infallible() {
        assert!(current().is_none());
        for _ in 0..100 {
            assert!(hit("any.site").is_ok());
            assert_eq!(truncated_len("any.site", 10), 10);
        }
    }

    #[test]
    fn probability_rules_are_deterministic() {
        let run = || {
            let plan = FaultPlan::builder(7).fail("s.op", 0.3).build();
            plan.run(|| {
                (0..200)
                    .map(|_| u64::from(hit("s.op").is_err()))
                    .collect::<Vec<_>>()
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed must inject identically");
        let total: u64 = a.iter().sum();
        assert!(total > 20 && total < 100, "injected {total}/200 at p=0.3");
    }

    #[test]
    fn at_hits_fire_exactly() {
        let plan = FaultPlan::builder(1).fail_at("s.op", &[2, 4]).build();
        plan.run(|| {
            assert!(hit("s.op").is_ok());
            assert!(hit("s.op").is_err());
            assert!(hit("s.op").is_ok());
            assert!(hit("s.op").is_err());
            assert!(hit("s.op").is_ok());
        });
        let stats = plan.stats();
        assert_eq!(stats.errors.get("s.op"), Some(&2));
        assert_eq!(stats.total(), 2);
    }

    #[test]
    fn prefix_patterns_match() {
        let plan = FaultPlan::builder(1).fail_at("storage.*", &[1]).build();
        plan.run(|| {
            assert!(hit("storage.write.flush").is_err());
            assert!(hit("qcache.get").is_ok());
        });
    }

    #[test]
    fn panics_are_forced() {
        let plan = FaultPlan::builder(1).panic_at("s.boom", &[1]).build();
        let caught = plan.run(|| {
            std::panic::catch_unwind(|| {
                let _ = hit("s.boom");
            })
        });
        assert!(caught.is_err());
        assert_eq!(plan.stats().panics.get("s.boom"), Some(&1));
    }

    #[test]
    fn truncation_scales_length() {
        let plan = FaultPlan::builder(1).truncate_at("w", &[1], 0.5).build();
        plan.run(|| {
            assert_eq!(truncated_len("w", 100), 50);
            assert_eq!(truncated_len("w", 100), 100);
        });
    }

    #[test]
    fn hit_counts_track_every_site() {
        let plan = FaultPlan::builder(3).build();
        plan.run(|| {
            for _ in 0..5 {
                hit("a.site").unwrap();
            }
            hit("b.site").unwrap();
        });
        assert_eq!(plan.hit_count("a.site"), 5);
        assert_eq!(plan.hit_count("b.site"), 1);
        assert_eq!(plan.hit_count("never.hit"), 0);
        assert_eq!(plan.hit_counts().len(), 2);
        // The registry lists the write-path matrix.
        assert!(sites::DURABILITY_SITES.contains(&sites::WAL_APPEND_SYNC));
    }

    #[test]
    fn hit_window_covers_a_contiguous_range() {
        let plan = FaultPlan::builder(9)
            .fail_between("disk.full", 3, 5)
            .build();
        let outcomes = plan.run(|| {
            (0..8)
                .map(|_| hit("disk.full").is_err())
                .collect::<Vec<_>>()
        });
        assert_eq!(
            outcomes,
            [false, false, true, true, true, false, false, false],
            "window [3,5] must fail exactly hits 3..=5 and recover after"
        );
        assert!(sites::DISK_SITES.contains(&sites::DISK_FULL));
        assert!(sites::DISK_SITES.contains(&sites::WAL_SCRUB));
    }

    #[test]
    fn at_rest_damage_is_deterministic() {
        let dir = std::env::temp_dir().join(format!(
            "ctxpref-faults-at-rest-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg-000001.wal");
        let payload: Vec<u8> = (0..200u8).collect();

        std::fs::write(&path, &payload).unwrap();
        let a = at_rest::flip_bit(&path, 42, 24).unwrap().unwrap();
        let damaged_a = std::fs::read(&path).unwrap();
        std::fs::write(&path, &payload).unwrap();
        let b = at_rest::flip_bit(&path, 42, 24).unwrap().unwrap();
        let damaged_b = std::fs::read(&path).unwrap();
        assert_eq!(a, b, "same seed must damage the same bit");
        assert_eq!(damaged_a, damaged_b);
        assert_ne!(damaged_a, payload, "a bit must actually have flipped");
        let at_rest::Damage::BitFlip { offset } = a else {
            panic!("flip_bit must report a bit flip");
        };
        assert!(offset >= 24, "the protected header must be spared");

        std::fs::write(&path, &payload).unwrap();
        let cut = at_rest::truncate(&path, 42, 24).unwrap().unwrap();
        let at_rest::Damage::Truncated { len } = cut else {
            panic!("truncate must report a cut");
        };
        assert!((24..200).contains(&len));
        assert_eq!(std::fs::metadata(&path).unwrap().len(), len);

        // Nothing past the protected prefix: both helpers decline.
        std::fs::write(&path, &payload[..10]).unwrap();
        assert_eq!(at_rest::flip_bit(&path, 42, 24).unwrap(), None);
        assert_eq!(at_rest::truncate(&path, 42, 24).unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn nested_installs_restore() {
        let outer = FaultPlan::builder(1).fail_at("n.op", &[1]).build();
        let inner = FaultPlan::builder(1).build();
        outer.run(|| {
            inner.run(|| {
                assert!(hit("n.op").is_ok());
            });
            assert!(hit("n.op").is_err());
        });
        assert!(current().is_none());
    }
}
